"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Multiple polynomials vs one global polynomial** (Section 6.4): a single
   expansion cannot track a skewed metro density surface; the g x g tiling
   is what makes PA accurate.
2. **Branch-and-bound vs dense-grid evaluation** (Section 6.3): the paper's
   "trivial approach" evaluates the polynomial on every cell of an
   m_d x m_d grid; B&B bounds prune most of the plane instead.
3. **Filter-step effectiveness** (Section 5.2): accepts + rejects resolve
   the vast majority of cells without touching the TPR-tree, which is what
   keeps the exact method viable at all.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.regions import RegionSet
from repro.core.geometry import Rect
from repro.experiments.datasets import WorldSpec, get_world
from repro.experiments.report import format_table
from repro.histogram.filter import filter_query


@pytest.fixture(scope="module")
def ablation_world(profile):
    spec = WorldSpec(
        n_objects=profile.small,
        warmup=profile.warmup,
        network_grid=profile.network_grid,
        extra_pa=((1, 5, 30.0),),  # the single-global-polynomial ablation
    )
    return get_world(spec, profile.raster_resolution)


def test_ablation_single_vs_multi_polynomial(profile, ablation_world, benchmark, capsys):
    """One global polynomial vs the g x g grid, same degree and memory class."""
    server = ablation_world.server
    qt = server.tnow + 5
    query = server.make_query(qt=qt, varrho=2.0)
    exact = ablation_world.exact_answer(query).regions

    def run():
        rows = []
        for label, pa in (
            ("single (g=1, k=5)", ablation_world.pa_for(30.0, g=1, k=5)),
            (f"grid (g={server.pa.spec.g}, k={server.pa.spec.k})", server.pa),
        ):
            result = pa.query(query)
            acc = ablation_world.raster.accuracy(exact, result.regions)
            rows.append(
                {
                    "config": label,
                    "memory_mb": pa.memory_bytes() / 1e6,
                    "r_fp_pct": 100 * acc.r_fp,
                    "r_fn_pct": 100 * acc.r_fn,
                    "jaccard": acc.jaccard,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Ablation — single global polynomial vs g x g grid"))
    single, grid = rows
    # The tiling is the decisive design choice: far better agreement.
    assert grid["jaccard"] > single["jaccard"]
    assert grid["r_fn_pct"] < single["r_fn_pct"] + 1e-9


def test_ablation_bnb_vs_dense_grid(profile, ablation_world, benchmark, capsys):
    """B&B evaluation vs the paper's 'trivial' dense m_d x m_d evaluation."""
    server = ablation_world.server
    qt = server.tnow + 5
    md = server.config.evaluation_grid

    def run():
        rows = []
        for varrho in (1.0, 3.0, 5.0):
            query = server.make_query(qt=qt, varrho=varrho)
            t0 = time.perf_counter()
            result = server.pa.query(query)
            bnb_s = time.perf_counter() - t0
            surface = server.pa.surface_at(qt)
            t0 = time.perf_counter()
            values = surface.density_grid(md)
            dense_cells = int((values >= query.rho).sum())
            grid_s = time.perf_counter() - t0
            rows.append(
                {
                    "varrho": varrho,
                    "bnb_s": bnb_s,
                    "bnb_nodes": result.stats.bnb_nodes,
                    "grid_s": grid_s,
                    "grid_evaluations": md * md,
                    "grid_dense_cells": dense_cells,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                rows,
                title=f"Ablation — branch-and-bound vs dense {md}x{md} evaluation",
            )
        )
    for row in rows:
        # B&B touches a small fraction of the trivial method's evaluations.
        assert row["bnb_nodes"] < 0.5 * row["grid_evaluations"]
    # And pruning strengthens with the threshold.
    assert rows[-1]["bnb_nodes"] < rows[0]["bnb_nodes"]


def test_ablation_batched_refinement(profile, ablation_world, benchmark, capsys):
    """Per-cell refinement (the paper) vs coalesced candidate strips.

    Batching adjacent candidate cells into maximal strips keeps the answer
    identical while replacing many small range queries with fewer, larger
    ones — trading random I/O for sweep width.
    """
    from repro.methods.fr import FRMethod

    server = ablation_world.server
    qt = server.tnow + 5
    per_cell = FRMethod(server.histogram, server.tree, batch_candidates=False)
    batched = FRMethod(server.histogram, server.tree, batch_candidates=True)

    def run():
        rows = []
        for varrho in (1.0, 3.0):
            query = server.make_query(qt=qt, varrho=varrho)
            a = per_cell.query(query)
            b = batched.query(query)
            rows.append(
                {
                    "varrho": varrho,
                    "per_cell_io": a.stats.io_count,
                    "batched_io": b.stats.io_count,
                    "per_cell_cpu_s": a.stats.cpu_seconds,
                    "batched_cpu_s": b.stats.cpu_seconds,
                    "mismatch_area": a.regions.symmetric_difference_area(b.regions),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                rows, title="Ablation — per-cell vs batched candidate refinement"
            )
        )
    for row in rows:
        assert row["mismatch_area"] == pytest.approx(0.0, abs=1e-6)
        assert row["batched_io"] < row["per_cell_io"]


def test_ablation_interval_fr(profile, ablation_world, benchmark, capsys):
    """Naive per-snapshot union vs interval-level filtering (Definition 5).

    The optimised evaluator accepts a cell once for the whole union and
    refines candidates only at the timestamps that individually need it.
    """
    from repro.core.query import IntervalPDRQuery
    from repro.methods.fr import FRMethod
    from repro.methods.interval import evaluate_interval, evaluate_interval_fr

    server = ablation_world.server
    fr = FRMethod(server.histogram, server.tree)
    qt1 = server.tnow
    qt2 = server.tnow + 6

    def run():
        rows = []
        for varrho in (1.0, 3.0):
            base = server.make_query(qt=qt1, varrho=varrho)
            query = IntervalPDRQuery(rho=base.rho, l=base.l, qt1=qt1, qt2=qt2)
            naive = evaluate_interval(lambda s: fr.query(s), query)
            optimized = evaluate_interval_fr(fr, query)
            rows.append(
                {
                    "varrho": varrho,
                    "interval": f"[{qt1}, {qt2}]",
                    "naive_objects": naive.stats.objects_examined,
                    "optimized_objects": optimized.stats.objects_examined,
                    "naive_io": naive.stats.io_count,
                    "optimized_io": optimized.stats.io_count,
                    "mismatch_area": naive.regions.symmetric_difference_area(
                        optimized.regions
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                rows, title="Ablation — naive vs interval-filtered exact union"
            )
        )
    for row in rows:
        assert row["mismatch_area"] == pytest.approx(0.0, abs=1e-6)
        assert row["optimized_objects"] <= row["naive_objects"]


def test_ablation_filter_step_effectiveness(profile, medium_world, benchmark, capsys):
    """Fraction of cells the filter resolves without index I/O."""
    server = medium_world.server
    qt = server.tnow + 5

    def run():
        rows = []
        for varrho in (1.0, 2.0, 3.0, 4.0, 5.0):
            query = server.make_query(qt=qt, varrho=varrho)
            result = filter_query(server.histogram, query)
            total = server.histogram.m ** 2
            resolved = result.accepted_count + result.rejected_count
            rows.append(
                {
                    "varrho": varrho,
                    "accepted": result.accepted_count,
                    "rejected": result.rejected_count,
                    "candidates": result.candidate_count,
                    "resolved_pct": 100.0 * resolved / total,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                rows,
                title="Ablation — filter step: cells resolved without refinement",
            )
        )
    for row in rows:
        # Without the filter, FR would refine all m^2 cells; it resolves
        # the overwhelming majority up front.
        assert row["resolved_pct"] > 80.0
