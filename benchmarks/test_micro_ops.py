"""Micro-benchmarks of the core operations behind the figures.

These use pytest-benchmark's timing loop on individual operations (one
query, one location update, one refinement sweep) against the shared warm
medium world, complementing the figure-level tables with per-op numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import Rect
from repro.histogram.answers import dh_optimistic
from repro.sweep.plane_sweep import refine_cell


@pytest.fixture(scope="module")
def query(medium_world):
    server = medium_world.server
    return server.make_query(qt=server.tnow + 10, varrho=2.0)


def test_bench_pa_query(medium_world, query, benchmark):
    server = medium_world.server
    result = benchmark.pedantic(
        server.pa.query, args=(query,), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.stats.method == "pa"


def test_bench_dh_filter_query(medium_world, query, benchmark):
    server = medium_world.server
    result = benchmark.pedantic(
        dh_optimistic, args=(server.histogram, query), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    assert result.stats.method == "dh-optimistic"


def test_bench_fr_query(medium_world, query, benchmark):
    server = medium_world.server
    result = benchmark.pedantic(
        server.evaluate, args=("fr", query), rounds=1, iterations=1
    )
    assert result.stats.method == "fr"


def test_bench_location_update(medium_world, benchmark):
    """One full report: delete + insert across histogram, PA and TPR-tree."""
    server = medium_world.server
    oid = 999_999_999
    gen = np.random.default_rng(0)
    server.report(oid, 500.0, 500.0, 0.5, 0.5)  # ensure delete path runs

    def one_report():
        x, y = gen.uniform(100, 900, size=2)
        server.report(oid, float(x), float(y), 0.5, -0.5)

    benchmark.pedantic(one_report, rounds=20, iterations=1)
    server.table.retire(oid)  # leave the shared world unchanged


def test_bench_tpr_range_query(medium_world, benchmark):
    server = medium_world.server
    rect = Rect(450.0, 450.0, 550.0, 550.0)

    def run():
        return server.tree.range_query(rect, server.tnow, charge_io=False)

    hits = benchmark.pedantic(run, rounds=10, iterations=1)
    assert isinstance(hits, list)


def test_bench_refine_cell_sweep(benchmark):
    """The plane-sweep refinement on a dense synthetic candidate cell."""
    gen = np.random.default_rng(1)
    positions = [tuple(gen.uniform(0, 40, size=2)) for _ in range(400)]
    cell = Rect(10.0, 10.0, 30.0, 30.0)

    region = benchmark.pedantic(
        refine_cell, args=(positions, cell, 10.0, 12.0), rounds=5, iterations=1
    )
    assert region.bounding_box() is None or cell.contains_rect(
        region.bounding_box()
    )
