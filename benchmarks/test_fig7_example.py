"""Figure 7 — qualitative example: object snapshot, FR regions, PA regions.

Shape check: both methods find regions of arbitrary shape and size, and the
PA answer visually matches the FR answer (quantified by Jaccard).
"""

from __future__ import annotations

from repro.experiments.fig7_example import run_fig7


def test_fig7_example(profile, benchmark, capsys):
    result = benchmark.pedantic(run_fig7, args=(profile,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Figure 7 — dense-region example (small dataset)")
        print(result.combined())
        print(
            f"FR: {result.fr_rects} rects / area {result.fr_area:,.0f}; "
            f"PA: {result.pa_rects} rects / area {result.pa_area:,.0f}; "
            f"Jaccard(FR, PA) = {result.jaccard:.3f} "
            f"(varrho={result.varrho:g}, qt={result.qt})"
        )
    # Paper shape: the two answers match well.
    assert result.jaccard > 0.5
    # Arbitrary shapes: answers are not a single rectangle.
    assert result.fr_rects > 1
    assert result.pa_rects > 1
