"""Figure 8 — accuracy of PA vs the DH filter step.

Shape checks (paper):
* PA's error ratios stay far below DH's on both sides (a, b);
* error ratios grow as the threshold rises (the reference area shrinks);
* more memory buys accuracy for both methods, and PA dominates DH
  at comparable (even much smaller) memory (c, d).
"""

from __future__ import annotations

from repro.experiments.fig8_accuracy import run_fig8ab, run_fig8cd
from repro.experiments.report import format_table


def test_fig8a_fig8b_error_vs_threshold(profile, medium_world, benchmark, capsys):
    rows = benchmark.pedantic(
        run_fig8ab, args=(profile, medium_world), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            format_table(
                rows,
                columns=["l", "varrho", "r_fp_pa_pct", "r_fp_dh_optimistic_pct"],
                title="Figure 8(a) — false-positive ratio (%) vs relative threshold",
            )
        )
        print()
        print(
            format_table(
                rows,
                columns=["l", "varrho", "r_fn_pa_pct", "r_fn_dh_pessimistic_pct"],
                title="Figure 8(b) — false-negative ratio (%) vs relative threshold",
            )
        )
    # PA beats DH on the summed ratios (both panels).
    pa_fp = sum(r["r_fp_pa_pct"] for r in rows)
    dh_fp = sum(r["r_fp_dh_optimistic_pct"] for r in rows)
    pa_fn = sum(r["r_fn_pa_pct"] for r in rows)
    dh_fn = sum(r["r_fn_dh_pessimistic_pct"] for r in rows)
    assert pa_fp < dh_fp
    assert pa_fn < dh_fn
    # DH error grows with the threshold for each l.
    for l in (30.0, 60.0):
        sub = [r for r in rows if r["l"] == l]
        assert sub[-1]["r_fn_dh_pessimistic_pct"] > sub[0]["r_fn_dh_pessimistic_pct"]


def test_fig8c_fig8d_error_vs_memory(profile, medium_world, benchmark, capsys):
    rows = benchmark.pedantic(
        run_fig8cd, args=(profile, medium_world), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            format_table(
                rows,
                title=(
                    "Figure 8(c,d) — error ratio (%) vs memory "
                    "(l=30, varrho=2; r_fp uses optimistic DH, r_fn pessimistic)"
                ),
            )
        )
    pa_rows = [r for r in rows if r["method"] == "PA"]
    dh_rows = [r for r in rows if r["method"] == "DH"]
    # More PA memory => lower (or equal) false negatives end-to-end.
    assert pa_rows[-1]["r_fn_pct"] <= pa_rows[0]["r_fn_pct"] + 1.0
    # PA at its default budget beats every DH configuration on both ratios.
    default_pa = pa_rows[-2] if len(pa_rows) >= 2 else pa_rows[-1]
    for dh in dh_rows:
        assert default_pa["r_fp_pct"] < dh["r_fp_pct"]
        assert default_pa["r_fn_pct"] < dh["r_fn_pct"]
