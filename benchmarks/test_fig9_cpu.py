"""Figure 9 — CPU costs: query evaluation and per-update maintenance.

Shape checks (paper):
* 9(a) — DH's query CPU is flat in the threshold while PA's *falls* as
  branch-and-bound prunes more aggressively;
* 9(b) — PA maintenance costs several times more per location update than
  DH (the arccos/sin closed forms vs simple counter increments).

Note on the 9(a) crossover: the paper reports PA undercutting DH for
varrho > 2 on its 2003-era implementation.  Our DH filter classifies all
cells with vectorised prefix sums, which makes the DH curve cheaper in
absolute terms than a per-cell scan; the per-curve shapes (flat vs falling)
are the reproduced claim.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.fig9_cpu import run_fig9a, run_fig9b
from repro.experiments.report import format_table


def test_fig9a_query_cpu(profile, medium_world, benchmark, capsys):
    rows = benchmark.pedantic(
        run_fig9a, args=(profile, medium_world), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            format_table(
                rows, title="Figure 9(a) — query CPU (s) vs relative threshold"
            )
        )
    for l in (30.0, 60.0):
        sub = [r for r in rows if r["l"] == l]
        # PA prunes more at higher thresholds: strictly fewer B&B nodes.
        assert sub[-1]["pa_bnb_nodes"] < sub[0]["pa_bnb_nodes"]
        # PA query CPU falls substantially from varrho=1 to varrho=5.
        assert sub[-1]["pa_cpu_s"] < sub[0]["pa_cpu_s"]
        # DH stays within a small factor across the sweep (flat curve).
        dh = [r["dh_cpu_s"] for r in sub]
        assert max(dh) < 6 * min(dh) + 1e-3


def test_fig9b_update_cpu(profile, medium_world, benchmark, capsys):
    rows = benchmark.pedantic(
        run_fig9b, args=(profile, medium_world), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            format_table(
                rows, title="Figure 9(b) — maintenance CPU per location update (ms)"
            )
        )
    primary_dh = next(r for r in rows if r["structure"] == "DH")
    primary_pa = next(r for r in rows if r["structure"] == "PA")
    # PA costs several times more per update than DH (paper: ~an order).
    assert primary_pa["ms_per_update"] > 2 * primary_dh["ms_per_update"]
