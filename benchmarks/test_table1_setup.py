"""Table 1 — experimental setup (printed for the active scale profile)."""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.table1 import run_table1


def test_table1_setup(profile, benchmark, capsys):
    rows = benchmark.pedantic(run_table1, args=(profile,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Table 1 — experimental setup"))
    assert any(r["parameter"].startswith("Time horizon") for r in rows)
