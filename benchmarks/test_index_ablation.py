"""Index ablation — FR refinement over the TPR-tree vs the B^x-tree.

Section 4 of the paper: "Several indexing methods have been proposed for
linear movement, which we can adopt in our framework."  We adopt the main
alternative it cites — the B^x-tree — and compare the refinement step's
answer (must be identical) and its I/O bill under both indexes.
"""

from __future__ import annotations

import pytest

from repro.core.system import PDRServer
from repro.experiments.datasets import WorldSpec, get_world
from repro.experiments.report import format_table
from repro.index.bx import BxTree
from repro.methods.fr import FRMethod
from repro.storage.buffer import BufferPool


@pytest.fixture(scope="module")
def bx_world(profile):
    """The small world plus a B^x-tree fed from the same update stream."""
    spec = WorldSpec(
        n_objects=profile.small,
        warmup=profile.warmup,
        network_grid=profile.network_grid,
        seed=11,
    )
    world = get_world(spec, profile.raster_resolution)
    server = world.server
    if not hasattr(world, "_bx_index"):
        bx_buffer = BufferPool(
            capacity_pages=server.buffer.capacity,
            random_io_seconds=server.config.page_model.random_io_seconds,
        )
        bx = BxTree(
            server.config.domain,
            horizon=server.config.horizon,
            phase_length=server.config.max_update_interval // 2,
            bits=8,
            buffer_pool=bx_buffer,
            tnow=0,
        )
        # Load the current state; subsequent updates (none in benchmarks)
        # would flow through the listener interface.
        bx._tnow = float(server.tnow)
        for motion in server.table.motions():
            bx.insert(motion)
        server.table.add_listener(bx)
        world._bx_index = bx
    return world


def test_index_ablation_tpr_vs_bx(profile, bx_world, benchmark, capsys):
    server = bx_world.server
    bx = bx_world._bx_index
    fr_tpr = FRMethod(server.histogram, server.tree)
    fr_bx = FRMethod(server.histogram, bx)
    qts = bx_world.query_times(profile.n_queries)

    def run():
        rows = []
        for varrho in (1.0, 3.0, 5.0):
            tpr_io = bx_io = mismatch = 0.0
            for qt in qts:
                query = server.make_query(qt=qt, varrho=varrho)
                a = fr_tpr.query(query)
                b = fr_bx.query(query)
                tpr_io += a.stats.io_count
                bx_io += b.stats.io_count
                mismatch += a.regions.symmetric_difference_area(b.regions)
            n = len(qts)
            rows.append(
                {
                    "varrho": varrho,
                    "tpr_io_pages": tpr_io / n,
                    "bx_io_pages": bx_io / n,
                    "answer_mismatch_area": mismatch,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                rows,
                title="Index ablation — FR refinement I/O: TPR-tree vs B^x-tree",
            )
        )
    for row in rows:
        # The exact answer is index-independent.
        assert row["answer_mismatch_area"] == pytest.approx(0.0, abs=1e-6)
        assert row["tpr_io_pages"] > 0
        assert row["bx_io_pages"] > 0
