"""Shared fixtures for the benchmark harness.

Benchmarks reproduce the paper's tables and figures at the scale selected by
``REPRO_SCALE`` (smoke / default / paper — see
:mod:`repro.experiments.config`).  Worlds are built once per session and
shared across benchmark modules; each benchmark prints the table it
regenerates so ``pytest benchmarks/ --benchmark-only`` output doubles as the
experiment report.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import active_profile
from repro.experiments.datasets import get_world, medium_world_spec


def pytest_report_header(config):
    profile = active_profile()
    return (
        f"PDR reproduction benchmarks — scale profile: {profile.name} "
        f"(sizes {profile.sizes}, {profile.n_queries} queries/config); "
        "set REPRO_SCALE=smoke|default|paper to change"
    )


@pytest.fixture(scope="session")
def profile():
    return active_profile()


@pytest.fixture(scope="session")
def medium_world(profile):
    """The shared medium-size world (the paper's CH100K slot)."""
    return get_world(medium_world_spec(profile), profile.raster_resolution)
