"""Figure 10 — total query cost: PA vs the exact FR method.

Shape checks (paper):
* 10(a) — PA is at least an order of magnitude cheaper than FR across the
  threshold sweep (FR pays a TPR-tree range query per candidate cell);
* 10(b) — FR's cost grows with the dataset size while PA's stays flat
  (polynomial evaluation depends on coefficients, not objects).
"""

from __future__ import annotations

from repro.experiments.fig10_cost import run_fig10a, run_fig10b
from repro.experiments.report import format_table


def test_fig10a_cost_vs_threshold(profile, medium_world, benchmark, capsys):
    rows = benchmark.pedantic(
        run_fig10a, args=(profile, medium_world), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            format_table(
                rows,
                title=(
                    "Figure 10(a) — total query cost (s; CPU + 10 ms/page I/O) "
                    "vs relative threshold"
                ),
            )
        )
    # PA beats FR by at least an order of magnitude on every configuration.
    for row in rows:
        assert row["speedup"] > 10.0


def test_fig10b_cost_vs_dataset_size(profile, benchmark, capsys):
    rows = benchmark.pedantic(run_fig10b, args=(profile,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                rows,
                title=(
                    "Figure 10(b) — total query cost (s) vs dataset size "
                    "(l=30, varrho=2)"
                ),
            )
        )
    # FR's work grows with N: CPU and objects touched are monotone (the
    # charged I/O component can dip between adjacent sizes because the
    # buffer pool is sized at 10% of the dataset and grows with N —
    # see EXPERIMENTS.md).
    fr_cpu = [r["fr_cpu_s"] for r in rows]
    assert fr_cpu[-1] > fr_cpu[0]
    objs = [r["fr_objects_examined"] for r in rows]
    assert objs[-1] > objs[0]
    assert rows[-1]["fr_total_s"] > rows[0]["fr_total_s"]
    # PA stays flat: within a small factor across a 25x size range.
    pa = [r["pa_total_s"] for r in rows]
    assert max(pa) < 5 * min(pa) + 1e-3
    # And PA is dramatically cheaper everywhere.
    for row in rows:
        assert row["speedup"] > 10.0
