"""Regression-gated performance benchmark for the fast paths.

Measures the batch execution engine against its per-object / reference
twins and emits a ``BENCH_pr9.json`` trajectory file:

* **batch ingest** — ``PDRServer.report_batch`` vs per-report ingest, both
  in-memory and on a durable (WAL + fsync) server, in reports/second;
* **FR / PA queries** — snapshot query throughput on the populated
  server.  The calibration-normalized scalars (``fr_query_per_cal``,
  ``pa_query_per_cal``) are **gated**: query throughput per unit of
  machine speed must not regress, the same transferability argument the
  speedup ratios rest on;
* **serving SLO** — a short self-hosted TCP load test.  Its p50/p95/p99
  latencies per operation class are **gated** as calibration-normalized
  speeds (``slo_<kind>_<pct>_speed_per_cal`` = ``(1000/ms)/cal``): wire
  latency per unit of machine speed must not collapse.  The wide 60%
  headroom absorbs shared-runner noise; the regression the gate exists
  to catch is a protocol- or serialization-level slowdown, which costs
  integer multiples;
* **sweep refine** — vectorized ``refine_cell`` vs the reference
  event-loop oracle, in refine calls/second;
* **cached vs cold filter** — ``DensityHistogram.prefix_sums`` with a warm
  timestamp-keyed cache vs a cold (invalidated) one;
* **telemetry overhead** — the same ingest+query workload with the
  telemetry layer enabled vs disabled.  This one is gated by an
  *absolute* floor: enabled throughput must stay within 5% of disabled
  (ratio >= 0.95), the observability layer's cheap-by-default contract.

The regression gate compares **speedup ratios** (batch vs sequential,
vectorized vs reference, cached vs cold) against a checked-in baseline and
fails on a >25% drop.  Ratios, unlike raw ops/sec, transfer across
machines: both sides of each ratio run on the same hardware in the same
process.  Raw ops/sec are still recorded — normalized by a fixed numpy
calibration workload — so the trajectory file stays comparable over time.

Usage::

    PYTHONPATH=src python benchmarks/perf_gate.py                 # full run
    PYTHONPATH=src python benchmarks/perf_gate.py --mode smoke    # CI-sized
    PYTHONPATH=src python benchmarks/perf_gate.py --write-baseline

Exit status is non-zero when any gated ratio regresses by more than the
tolerance (disable with ``--no-gate``).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.core.config import SystemConfig
from repro.core.geometry import Rect
from repro.core.system import PDRServer
from repro.histogram.density_histogram import DensityHistogram
from repro.motion.model import Motion
from repro.motion.updates import InsertUpdate
from repro.reliability.recovery import ReliabilityConfig
from repro.sweep.plane_sweep import refine_cell, refine_cell_reference

GATED_RATIOS = (
    "ingest_speedup_memory",
    "sweep_speedup",
    "filter_cache_speedup",
    "fr_query_per_cal",
    "pa_query_per_cal",
    "slo_report_p50_speed_per_cal",
    "slo_report_p95_speed_per_cal",
    "slo_report_p99_speed_per_cal",
    "slo_query_p50_speed_per_cal",
    "slo_query_p95_speed_per_cal",
    "slo_query_p99_speed_per_cal",
)
TOLERANCE = 0.25
# Per-key headroom where the default 25% would trip on run-to-run noise
# rather than a real regression.  Calibration-normalized absolutes
# (query throughput per unit of machine speed) carry cross-run noise the
# same-process speedup ratios cancel out.  The extreme-magnitude ratios
# swing 25-40% between back-to-back runs on virtualized hardware (the
# cached/warm arm is sub-microsecond work), but the regression they
# exist to catch is a ~1000x (cache broken) or ~4x (vectorization lost)
# collapse — a wide floor loses nothing.
KEY_TOLERANCE = {
    # Tightened from the original 0.45 when band-fused refinement landed:
    # the vectorized pipeline both raised throughput ~10x and cut
    # run-to-run variance (fewer, larger numpy calls), so the post-fusion
    # win cannot erode silently behind a wide floor.
    "fr_query_per_cal": 0.30,
    "pa_query_per_cal": 0.30,
    "filter_cache_speedup": 0.60,
    "ingest_speedup_memory": 0.40,
    "sweep_speedup": 0.35,
    # Wire percentiles on a loopback socket under a shared CI box swing
    # hard with scheduler jitter; the catastrophic slowdowns the gate is
    # for (a serialization or protocol regression) cost 2-10x.
    "slo_report_p50_speed_per_cal": 0.60,
    "slo_report_p95_speed_per_cal": 0.60,
    "slo_report_p99_speed_per_cal": 0.60,
    "slo_query_p50_speed_per_cal": 0.60,
    "slo_query_p95_speed_per_cal": 0.60,
    "slo_query_p99_speed_per_cal": 0.60,
}
# Keys that are absolutes over a fixed workload (not same-process
# ratios): they only compare against a baseline recorded in the SAME
# mode — a full-mode run against the smoke baseline skips them.
MODE_BOUND_KEYS = frozenset({
    "fr_query_per_cal",
    "pa_query_per_cal",
    # loadtest duration and per-mode load differ, so the latency
    # absolutes only compare within one mode, like the query absolutes
    "slo_report_p50_speed_per_cal",
    "slo_report_p95_speed_per_cal",
    "slo_report_p99_speed_per_cal",
    "slo_query_p50_speed_per_cal",
    "slo_query_p95_speed_per_cal",
    "slo_query_p99_speed_per_cal",
})
# Absolute floor for telemetry_overhead_ratio (enabled / disabled
# throughput).  The measured overhead is ~0% and a real regression
# (instrumentation left in a hot loop) costs 10%+, but single-rep noise
# on virtualized runners is ±4-5% even with the interleaved estimator,
# so the tripwire sits at 10% rather than 5%.
TELEMETRY_FLOOR = 0.90

MODES = {
    # n_objects, n_queries, sweep objects, (vectorized, reference) sweep reps,
    # ingest reps
    "full": dict(n=1000, queries=40, sweep_n=2000, sweep_reps=(20, 5), reps=3),
    "smoke": dict(n=250, queries=10, sweep_n=600, sweep_reps=(10, 3), reps=2),
}


def _best_of(fn, reps):
    """Best-of-N wall time; best-of filters scheduler noise, not variance."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def calibrate() -> float:
    """Machine-speed proxy: iterations/sec of a fixed numpy workload."""
    rng = np.random.default_rng(0)
    a = rng.normal(size=65536)
    t0 = time.perf_counter()
    iters = 0
    while time.perf_counter() - t0 < 0.2:
        np.sort(np.cumsum(a) * 1.0001)
        iters += 1
    return iters / (time.perf_counter() - t0)


def make_reports(n, seed=7):
    rng = np.random.default_rng(seed)
    return [
        (
            i,
            float(rng.uniform(0.0, 1000.0)),
            float(rng.uniform(0.0, 1000.0)),
            float(rng.uniform(-2.0, 2.0)),
            float(rng.uniform(-2.0, 2.0)),
        )
        for i in range(n)
    ]


def bench_ingest(reports, reps, durable):
    def make_server(tmp=None):
        if tmp is None:
            return PDRServer(SystemConfig())
        rc = ReliabilityConfig(state_dir=os.path.join(tmp, "state"))
        return PDRServer(SystemConfig(), reliability=rc)

    def run(batch):
        tmp = tempfile.mkdtemp() if durable else None
        try:
            server = make_server(tmp)
            t0 = time.perf_counter()
            if batch:
                server.report_batch(reports)
            else:
                for report in reports:
                    server.report(*report)
            return time.perf_counter() - t0
        finally:
            if tmp is not None:
                shutil.rmtree(tmp, ignore_errors=True)

    run(True)  # warm numpy/jit-free caches outside the timed region
    seq = min(run(False) for _ in range(reps))
    bat = min(run(True) for _ in range(reps))
    return len(reports) / seq, len(reports) / bat


def bench_queries(reports, n_queries):
    server = PDRServer(SystemConfig())
    server.report_batch(reports)
    horizon = server.config.prediction_window

    def fr():
        for q in range(n_queries):
            server.query("fr", qt=q % (horizon + 1), l=30.0, varrho=2.0)

    def pa():
        for q in range(n_queries):
            server.query("pa", qt=q % (horizon + 1), l=30.0, varrho=2.0)

    fr()
    pa()
    t_fr = _best_of(fr, 3) / n_queries
    t_pa = _best_of(pa, 3) / n_queries
    return 1.0 / t_fr, 1.0 / t_pa


def bench_sweep(sweep_n, reps):
    rng = np.random.default_rng(3)
    cell = Rect(0.0, 0.0, 100.0, 100.0)
    positions = [
        (float(x), float(y))
        for x, y in zip(
            rng.uniform(-20.0, 120.0, sweep_n), rng.uniform(-20.0, 120.0, sweep_n)
        )
    ]
    args = (positions, cell, 20.0, max(4.0, sweep_n / 250.0))
    fast = refine_cell(*args)
    slow = refine_cell_reference(*args)
    if fast.rects != slow.rects:
        raise AssertionError("vectorized refine_cell diverged from the oracle")
    vec_reps, ref_reps = reps
    t_vec = _best_of(lambda: [refine_cell(*args) for _ in range(vec_reps)], 2)
    t_ref = _best_of(
        lambda: [refine_cell_reference(*args) for _ in range(ref_reps)], 2
    )
    return vec_reps / t_vec, ref_reps / t_ref


def bench_filter_cache(n):
    rng = np.random.default_rng(11)
    hist = DensityHistogram(Rect(0.0, 0.0, 1000.0, 1000.0), m=200, horizon=120)
    updates = [
        InsertUpdate(
            motion=Motion(
                oid=i,
                x=float(rng.uniform(0.0, 1000.0)),
                y=float(rng.uniform(0.0, 1000.0)),
                vx=float(rng.uniform(-2.0, 2.0)),
                vy=float(rng.uniform(-2.0, 2.0)),
                t_ref=0,
            ),
            tnow=0,
        )
        for i in range(n)
    ]
    hist.on_insert_batch(updates)
    qts = list(range(0, 60, 6))

    def cold():
        for qt in qts:
            hist._epoch += 1  # simulate an intervening update wave
            hist.prefix_sums(qt)

    def warm():
        for qt in qts:
            hist.prefix_sums(qt)

    cold()
    warm()
    t_cold = _best_of(cold, 3) / len(qts)
    t_warm = _best_of(warm, 3) / len(qts)
    return 1.0 / t_cold, 1.0 / t_warm


def bench_telemetry_overhead(reports, n_queries, reps):
    """Enabled-vs-disabled throughput of a mixed ingest+query workload."""
    from repro.telemetry import TELEMETRY

    units = len(reports) + n_queries

    def workload():
        server = PDRServer(SystemConfig())
        server.report_batch(reports)
        horizon = server.config.prediction_window
        for q in range(n_queries):
            server.query("fr", qt=q % (horizon + 1), l=30.0, varrho=2.0)

    was_enabled = TELEMETRY.enabled
    try:
        # Interleave the enabled/disabled timings rep by rep: measuring
        # one whole arm and then the other lets machine-speed drift
        # between the halves masquerade as telemetry overhead, which is
        # exactly what an absolute-floor gate cannot afford.
        TELEMETRY.enable()
        workload()  # warm caches with instrumentation live
        TELEMETRY.disable()
        workload()
        t_enabled = float("inf")
        t_disabled = float("inf")
        for _ in range(reps):
            TELEMETRY.enable()
            t_enabled = min(t_enabled, _best_of(workload, 1))
            TELEMETRY.disable()
            t_disabled = min(t_disabled, _best_of(workload, 1))
    finally:
        (TELEMETRY.enable if was_enabled else TELEMETRY.disable)()
        TELEMETRY.reset()
    return units / t_enabled, units / t_disabled


def bench_serving_slo(mode):
    """Short self-hosted TCP load test; returns the percentile export.

    Uses the loadtest harness's own group builder and a small closed-loop
    scenario — enough traffic for stable p50/p95, short enough for CI.
    """
    from repro.serving.loadtest import (
        LoadTestConfig,
        build_serving_group,
        run_loadtest,
    )
    from repro.serving.server import ServerThread, ServingConfig

    duration = 4.0 if mode == "full" else 2.0
    tmp = tempfile.mkdtemp(prefix="perf-slo-")
    group = build_serving_group(
        os.path.join(tmp, "state"), objects=96, replicas=1, seed=7
    )
    thread = ServerThread(group, ServingConfig(host="127.0.0.1", port=0))
    try:
        thread.start()
        result = run_loadtest(
            [thread.address],
            LoadTestConfig(
                mix="report-heavy", mode="closed",
                duration=duration, concurrency=2, seed=7,
            ),
        )
        full = result.to_dict()
        return {
            "mix": full["mix"],
            "mode": full["mode"],
            "duration_seconds": duration,
            "ops": full["ops"],
            "throughput_ops_per_sec": full["throughput_ops_per_sec"],
            "failure_ratio": full["failure_ratio"],
            "latency_ms": full["latency_ms"],
            "slo": full["slo"],
            "ok": full["ok"],
        }
    finally:
        thread.stop()
        group.close()
        shutil.rmtree(tmp, ignore_errors=True)


def run_suite(mode):
    params = MODES[mode]
    reports = make_reports(params["n"])
    cal = calibrate()

    seq_mem, bat_mem = bench_ingest(reports, params["reps"], durable=False)
    seq_dur, bat_dur = bench_ingest(reports, params["reps"], durable=True)
    fr_ops, pa_ops = bench_queries(reports, params["queries"])
    vec_ops, ref_ops = bench_sweep(params["sweep_n"], params["sweep_reps"])
    cold_ops, warm_ops = bench_filter_cache(params["n"])
    tel_on_ops, tel_off_ops = bench_telemetry_overhead(
        reports, params["queries"], max(5, params["reps"])
    )
    serving_slo = bench_serving_slo(mode)

    def entry(ops):
        return {"ops_per_sec": round(ops, 2), "normalized": round(ops / cal, 6)}

    # latency percentiles gate as higher-is-better speeds so one floor
    # rule (current >= baseline * (1 - tolerance)) covers every key
    slo_speeds = {}
    for kind, pcts in serving_slo["latency_ms"].items():
        for pct in ("p50", "p95", "p99"):
            ms = pcts.get(pct)
            if ms:
                slo_speeds[f"slo_{kind}_{pct}_speed_per_cal"] = round(
                    (1000.0 / ms) / cal, 6
                )

    return {
        "bench": "pr9_perf_gate",
        "mode": mode,
        "profile": {
            "n_objects": params["n"],
            "domain": "1000x1000 paper defaults",
            "durable": "WAL group-commit, fsync on",
        },
        "calibration_ops_per_sec": round(cal, 2),
        "metrics": {
            "ingest_seq_memory": entry(seq_mem),
            "ingest_batch_memory": entry(bat_mem),
            "ingest_speedup_memory": round(bat_mem / seq_mem, 3),
            "ingest_seq_durable": entry(seq_dur),
            "ingest_batch_durable": entry(bat_dur),
            "ingest_speedup_durable": round(bat_dur / seq_dur, 3),
            "fr_query": entry(fr_ops),
            "pa_query": entry(pa_ops),
            "fr_query_per_cal": round(fr_ops / cal, 6),
            "pa_query_per_cal": round(pa_ops / cal, 6),
            "sweep_reference": entry(ref_ops),
            "sweep_vectorized": entry(vec_ops),
            "sweep_speedup": round(vec_ops / ref_ops, 3),
            "filter_cold": entry(cold_ops),
            "filter_cached": entry(warm_ops),
            "filter_cache_speedup": round(warm_ops / cold_ops, 3),
            "telemetry_enabled": entry(tel_on_ops),
            "telemetry_disabled": entry(tel_off_ops),
            "telemetry_overhead_ratio": round(tel_on_ops / tel_off_ops, 3),
            **slo_speeds,
        },
        "serving_slo": serving_slo,
        "gate": {
            "tolerance": TOLERANCE,
            "key_tolerance": dict(KEY_TOLERANCE),
            "ratios": list(GATED_RATIOS),
            "telemetry_floor": TELEMETRY_FLOOR,
        },
    }


def apply_gate(result, baseline_path):
    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
    except FileNotFoundError:
        print(f"perf_gate: no baseline at {baseline_path}; gate skipped")
        return True
    ok = True
    same_mode = result.get("mode") == baseline.get("mode")
    for key in GATED_RATIOS:
        base = baseline.get("metrics", {}).get(key)
        cur = result["metrics"].get(key)
        if base is None or cur is None:
            continue
        if key in MODE_BOUND_KEYS and not same_mode:
            # Query throughput per calibration unit scales with the
            # dataset size, so the absolute only compares within one
            # mode; speedup ratios transfer across modes and still gate.
            print(
                f"perf_gate: {key}: {cur:.4g} (baseline is "
                f"{baseline.get('mode')!r} mode, this run "
                f"{result.get('mode')!r} — recorded, not gated)"
            )
            continue
        floor = base * (1.0 - KEY_TOLERANCE.get(key, TOLERANCE))
        status = "ok" if cur >= floor else "REGRESSION"
        print(
            f"perf_gate: {key}: {cur:.4g} vs baseline {base:.4g} "
            f"(floor {floor:.4g}) {status}"
        )
        if cur < floor:
            ok = False
    return ok


def apply_telemetry_gate(result):
    """Absolute floor: enabled telemetry may cost at most 10% throughput."""
    ratio = result["metrics"]["telemetry_overhead_ratio"]
    status = "ok" if ratio >= TELEMETRY_FLOOR else "REGRESSION"
    print(
        f"perf_gate: telemetry_overhead_ratio: {ratio:.3f} "
        f"(floor {TELEMETRY_FLOOR:.2f}, absolute) {status}"
    )
    return ratio >= TELEMETRY_FLOOR


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=sorted(MODES), default="full")
    parser.add_argument("--out", default="BENCH_pr9.json")
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "perf_baseline.json"),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the result as the new baseline instead of gating",
    )
    parser.add_argument("--no-gate", action="store_true")
    args = parser.parse_args(argv)

    result = run_suite(args.mode)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"perf_gate: wrote {args.out}")
    for key in (
        "ingest_speedup_memory",
        "ingest_speedup_durable",
        "sweep_speedup",
        "filter_cache_speedup",
        "telemetry_overhead_ratio",
    ):
        print(f"perf_gate: {key} = {result['metrics'][key]}x")
    for key in ("fr_query_per_cal", "pa_query_per_cal"):
        print(f"perf_gate: {key} = {result['metrics'][key]}")
    slo = result["serving_slo"]
    for kind, pcts in sorted(slo["latency_ms"].items()):
        print(
            f"perf_gate: slo {kind}: p50={pcts['p50']}ms "
            f"p95={pcts['p95']}ms p99={pcts['p99']}ms"
        )

    if args.write_baseline:
        with open(args.baseline, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"perf_gate: baseline written to {args.baseline}")
        return 0
    if args.no_gate:
        return 0
    ok = apply_gate(result, args.baseline)
    ok = apply_telemetry_gate(result) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
