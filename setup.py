"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs to build wheel metadata, which
this offline environment cannot; `python setup.py develop` (or the pip
fallback below) installs the package from pyproject.toml metadata instead.
"""

from setuptools import setup

setup()
