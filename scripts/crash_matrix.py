#!/usr/bin/env python
"""The crashpoint × seed kill matrix, swept in parallel.

Each cell SIGKILLs a real supervised ``repro serve`` process at one
armed crashpoint, restarts it over the same state directory, and checks
the recovered on-disk state against the durability oracles (zero
acked-write loss, ``verify_state_dir`` clean-or-quarantined, contiguous
LSN chain) — see :mod:`repro.reliability.prochaos`.

CI runs a subset (all sites × a few seeds); the nightly sweep runs the
full matrix (all sites × 10 seeds).  Cells are process-bound, so a
thread pool is the right parallelism: each worker thread mostly waits
on its cell's child processes.

Run from the repository root::

    PYTHONPATH=src python scripts/crash_matrix.py --seeds 3 --jobs 4
    PYTHONPATH=src python scripts/crash_matrix.py --sites wal_write wal_fsync

Exit 0 when every cell's oracles hold; exit 9 with per-cell reproducers
on stderr (and ``--out`` JSON for artifact upload) otherwise.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import shutil
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.reliability.crashpoints import CRASH_SITES  # noqa: E402
from repro.reliability.prochaos import (  # noqa: E402
    ProcessChaosConfig,
    run_process_cell,
)

EXIT_ORACLE_FAILED = 9


def _run_cell(site: str, seed: int, workroot: str):
    workdir = os.path.join(workroot, f"{site.replace('.', '-')}-{seed}")
    os.makedirs(workdir, exist_ok=True)
    try:
        return run_process_cell(
            ProcessChaosConfig(site=site, seed=seed), workdir
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--sites", nargs="+", default=list(CRASH_SITES),
                        help="crashpoints to sweep (default: the full matrix)")
    parser.add_argument("--seeds", type=int, default=10,
                        help="seeds per site (0..N-1)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="cells in flight at once (each cell owns its "
                             "own child processes and ports)")
    parser.add_argument("--out", default=None,
                        help="write the full matrix result JSON here")
    args = parser.parse_args(argv)

    cells = [(site, seed) for site in args.sites
             for seed in range(args.seeds)]
    print(f"crash matrix: {len(args.sites)} site(s) × {args.seeds} seed(s) "
          f"= {len(cells)} cells, {args.jobs} in flight", flush=True)

    workroot = tempfile.mkdtemp(prefix="repro-crash-matrix-")
    results = []
    started = time.monotonic()
    try:
        with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
            futures = {
                pool.submit(_run_cell, site, seed, workroot): (site, seed)
                for site, seed in cells
            }
            for future in concurrent.futures.as_completed(futures):
                site, seed = futures[future]
                try:
                    result = future.result()
                except Exception as exc:  # harness bug, not an oracle verdict
                    print(f"FAIL {site} seed={seed}: harness error: {exc}",
                          flush=True)
                    results.append({
                        "site": site, "seed": seed, "ok": False,
                        "violations": [f"harness error: {exc}"],
                    })
                    continue
                verdict = "ok  " if result.ok else "FAIL"
                print(f"{verdict} {site} seed={seed} "
                      f"restarts={result.stats.get('restarts', 0)} "
                      f"acked={result.stats.get('max_acked_lsn', 0)} "
                      f"recovered={result.stats.get('recovered_lsn', 0)}",
                      flush=True)
                results.append(result.to_dict())
    finally:
        shutil.rmtree(workroot, ignore_errors=True)

    failed = [r for r in results if not r["ok"]]
    elapsed = time.monotonic() - started
    print(f"crash matrix: {len(results) - len(failed)}/{len(results)} cells "
          f"green in {elapsed:.0f}s", flush=True)
    for cell in failed:
        print(f"  FAILED: site={cell['site']} seed={cell['seed']}",
              file=sys.stderr)
        for violation in cell.get("violations", []):
            print(f"    {violation}", file=sys.stderr)
        if cell.get("rerun"):
            print(f"    rerun: {cell['rerun']}", file=sys.stderr)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump({"cells": results, "elapsed_seconds": elapsed},
                      fh, indent=2)
        print(f"matrix result written to {args.out}", flush=True)
    return EXIT_ORACLE_FAILED if failed else 0


if __name__ == "__main__":
    sys.exit(main())
