#!/usr/bin/env python
"""End-to-end serving smoke: boot, load, drain, scrape, SIGTERM.

The CI ``serving-smoke`` job runs this against a real ``repro serve``
subprocess:

1. boot the server on ephemeral ports and parse the machine-readable
   ``port=N`` / ``metrics-port=N`` stdout lines;
2. run a short seeded ``repro loadtest`` against it and require zero
   failed ops and zero acked-write loss;
3. send a ``drain`` frame, then scrape ``/metrics`` and require samples
   for ``repro_connections_active`` and ``repro_drain_duration_seconds``
   (via ``tests/prometheus_checker.py``);
4. SIGTERM the server and require a clean exit (code 0, "drained clean").

Run from the repository root: ``PYTHONPATH=src python scripts/serving_smoke.py``.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.request

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PYTHON = sys.executable


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _read_ports(proc: subprocess.Popen, deadline: float) -> dict:
    """Collect the ``key=value`` stdout lines the server prints on boot."""
    ports: dict = {}
    while time.time() < deadline and len(ports) < 2:
        line = proc.stdout.readline()
        if not line:
            break
        line = line.strip()
        if "=" in line:
            key, _, value = line.partition("=")
            if key in ("port", "metrics-port"):
                ports[key] = int(value)
    return ports


def main() -> int:
    serve = subprocess.Popen(
        [PYTHON, "-m", "repro.cli", "serve", "--port", "0",
         "--metrics-port", "0", "--objects", "64", "--replicas", "2",
         "--seed", "7"],
        cwd=ROOT, env=_env(), stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True,
    )
    try:
        ports = _read_ports(serve, time.time() + 60.0)
        assert "port" in ports and "metrics-port" in ports, (
            f"server did not announce its ports (got {ports})"
        )
        print(f"server up: port={ports['port']} "
              f"metrics-port={ports['metrics-port']}")

        # 2. a short seeded load test; generous SLOs (CI boxes are slow),
        # but failures and acked-write loss are hard zero requirements
        out = os.path.join(ROOT, "serving-smoke-loadtest.json")
        code = subprocess.call(
            [PYTHON, "-m", "repro.cli", "loadtest",
             "--host", "127.0.0.1", "--port", str(ports["port"]),
             "--mix", "report-heavy", "--duration", "2", "--concurrency", "2",
             "--seed", "7", "--report-slo-ms", "5000",
             "--query-slo-ms", "20000", "--json-out", out],
            cwd=ROOT, env=_env(),
        )
        assert code == 0, f"loadtest exited {code}"
        with open(out) as fh:
            result = json.load(fh)
        assert result["ops"] > 0, "loadtest issued no operations"
        assert result["failed_ops"] == 0, f"{result['failed_ops']} ops failed"
        assert result["acked_write_loss"] == 0, (
            f"acked-write loss: max acked {result['max_acked_lsn']} > "
            f"WAL {result['final_wal_lsn']}"
        )
        print(f"loadtest: {result['ops']} ops, 0 failed, 0 acked-write loss")

        # 3. drain over the wire, then scrape the (still-running) process
        sys.path.insert(0, os.path.join(ROOT, "src"))
        from repro.serving.protocol import read_frame_sync, write_frame_sync

        with socket.create_connection(("127.0.0.1", ports["port"]), 5.0) as s:
            write_frame_sync(s, {"op": "drain"})
            frame = read_frame_sync(s)
            assert frame and frame.get("draining"), f"drain refused: {frame}"
        time.sleep(1.0)  # let the drain finish and observe its duration

        scrape = urllib.request.urlopen(
            f"http://127.0.0.1:{ports['metrics-port']}/metrics", timeout=10.0
        ).read().decode("utf-8")
        scrape_path = os.path.join(ROOT, "serving-scrape.prom")
        with open(scrape_path, "w") as fh:
            fh.write(scrape)
        code = subprocess.call(
            [PYTHON, os.path.join(ROOT, "tests", "prometheus_checker.py"),
             "--require=repro_connections_active,repro_drain_duration_seconds,"
             "repro_serving_frames_total,repro_build_info",
             scrape_path],
            cwd=ROOT, env=_env(),
        )
        assert code == 0, "prometheus_checker rejected the live scrape"

        # 4. SIGTERM -> graceful shutdown, exit 0
        serve.send_signal(signal.SIGTERM)
        _stdout, stderr = serve.communicate(timeout=30.0)
        assert serve.returncode == 0, f"serve exited {serve.returncode}"
        assert "drained clean" in stderr, f"no clean-drain notice: {stderr!r}"
        print("serving smoke: PASS (booted, loaded, drained, scraped, exit 0)")
        return 0
    finally:
        if serve.poll() is None:
            serve.kill()
            serve.wait(timeout=10.0)


if __name__ == "__main__":
    sys.exit(main())
