"""FilterQuery — the filtering step of the FR method (Section 5.2).

For a query ``(rho, l, q_t)`` with grid cell edge ``l_c <= l/2``:

* the **conservative neighborhood** ``C_ij`` of cell ``c_ij`` is the block of
  cells within Chebyshev radius ``eta_l - 1`` of it, where ``eta_l =
  floor(l / (2 l_c))``.  Every point of ``c_ij`` has ``C_ij`` entirely inside
  its l-square, so ``|C_ij| >= rho l^2`` proves the whole cell dense
  (**accept**);
* the **expansive neighborhood** ``E_ij`` is the block within radius
  ``eta_h = ceil(l / (2 l_c))``.  Every point's l-square is entirely inside
  ``E_ij``, so ``|E_ij| < rho l^2`` proves the cell nowhere dense
  (**reject**);
* everything else is a **candidate** passed to the refinement step.

Both block counts are computed for all ``m^2`` cells at once from 2-D prefix
sums, so the filter is O(m^2) independent of the object count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..core.errors import InvalidParameterError
from ..core.query import SnapshotPDRQuery
from ..core.regions import RegionSet
from .density_histogram import DensityHistogram

__all__ = ["FilterResult", "filter_query", "neighborhood_radii"]

# Counts are integers and rho*l^2 arrives through float arithmetic; nudge the
# threshold down by an epsilon so "count == rho*l^2" classifies as dense.
_THRESHOLD_EPS = 1e-9


def neighborhood_radii(l: float, cell_edge: float) -> Tuple[int, int]:
    """``(eta_l, eta_h)`` for neighborhood construction.

    Requires ``cell_edge <= l/2`` (Algorithm 1's precondition), which makes
    ``eta_l >= 1`` so the conservative neighborhood is never empty.
    """
    if cell_edge > l / 2.0 + 1e-12:
        raise InvalidParameterError(
            f"filter step requires cell edge <= l/2 (cell={cell_edge}, l={l}); "
            "use a finer histogram or a larger l"
        )
    ratio = l / (2.0 * cell_edge)
    eta_l = int(math.floor(ratio + 1e-12))
    eta_h = int(math.ceil(ratio - 1e-12))
    return eta_l, eta_h


@dataclass
class FilterResult:
    """Cell classification produced by the filtering step.

    ``accepted``/``rejected``/``candidate`` are boolean ``m x m`` masks
    (indexed ``[i, j]`` = column, row to match
    :meth:`DensityHistogram.cell_rect`).
    """

    histogram: DensityHistogram
    query: SnapshotPDRQuery
    accepted: np.ndarray
    rejected: np.ndarray
    candidate: np.ndarray

    @property
    def accepted_count(self) -> int:
        return int(self.accepted.sum())

    @property
    def rejected_count(self) -> int:
        return int(self.rejected.sum())

    @property
    def candidate_count(self) -> int:
        return int(self.candidate.sum())

    def _cells_of(self, mask: np.ndarray) -> Iterator[Tuple[int, int]]:
        for i, j in zip(*np.nonzero(mask)):
            yield (int(i), int(j))

    def accepted_cells(self) -> List[Tuple[int, int]]:
        return list(self._cells_of(self.accepted))

    def candidate_cells(self) -> List[Tuple[int, int]]:
        return list(self._cells_of(self.candidate))

    def accepted_region(self) -> RegionSet:
        return RegionSet(
            self.histogram.cell_rect(i, j) for (i, j) in self._cells_of(self.accepted)
        )

    def candidate_region(self) -> RegionSet:
        return RegionSet(
            self.histogram.cell_rect(i, j) for (i, j) in self._cells_of(self.candidate)
        )


def filter_query(histogram: DensityHistogram, query: SnapshotPDRQuery) -> FilterResult:
    """Run the filtering step (Algorithm 1) for ``query``."""
    eta_l, eta_h = neighborhood_radii(query.l, histogram.cell_edge)
    # Memoized per (qt, radius) until the next counter mutation: monitors,
    # interval evaluation and repeated same-timestamp queries pay for the
    # prefix sums once (see DensityHistogram.block_sums_at).
    n_conservative = histogram.block_sums_at(query.qt, eta_l - 1)
    n_expansive = histogram.block_sums_at(query.qt, eta_h)
    threshold = query.min_count - _THRESHOLD_EPS
    accepted = n_conservative >= threshold
    rejected = ~accepted & (n_expansive < threshold)
    candidate = ~accepted & ~rejected
    return FilterResult(
        histogram=histogram,
        query=query,
        accepted=accepted,
        rejected=rejected,
        candidate=candidate,
    )
