"""Per-timestamp density histograms (Section 5.1 of the paper).

The domain is divided into an ``m x m`` grid and, for every timestamp ``t``
in the maintained window ``[t_now, t_now + H]``, a counter grid records how
many objects occupy each cell at ``t``.  An insertion update at ``t_ref``
projects the object's predicted trajectory over ``[t_ref, t_ref + H]`` and
increments the counter of the cell the object occupies at each covered
timestamp; a deletion decrements the same counters for the still-maintained
part of the retracted trajectory.

The window is a ring buffer of ``H + 1`` slots.  A slot for absolute time
``t`` is created (zeroed) when ``t_now`` reaches ``t - H``; because an
insertion issued at ``t_ref`` covers exactly ``[t_ref, t_ref + H]`` and
``t_ref <= t_now``, every insertion covering ``t`` happens *after* the
slot's creation, so counters inside the window are exact.  (Objects whose
last report is older than ``H`` stop contributing to the far end of the
window — the same guarantee the paper relies on via ``H = U + W``: every
object re-reports within ``U``, so slots up to ``t_now + W`` are complete.)
"""

from __future__ import annotations

import weakref
from typing import Dict, Sequence, Tuple

import numpy as np

from ..core.errors import HorizonError, InvalidParameterError
from ..core.geometry import Rect
from ..motion.model import Motion
from ..motion.updates import DeleteUpdate, InsertUpdate, UpdateListener
from ..telemetry import TELEMETRY
from ..telemetry import instruments as tm

__all__ = ["DensityHistogram"]


# Histograms already count their own cache hits/misses (per-query stats
# read them via before/after deltas).  The process-wide counters are
# synced from those local integers only when somebody scrapes — the warm
# cache path (a dict lookup) stays free of telemetry calls entirely.
# Weak references: retired histograms keep their already-synced totals in
# the global counters but stop being polled.
_cache_sync_marks: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _collect_cache_counters() -> None:
    for hist, (synced_hits, synced_misses) in list(_cache_sync_marks.items()):
        delta_hits = hist.cache_hits - synced_hits
        delta_misses = hist.cache_misses - synced_misses
        if delta_hits:
            tm.CACHE_HITS.inc(delta_hits)
        if delta_misses:
            tm.CACHE_MISSES.inc(delta_misses)
        if delta_hits or delta_misses:
            _cache_sync_marks[hist] = (hist.cache_hits, hist.cache_misses)
    hits = tm.CACHE_HITS.value
    total = hits + tm.CACHE_MISSES.value
    if total:
        tm.CACHE_HIT_RATIO.set(hits / total)


TELEMETRY.registry.on_collect(_collect_cache_counters)


class DensityHistogram(UpdateListener):
    """Ring-buffered ``(H+1) x m x m`` counter grids."""

    def __init__(self, domain: Rect, m: int, horizon: int, tnow: int = 0) -> None:
        if m < 1:
            raise InvalidParameterError(f"grid resolution must be >= 1, got {m}")
        if horizon < 0:
            raise InvalidParameterError(f"horizon must be >= 0, got {horizon}")
        if domain.is_empty():
            raise InvalidParameterError("domain must have positive area")
        self.domain = domain
        self.m = m
        self.horizon = horizon
        self._tnow = tnow
        self._slots = horizon + 1
        self._counts = np.zeros((self._slots, m, m), dtype=np.int32)
        # Slot index of absolute time t is t % slots; the invariant is that
        # _slot_time[t % slots] == t for every t in [tnow, tnow + horizon].
        self._slot_time = np.empty(self._slots, dtype=np.int64)
        self._label_slots(tnow)
        # Update epoch: bumped on every counter mutation (scatter, advance,
        # snapshot restore).  The per-timestamp prefix/block-sum caches are
        # tagged with the epoch they were built at, so invalidation is a
        # single integer comparison — no eager clearing on the update path.
        self._epoch = 0
        self._cache_epoch = 0
        self._prefix_cache: Dict[int, np.ndarray] = {}
        self._block_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        _cache_sync_marks[self] = (0, 0)

    def _label_slots(self, tnow: int) -> None:
        ts = np.arange(tnow, tnow + self._slots, dtype=np.int64)
        self._slot_time[ts % self._slots] = ts

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    @property
    def cell_edge(self) -> float:
        """Cell edge length ``l_c = L / m`` (cells are square iff the domain is)."""
        return self.domain.width / self.m

    @property
    def cell_edge_y(self) -> float:
        return self.domain.height / self.m

    def cell_rect(self, i: int, j: int) -> Rect:
        """World rectangle of cell ``(i, j)`` (column i, row j), half-open."""
        lx = self.cell_edge
        ly = self.cell_edge_y
        x1 = self.domain.x1 + i * lx
        y1 = self.domain.y1 + j * ly
        return Rect(x1, y1, x1 + lx, y1 + ly)

    def cell_of(self, x: float, y: float) -> Tuple[int, int]:
        """Cell indices containing ``(x, y)``; raises for out-of-domain points."""
        if not self.domain.contains_point(x, y):
            raise InvalidParameterError(f"point ({x}, {y}) outside histogram domain")
        i = int((x - self.domain.x1) / self.cell_edge)
        j = int((y - self.domain.y1) / self.cell_edge_y)
        return (min(i, self.m - 1), min(j, self.m - 1))

    # ------------------------------------------------------------------
    # time window
    # ------------------------------------------------------------------
    @property
    def tnow(self) -> int:
        return self._tnow

    @property
    def window(self) -> Tuple[int, int]:
        return (self._tnow, self._tnow + self.horizon)

    def memory_bytes(self) -> int:
        """Counter storage, the paper's ``H * m^2`` figure (4-byte counters)."""
        return self._counts.size * 4

    def on_advance(self, tnow: int) -> None:
        if tnow < self._tnow:
            raise InvalidParameterError(f"clock moved backwards to {tnow}")
        steps = tnow - self._tnow
        if steps == 0:
            return
        if steps >= self._slots:
            # The whole window expired; reset everything.
            self._counts[:] = 0
            self._label_slots(tnow)
        else:
            # The expired slots are < _slots of them, hence all distinct:
            # zero them and bump their labels one ring revolution in two
            # vectorised writes instead of a per-timestamp Python loop.
            t_old = np.arange(self._tnow, tnow, dtype=np.int64)
            slots = t_old % self._slots
            self._counts[slots] = 0
            self._slot_time[slots] = t_old + self._slots
        self._tnow = tnow
        self._epoch += 1

    def _covered_times(self, t_from: int, t_to: int) -> np.ndarray:
        """Timestamps in both the window and ``[t_from, t_to]``."""
        lo = max(t_from, self._tnow)
        hi = min(t_to, self._tnow + self.horizon)
        if hi < lo:
            return np.empty(0, dtype=np.int64)
        return np.arange(lo, hi + 1, dtype=np.int64)

    # ------------------------------------------------------------------
    # update stream
    # ------------------------------------------------------------------
    def on_insert(self, update: InsertUpdate) -> None:
        self._scatter(update.motion, update.tnow, update.tnow + self.horizon, +1)

    def on_delete(self, update: DeleteUpdate) -> None:
        motion = update.motion
        self._scatter(motion, motion.t_ref, motion.t_ref + self.horizon, -1)

    def on_insert_batch(self, updates: Sequence[InsertUpdate]) -> None:
        self._scatter_batch(
            [u.motion for u in updates],
            np.array([u.tnow for u in updates], dtype=np.int64),
            +1,
        )

    def on_delete_batch(self, updates: Sequence[DeleteUpdate]) -> None:
        self._scatter_batch(
            [u.motion for u in updates],
            np.array([u.motion.t_ref for u in updates], dtype=np.int64),
            -1,
        )

    def _scatter(self, motion: Motion, t_from: int, t_to: int, sign: int) -> None:
        ts = self._covered_times(t_from, t_to)
        if ts.size == 0:
            return
        xs, ys = motion.positions_at(ts)
        ix = np.floor((xs - self.domain.x1) / self.cell_edge).astype(np.int64)
        iy = np.floor((ys - self.domain.y1) / self.cell_edge_y).astype(np.int64)
        inside = (ix >= 0) & (ix < self.m) & (iy >= 0) & (iy < self.m)
        if not inside.all():
            ts, ix, iy = ts[inside], ix[inside], iy[inside]
        slots = ts % self._slots
        np.add.at(self._counts, (slots, ix, iy), sign)
        self._epoch += 1

    def _scatter_batch(
        self, motions: Sequence[Motion], t_from: np.ndarray, sign: int
    ) -> None:
        """Scatter a whole wave of motions in one numpy pass.

        Each motion covers ``[t_from_i, t_from_i + horizon]`` intersected
        with the maintained window.  Counter increments are integers, so
        the accumulation is exactly the per-motion result in any order.
        """
        if not motions:
            return
        n = len(motions)
        ts = np.arange(self._tnow, self._tnow + self._slots, dtype=np.int64)
        t_ref = np.array([m.t_ref for m in motions], dtype=float)
        x0 = np.array([m.x for m in motions])
        y0 = np.array([m.y for m in motions])
        vx = np.array([m.vx for m in motions])
        vy = np.array([m.vy for m in motions])
        # (n, slots) trajectory grid — the same ``x + dt*vx`` the scalar
        # path computes, evaluated for the whole wave at once.
        dt = ts.astype(float)[None, :] - t_ref[:, None]
        xs = x0[:, None] + dt * vx[:, None]
        ys = y0[:, None] + dt * vy[:, None]
        covered = (ts[None, :] >= np.maximum(t_from, self._tnow)[:, None]) & (
            ts[None, :] <= np.minimum(t_from + self.horizon, self._tnow + self.horizon)[:, None]
        )
        ix = np.floor((xs - self.domain.x1) / self.cell_edge).astype(np.int64)
        iy = np.floor((ys - self.domain.y1) / self.cell_edge_y).astype(np.int64)
        hit = covered & (ix >= 0) & (ix < self.m) & (iy >= 0) & (iy < self.m)
        slots = np.broadcast_to((ts % self._slots)[None, :], (n, self._slots))
        np.add.at(self._counts, (slots[hit], ix[hit], iy[hit]), sign)
        self._epoch += 1

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def counts_at(self, qt: int) -> np.ndarray:
        """The ``m x m`` counter grid for timestamp ``qt`` (a view, do not mutate)."""
        if not (self._tnow <= qt <= self._tnow + self.horizon):
            raise HorizonError(
                f"timestamp {qt} outside maintained window {self.window}"
            )
        slot = qt % self._slots
        if self._slot_time[slot] != qt:  # pragma: no cover - internal invariant
            raise HorizonError(f"ring-buffer slot for {qt} not materialised")
        return self._counts[slot]

    def total_at(self, qt: int) -> int:
        """Number of (in-domain, in-window) object contributions at ``qt``."""
        return int(self.counts_at(qt).sum())

    def _cache_ready(self) -> None:
        """Lazily drop cache entries from a previous update epoch (O(1) on
        the update path: mutations only bump the epoch counter)."""
        if self._cache_epoch != self._epoch:
            self._prefix_cache.clear()
            self._block_cache.clear()
            self._cache_epoch = self._epoch

    def prefix_sums(self, qt: int) -> np.ndarray:
        """2-D inclusive prefix sums ``P`` with a zero border.

        ``P[i+1, j+1] - P[i0, j+1] - P[i+1, j0] + P[i0, j0]`` is the count of
        the cell block ``[i0..i] x [j0..j]``.

        Memoized per ``qt`` until the next counter mutation; the returned
        array is shared cached state — treat it as read-only.
        """
        self._cache_ready()
        cached = self._prefix_cache.get(qt)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        counts = self.counts_at(qt)
        prefix = np.zeros((self.m + 1, self.m + 1), dtype=np.int64)
        prefix[1:, 1:] = counts.astype(np.int64).cumsum(axis=0).cumsum(axis=1)
        self._prefix_cache[qt] = prefix
        return prefix

    def block_sums_at(self, qt: int, radius: int) -> np.ndarray:
        """Memoized :meth:`block_sums` over :meth:`prefix_sums` of ``qt``.

        This is the cache the FR filter, the DH answers, interval
        classification and the monitor's re-evaluations share: the same
        ``(qt, radius)`` pair between two updates costs one dict lookup.
        The returned array is shared cached state — treat it as read-only.
        """
        self._cache_ready()
        key = (qt, radius)
        cached = self._block_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        prefix = self.prefix_sums(qt)
        self.cache_misses += 1
        block = self.block_sums(prefix, radius)
        self._block_cache[key] = block
        return block

    def cache_memory_bytes(self) -> int:
        """Bytes held by the prefix/block-sum caches (reclaimable)."""
        total = 0
        for arr in self._prefix_cache.values():
            total += arr.nbytes
        for arr in self._block_cache.values():
            total += arr.nbytes
        return total

    def shed_caches(self) -> int:
        """Drop the prefix/block-sum caches now (memory watermark).

        Purely a capacity action: the caches rebuild on demand and every
        answer is recomputed from the counters, so correctness is
        untouched.  Returns the bytes freed.
        """
        freed = self.cache_memory_bytes()
        self._prefix_cache.clear()
        self._block_cache.clear()
        return freed

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def state_arrays(self) -> dict:
        """Raw state for snapshotting (see :mod:`repro.storage.snapshot`)."""
        return {
            "counts": self._counts.copy(),
            "slot_time": self._slot_time.copy(),
            "tnow": np.int64(self._tnow),
        }

    def load_state_arrays(self, state: dict) -> None:
        """Restore state produced by :meth:`state_arrays` (shapes must match)."""
        counts = np.asarray(state["counts"], dtype=np.int32)
        slot_time = np.asarray(state["slot_time"], dtype=np.int64)
        if counts.shape != self._counts.shape:
            raise InvalidParameterError(
                f"snapshot shape {counts.shape} does not match histogram "
                f"{self._counts.shape}"
            )
        self._counts = counts
        self._slot_time = slot_time
        self._tnow = int(state["tnow"])
        self._epoch += 1

    @staticmethod
    def block_sums(prefix: np.ndarray, radius: int) -> np.ndarray:
        """Count in the ``(2*radius+1)^2`` block around every cell (clipped).

        ``radius`` may be 0 (the cell itself).  Returns an ``m x m`` array.
        """
        if radius < 0:
            raise InvalidParameterError(f"radius must be >= 0, got {radius}")
        m = prefix.shape[0] - 1
        idx = np.arange(m)
        lo = np.clip(idx - radius, 0, m)
        hi = np.clip(idx + radius + 1, 0, m)
        return (
            prefix[np.ix_(hi, hi)]
            - prefix[np.ix_(lo, hi)]
            - prefix[np.ix_(hi, lo)]
            + prefix[np.ix_(lo, lo)]
        )
