"""Density histograms: maintenance, the FR filter step, and DH baselines."""

from .answers import dh_optimistic, dh_pessimistic
from .density_histogram import DensityHistogram
from .filter import FilterResult, filter_query, neighborhood_radii
from .interval_filter import IntervalFilterResult, filter_query_interval

__all__ = [
    "DensityHistogram",
    "FilterResult",
    "filter_query",
    "neighborhood_radii",
    "IntervalFilterResult",
    "filter_query_interval",
    "dh_optimistic",
    "dh_pessimistic",
]
