"""Interval-query classification over density histograms.

Definition 5's interval PDR query is the union of snapshot answers over
``[qt1, qt2]``.  Evaluating the DH filter once per timestamp repeats the
prefix-sum work ``T`` times; this module classifies cells for the *union*
directly:

* a cell is **accepted** for the interval iff it is accepted at *some*
  timestamp (it is wholly dense then, hence in the union);
* a cell is **rejected** iff it is rejected at *every* timestamp (no point
  of it is ever dense);
* otherwise it is a **candidate** — and the timestamps at which it was
  locally a candidate are exactly the snapshots a refinement step needs to
  sweep it at.

The classification runs one vectorised pass per timestamp but allocates the
output masks once, and returns the per-cell candidate timestamp lists the
interval FR evaluator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.errors import InvalidParameterError
from ..core.query import IntervalPDRQuery
from ..core.regions import RegionSet
from .density_histogram import DensityHistogram
from .filter import filter_query

__all__ = ["IntervalFilterResult", "filter_query_interval"]


@dataclass
class IntervalFilterResult:
    """Union classification over ``[qt1, qt2]``.

    ``accepted``/``rejected``/``candidate`` are ``m x m`` masks for the
    union semantics above; ``candidate_times`` maps each candidate cell to
    the timestamps at which it individually needs refinement.
    """

    histogram: DensityHistogram
    query: IntervalPDRQuery
    accepted: np.ndarray
    rejected: np.ndarray
    candidate: np.ndarray
    candidate_times: Dict[Tuple[int, int], List[int]]

    @property
    def accepted_count(self) -> int:
        return int(self.accepted.sum())

    @property
    def rejected_count(self) -> int:
        return int(self.rejected.sum())

    @property
    def candidate_count(self) -> int:
        return int(self.candidate.sum())

    def accepted_region(self) -> RegionSet:
        return RegionSet(
            self.histogram.cell_rect(int(i), int(j))
            for i, j in zip(*np.nonzero(self.accepted))
        )

    def candidate_region(self) -> RegionSet:
        return RegionSet(
            self.histogram.cell_rect(int(i), int(j))
            for i, j in zip(*np.nonzero(self.candidate))
        )

    def refinement_snapshots(self) -> int:
        """Total (cell, timestamp) refinement tasks remaining."""
        return sum(len(ts) for ts in self.candidate_times.values())


def filter_query_interval(
    histogram: DensityHistogram, query: IntervalPDRQuery
) -> IntervalFilterResult:
    """Classify every cell for the interval union (see module docstring)."""
    lo, hi = histogram.window
    if not (lo <= query.qt1 and query.qt2 <= hi):
        raise InvalidParameterError(
            f"interval [{query.qt1}, {query.qt2}] outside maintained window "
            f"[{lo}, {hi}]"
        )
    m = histogram.m
    accepted = np.zeros((m, m), dtype=bool)
    ever_not_rejected = np.zeros((m, m), dtype=bool)
    per_time_candidates: Dict[int, np.ndarray] = {}
    for snapshot in query.snapshots():
        step = filter_query(histogram, snapshot)
        accepted |= step.accepted
        ever_not_rejected |= ~step.rejected
        per_time_candidates[snapshot.qt] = step.candidate
    rejected = ~ever_not_rejected
    candidate = ever_not_rejected & ~accepted
    candidate_times: Dict[Tuple[int, int], List[int]] = {}
    for qt, mask in per_time_candidates.items():
        # Snapshot-candidate cells that the union did not already accept.
        pending = mask & ~accepted
        for i, j in zip(*np.nonzero(pending)):
            candidate_times.setdefault((int(i), int(j)), []).append(qt)
    return IntervalFilterResult(
        histogram=histogram,
        query=query,
        accepted=accepted,
        rejected=rejected,
        candidate=candidate,
        candidate_times=candidate_times,
    )
