"""Stand-alone DH answers (the baseline of Figures 8-9).

The filtering step alone can serve as a (coarse) approximate PDR evaluator:

* **optimistic DH** adds every candidate cell to the answer — no false
  negatives, potentially large false-positive area;
* **pessimistic DH** drops every candidate cell — no false positives,
  potentially large false-negative area.

The paper uses these two variants to show that histograms alone are not an
adequate PDR method (their error ratios reach 100-200 %), motivating both
the refinement step of FR and the PA method.
"""

from __future__ import annotations

import time

from ..core.query import QueryResult, QueryStats, SnapshotPDRQuery
from ..telemetry import TELEMETRY
from .density_histogram import DensityHistogram
from .filter import filter_query

__all__ = ["dh_optimistic", "dh_pessimistic"]


def _answer(
    histogram: DensityHistogram,
    query: SnapshotPDRQuery,
    include_candidates: bool,
    method: str,
) -> QueryResult:
    hits_before = histogram.cache_hits
    misses_before = histogram.cache_misses
    start = time.perf_counter()
    result = filter_query(histogram, query)
    region = result.accepted_region()
    if include_candidates:
        region = region.union(result.candidate_region())
    cpu = time.perf_counter() - start
    TELEMETRY.tracer.record_span("filter", cpu)
    stats = QueryStats(
        method=method,
        cpu_seconds=cpu,
        accepted_cells=result.accepted_count,
        rejected_cells=result.rejected_count,
        candidate_cells=result.candidate_count,
    )
    stats.extra["cache_hits"] = float(histogram.cache_hits - hits_before)
    stats.extra["cache_misses"] = float(histogram.cache_misses - misses_before)
    return QueryResult(regions=region, stats=stats, query=query)


def dh_optimistic(histogram: DensityHistogram, query: SnapshotPDRQuery) -> QueryResult:
    """Accepts plus candidates: zero false negatives."""
    return _answer(histogram, query, include_candidates=True, method="dh-optimistic")


def dh_pessimistic(histogram: DensityHistogram, query: SnapshotPDRQuery) -> QueryResult:
    """Accepts only: zero false positives."""
    return _answer(histogram, query, include_candidates=False, method="dh-pessimistic")
