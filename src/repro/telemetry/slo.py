"""Multi-window SLO error-budget tracking with burn-rate alerts.

Every served query lands here as one *event* with an outcome:

* ``ok``    — answered within the latency SLO,
* ``slow``  — answered, but over the latency SLO,
* ``error`` — failed outright,
* ``shed``  — rejected by admission control.

``slow``/``error``/``shed`` all consume error budget.  The monitor keeps
one-second ring buckets and answers, for each window (5 s / 1 m / 5 m by
default), the bad-event fraction and the **burn rate** — bad fraction
divided by the error budget ``1 - objective``.  Burn rate 1.0 means the
budget is being consumed exactly as fast as the SLO allows; the classic
multi-window alert thresholds apply (fast burn ~14.4x confirmed on the
two short windows, slow burn ~6x on the long window — the Google SRE
workbook numbers, scaled to this harness's short windows).

``budget_remaining`` per window is ``max(0, 1 - burn_rate)`` — the
fraction of that window's budget still unspent (it is the burn rate's
complement, exported separately because it is the number an operator
glances at in ``repro top``).

Threshold *crossings* — entering or leaving fast/slow burn — are checked
at most once per second on the record path and journaled
(``slo.fast_burn`` / ``slo.slow_burn`` / ``slo.burn_ok``), so a budget
fire leaves a timestamped trail next to the sheds and failovers that
caused it.  A ``min_events`` floor keeps one unlucky query in an idle
window from sounding the alarm.

The clock is injectable (``time.monotonic`` by default) so tests can
drive the window math against a brute-force oracle deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Sequence, Tuple

from .journal import JOURNAL

__all__ = ["SLOMonitor", "SLO", "BAD_OUTCOMES"]

BAD_OUTCOMES = ("slow", "error", "shed")

#: Default latency SLO matches the loadtest query SLO default (600 ms).
DEFAULT_LATENCY_SLO_SECONDS = 0.600
DEFAULT_OBJECTIVE = 0.99
DEFAULT_WINDOWS = (5, 60, 300)
DEFAULT_FAST_BURN = 14.4
DEFAULT_SLOW_BURN = 6.0


class SLOMonitor:
    """Rolling multi-window error-budget tracker over query outcomes."""

    def __init__(
        self,
        *,
        objective: float = DEFAULT_OBJECTIVE,
        latency_slo_seconds: float = DEFAULT_LATENCY_SLO_SECONDS,
        windows: Sequence[int] = DEFAULT_WINDOWS,
        fast_burn: float = DEFAULT_FAST_BURN,
        slow_burn: float = DEFAULT_SLOW_BURN,
        min_events: int = 10,
        clock=time.monotonic,
        journal=None,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        self.objective = objective
        self.budget = 1.0 - objective
        self.latency_slo_seconds = latency_slo_seconds
        self.windows = tuple(sorted(int(w) for w in windows))
        if not self.windows or self.windows[0] < 1:
            raise ValueError(f"windows must be positive, got {windows}")
        self.fast_burn = fast_burn
        self.slow_burn = slow_burn
        self.min_events = min_events
        self.clock = clock
        self.journal = journal if journal is not None else JOURNAL
        self._lock = threading.Lock()
        # Ring of one-second buckets [second, total, bad]; sized to the
        # longest window plus the in-progress second.
        self._size = self.windows[-1] + 1
        self._buckets = [[-1, 0, 0] for _ in range(self._size)]
        self._burning = {"fast": False, "slow": False}
        self._last_check_sec = -1

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def classify(
        self, latency_seconds: Optional[float], outcome: str
    ) -> str:
        """Resolve the recorded outcome: latency folds ``ok`` to ``slow``."""
        if outcome == "ok" and latency_seconds is not None and (
            latency_seconds > self.latency_slo_seconds
        ):
            return "slow"
        return outcome

    def record(
        self,
        latency_seconds: Optional[float] = None,
        outcome: str = "ok",
    ) -> str:
        """Record one query event; returns the classified outcome."""
        kind = self.classify(latency_seconds, outcome)
        bad = kind in BAD_OUTCOMES
        now = self.clock()
        sec = int(now)
        with self._lock:
            bucket = self._buckets[sec % self._size]
            if bucket[0] != sec:
                bucket[0] = sec
                bucket[1] = 0
                bucket[2] = 0
            bucket[1] += 1
            if bad:
                bucket[2] += 1
            if sec != self._last_check_sec:
                self._last_check_sec = sec
                self._check_crossings_locked(sec)
        return kind

    # ------------------------------------------------------------------
    # window math
    # ------------------------------------------------------------------
    def _window_counts_locked(self, window: int, sec: int) -> Tuple[int, int]:
        """(total, bad) over the last ``window`` whole-second buckets,
        including the in-progress second."""
        total = 0
        bad = 0
        lo = sec - window + 1
        for bucket in self._buckets:
            if lo <= bucket[0] <= sec:
                total += bucket[1]
                bad += bucket[2]
        return total, bad

    def _burn_locked(self, window: int, sec: int) -> Tuple[float, int, int]:
        total, bad = self._window_counts_locked(window, sec)
        if total == 0:
            return 0.0, total, bad
        return (bad / total) / self.budget, total, bad

    def snapshot(self, now: Optional[float] = None) -> Dict[int, dict]:
        """Per-window stats: total/bad counts, bad fraction, burn, budget."""
        sec = int(self.clock() if now is None else now)
        out: Dict[int, dict] = {}
        with self._lock:
            for window in self.windows:
                burn, total, bad = self._burn_locked(window, sec)
                out[window] = {
                    "total": total,
                    "bad": bad,
                    "bad_fraction": (bad / total) if total else 0.0,
                    "burn_rate": burn,
                    "budget_remaining": max(0.0, 1.0 - burn),
                }
        return out

    @property
    def burning(self) -> Dict[str, bool]:
        with self._lock:
            return dict(self._burning)

    # ------------------------------------------------------------------
    # crossings
    # ------------------------------------------------------------------
    def _check_crossings_locked(self, sec: int) -> None:
        short_burn, short_total, _ = self._burn_locked(self.windows[0], sec)
        mid_window = self.windows[1] if len(self.windows) > 1 else self.windows[0]
        mid_burn, mid_total, _ = self._burn_locked(mid_window, sec)
        long_window = self.windows[-1]
        long_burn, long_total, long_bad = self._burn_locked(long_window, sec)

        # Fast burn: both short windows over threshold (two-window
        # confirmation — a single hot second alone can't fire it).
        fast = (
            short_total >= self.min_events
            and short_burn >= self.fast_burn
            and mid_burn >= self.fast_burn
        )
        slow = long_total >= self.min_events and long_burn >= self.slow_burn
        if fast != self._burning["fast"]:
            self._burning["fast"] = fast
            self.journal.emit(
                "slo.fast_burn" if fast else "slo.burn_ok",
                kind="fast",
                window=self.windows[0],
                burn_rate=round(short_burn, 3),
                confirm_burn_rate=round(mid_burn, 3),
            )
        if slow != self._burning["slow"]:
            self._burning["slow"] = slow
            self.journal.emit(
                "slo.slow_burn" if slow else "slo.burn_ok",
                kind="slow",
                window=long_window,
                burn_rate=round(long_burn, 3),
                bad=long_bad,
                total=long_total,
            )

    def reset(self) -> None:
        with self._lock:
            for bucket in self._buckets:
                bucket[0] = -1
                bucket[1] = 0
                bucket[2] = 0
            self._burning = {"fast": False, "slow": False}
            self._last_check_sec = -1


#: The process-wide monitor the query path and admission sheds feed.
SLO = SLOMonitor()
