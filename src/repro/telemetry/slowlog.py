"""The slow-query log: a bounded buffer of the N worst query traces.

Every finished root query trace is *offered* to the log with the query's
resolved parameters; the log keeps the ``capacity`` slowest ones.  Each
retained entry is a **replayable exemplar**: it records the method that
actually produced the answer (after any degradation) plus the resolved
absolute threshold, so ``server.query(**entry.replay_kwargs())`` against
the same state reproduces the identical answer — the operator's "what
exactly was slow, show me again" tool.

Implementation: a min-heap keyed by duration so an offer against a full
log is one comparison in the common (fast-query) case.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["SlowQueryEntry", "SlowQueryLog"]


@dataclass
class SlowQueryEntry:
    """One retained worst-case query."""

    duration_seconds: float
    method: str                 # the method that actually ran
    requested_method: str       # what the caller asked for
    qt: int
    l: float
    rho: float                  # resolved absolute threshold
    degraded: bool = False
    served_by: Optional[str] = None
    trace: Optional[dict] = None  # serialized span tree
    trace_id: Optional[str] = None  # joins the ops journal and repro trace
    journal_seq: Optional[int] = None  # seq of the slow_query journal record
    attrs: dict = field(default_factory=dict)

    def replay_kwargs(self) -> dict:
        """Keyword arguments reproducing this answer on the same state."""
        return {"method": self.method, "qt": self.qt, "l": self.l, "rho": self.rho}

    def to_dict(self) -> dict:
        return {
            "duration_seconds": self.duration_seconds,
            "method": self.method,
            "requested_method": self.requested_method,
            "qt": self.qt,
            "l": self.l,
            "rho": self.rho,
            "degraded": self.degraded,
            "served_by": self.served_by,
            "trace_id": self.trace_id,
            "journal_seq": self.journal_seq,
            "attrs": dict(self.attrs),
            "trace": self.trace,
        }


class SlowQueryLog:
    """Keeps the ``capacity`` slowest entries ever offered."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.offered = 0
        self._seq = itertools.count()
        self._heap: List[tuple] = []  # (duration, seq, entry) min-heap

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def threshold_seconds(self) -> float:
        """Durations at or below this cannot enter a full log."""
        if self.capacity == 0:
            return float("inf")
        if len(self._heap) < self.capacity:
            return 0.0
        return self._heap[0][0]

    def would_retain(self, duration_seconds: float) -> bool:
        """Whether an offer with this duration would be kept (no mutation)."""
        if self.capacity == 0:
            return False
        if len(self._heap) < self.capacity:
            return True
        return duration_seconds > self._heap[0][0]

    def note_skipped(self) -> None:
        """Count an offer the caller short-circuited via :meth:`would_retain`."""
        self.offered += 1

    def offer(self, entry: SlowQueryEntry) -> bool:
        """Consider one finished query; returns True if it was retained."""
        self.offered += 1
        if self.capacity == 0:
            return False
        item = (entry.duration_seconds, next(self._seq), entry)
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, item)
            return True
        if entry.duration_seconds <= self._heap[0][0]:
            return False
        heapq.heapreplace(self._heap, item)
        return True

    def entries(self) -> List[SlowQueryEntry]:
        """Retained entries, slowest first."""
        return [
            item[2]
            for item in sorted(self._heap, key=lambda it: (-it[0], it[1]))
        ]

    def clear(self) -> None:
        self._heap.clear()
        self.offered = 0

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "offered": self.offered,
            "entries": [entry.to_dict() for entry in self.entries()],
        }
