"""Structured per-query tracing: span trees with propagated trace IDs.

A query entering the system opens a *trace* — a tree of :class:`Span`
nodes, one per meaningful unit of work::

    query(method=fr, qt=42)            <- root, opened by the serving tier
      admission                        <- token-bucket decision
      rung(method=fr)                  <- one ladder rung (reliability.deadline)
        filter                         <- histogram classification
        fetch                          <- aggregated over candidate cells
        sweep                          <- aggregated over candidate cells

Span and trace IDs are deterministic process-local counters (hex), so a
seeded run produces the same tree shape run over run.  The tracer keeps a
thread-local span stack; :meth:`Tracer.trace` nests automatically — when
a trace is already open it produces a child span, which is how the
replication group's trace flows through ``PDRServer.query`` and down the
degradation ladder without any explicit plumbing.

Two recording styles:

* ``with tracer.trace("rung", method="fr") as span:`` — measures the
  enclosed block with :func:`time.perf_counter` and pushes the span so
  nested work attaches to it.
* ``tracer.record_span("fetch", seconds)`` — folds an already-measured
  leaf into the enclosing span's per-stage accumulator.  A stage that
  fires once per candidate cell can fire thousands of times per query,
  so leaves are *aggregated*, not materialized: one dict slot per stage
  name holding a count, a running duration fold and sums of any numeric
  attributes.  Instrumented code that must keep its own ``perf_counter``
  arithmetic (the FR stage accounting predates tracing and its floats
  are contractual — ``stage_seconds`` compatibility is bit-for-bit)
  measures once and hands the *same float* to the trace; because the
  accumulator performs the identical ``total += dt`` fold in recording
  order, trace-derived stage totals equal the hand-accumulated ones
  exactly.

When tracing is disabled — or no trace is open — both styles degrade to a
shared no-op span; the cost is one branch and one ``perf_counter`` pair.

Traces also cross process boundaries: a wire request frame may carry a
``trace`` envelope (see ``serving/protocol.py``), and the serving tier
adopts it with ``with tracer.adopt(trace_id, parent_id):`` before
dispatching — the next root-level ``trace()`` on that thread joins the
remote trace instead of opening a fresh one, and is marked as a
*boundary* whose direct children are *local roots* (the unit the
slow-query log accounts).  :func:`new_trace_id` mints pid-prefixed ids
for envelopes so two processes' counters cannot collide in the journal.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, List, Optional

__all__ = [
    "Span",
    "NOOP_SPAN",
    "Tracer",
    "new_trace_id",
    "new_span_id",
    "render_span_tree",
]

_ids = itertools.count(1)


def _next_id() -> str:
    return format(next(_ids), "012x")


def new_span_id() -> str:
    """A fresh span id from the process-local counter.

    For callers (the wire client) that build span dicts by hand rather
    than through :class:`Span`.
    """
    return _next_id()


def new_trace_id() -> str:
    """A trace id safe to propagate across processes.

    In-process trace ids are bare counters — deterministic, but two
    processes both start counting at 1, so an id that crosses a socket
    is prefixed with the originating pid to keep journal joins unique.
    """
    return f"{os.getpid():08x}{next(_ids):08x}"


class Span:
    """One timed node of a trace tree."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "started", "duration", "attrs", "children", "stages",
        "local_root", "boundary",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _next_id()
        self.parent_id = parent_id
        self.started = 0.0
        self.duration = 0.0
        self.attrs: dict = attrs or {}
        self.children: List["Span"] = []
        # Aggregated leaves from record_span(): name -> {"count", "seconds",
        # <summed numeric attrs>}.  "seconds" is a running fold in recording
        # order — the bit-for-bit twin of the instrumented code's own
        # ``total += dt`` accumulation.
        self.stages: Dict[str, dict] = {}
        # ``local_root``: the top of this *process's* contribution to a
        # trace — a true root, or the first span under a cross-process
        # boundary.  The slow-query log offers local roots, so a query
        # arriving over the wire (nested under an adopted "dispatch"
        # span) still produces exactly one exemplar.
        self.local_root = False
        # ``boundary``: this span marks a cross-process adoption point;
        # its direct children are local roots.
        self.boundary = False

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def child(self, name: str, attrs: Optional[dict] = None) -> "Span":
        span = Span(name, self.trace_id, parent_id=self.span_id, attrs=attrs)
        self.children.append(span)
        return span

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def stage_totals(self) -> Dict[str, float]:
        """Durations of descendant work keyed by stage/span name.

        Aggregated leaves contribute their accumulator value — already a
        ``total += dt`` fold in recording order, so for a stage whose
        instrumented code hand-accumulates the same floats the result is
        bit-for-bit identical (float addition is order-sensitive; the
        accumulator's order *is* the recording order).  Child spans are
        then visited depth-first, adding their own durations and stage
        totals.
        """
        totals: Dict[str, float] = {}
        for name, acc in self.stages.items():
            totals[name] = totals.get(name, 0.0) + acc["seconds"]
        for child in self.children:
            totals[child.name] = totals.get(child.name, 0.0) + child.duration
            for name, value in child.stage_totals().items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration_seconds": self.duration,
            "attrs": dict(self.attrs),
            "stages": {name: dict(acc) for name, acc in self.stages.items()},
            "children": [child.to_dict() for child in self.children],
        }


class _NoopSpan:
    """Shared do-nothing span for disabled tracing / no open trace."""

    __slots__ = ()
    name = "noop"
    trace_id = ""
    span_id = ""
    parent_id = None
    duration = 0.0
    children: List[Span] = []
    attrs: dict = {}
    stages: Dict[str, dict] = {}
    local_root = False
    boundary = False

    @property
    def is_root(self) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass

    def stage_totals(self) -> Dict[str, float]:
        return {}

    def walk(self):
        return iter(())

    def to_dict(self) -> dict:
        return {}


NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager that times a span and maintains the tracer stack."""

    __slots__ = ("_tracer", "_span", "_t0")

    def __init__(self, tracer: "Tracer", span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self):
        self._t0 = time.perf_counter()
        if self._span is not NOOP_SPAN:
            self._span.started = self._t0
            self._tracer._stack().append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        dt = time.perf_counter() - self._t0
        if self._span is not NOOP_SPAN:
            self._span.duration = dt
            if exc_type is not None:
                self._span.attrs.setdefault("error", exc_type.__name__)
            stack = self._tracer._stack()
            if stack and stack[-1] is self._span:
                stack.pop()


class _Adoption:
    """Context manager installing a remote trace context on this thread.

    While active, the *next* root-level :meth:`Tracer.trace` on this
    thread joins the remote trace instead of starting a fresh one: the
    span is created with the remote ``trace_id``, parented to the remote
    ``parent_id``, and marked as a cross-process ``boundary`` so its
    direct children count as local roots for slow-query accounting.
    Nesting restores the previous remote context on exit, and the worker
    thread is always left clean for the next request.
    """

    __slots__ = ("_tracer", "_remote", "_prev")

    def __init__(self, tracer: "Tracer", trace_id: str, parent_id: Optional[str]) -> None:
        self._tracer = tracer
        self._remote = (trace_id, parent_id)

    def __enter__(self) -> "_Adoption":
        local = self._tracer._local
        self._prev = getattr(local, "remote", None)
        local.remote = self._remote
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._local.remote = self._prev


class Tracer:
    """Thread-local span stack plus the enable switch."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def adopt(self, trace_id: str, parent_id: Optional[str] = None) -> _Adoption:
        """Adopt a remote trace context (from a wire envelope) on this thread."""
        return _Adoption(self, trace_id, parent_id)

    def trace(self, name: str, **attrs) -> _SpanContext:
        """Open a span: a root when no trace is active, a child otherwise.

        With a remote context adopted (:meth:`adopt`), a root-level call
        joins the remote trace: same ``trace_id``, parented to the remote
        span, marked as a boundary so children are local roots.
        """
        if not self.enabled:
            return _SpanContext(self, NOOP_SPAN)
        parent = self.current()
        if parent is None:
            remote = getattr(self._local, "remote", None)
            if remote is not None:
                span = Span(
                    name, trace_id=remote[0], parent_id=remote[1],
                    attrs=attrs or None,
                )
                span.boundary = True
            else:
                span = Span(name, trace_id=_next_id(), attrs=attrs or None)
            span.local_root = True
        else:
            span = parent.child(name, attrs=attrs or None)
            span.local_root = parent.boundary
        return _SpanContext(self, span)

    # ``span`` differs from ``trace`` only in intent: it never *starts*
    # a trace — without an open trace it is a no-op, so instrumented
    # library code costs nothing when nobody upstream asked for a trace.
    def span(self, name: str, **attrs) -> _SpanContext:
        if not self.enabled:
            return _SpanContext(self, NOOP_SPAN)
        parent = self.current()
        if parent is None:
            return _SpanContext(self, NOOP_SPAN)
        return _SpanContext(self, parent.child(name, attrs=attrs or None))

    def record_span(self, name: str, seconds: float, **attrs) -> None:
        """Fold an already-measured leaf into the current span.

        Aggregates rather than allocates: a per-cell stage firing
        thousands of times per query costs one dict update per firing,
        and the resulting trace stays small enough to serialize into the
        slow-query log.  Numeric attributes are summed.
        """
        if not self.enabled:
            return
        parent = self.current()
        if parent is None:
            return
        acc = parent.stages.get(name)
        if acc is None:
            acc = parent.stages[name] = {"count": 0, "seconds": 0.0}
        acc["count"] += 1
        acc["seconds"] += seconds
        for key, value in attrs.items():
            if isinstance(value, (int, float)):
                acc[key] = acc.get(key, 0) + value


def render_span_tree(tree: dict, indent: int = 0) -> List[str]:
    """Pretty-print a serialized span tree (``Span.to_dict`` shape).

    One line per span — name, duration, interesting attrs — with
    aggregated stage leaves listed beneath their owning span.  Shared by
    ``repro trace`` and the loadtest worst-trace report.
    """
    if not tree:
        return []
    pad = "  " * indent
    dur = tree.get("duration_seconds", 0.0) or 0.0
    attrs = tree.get("attrs") or {}
    attr_text = " ".join(
        f"{key}={value}" for key, value in sorted(attrs.items())
    )
    line = f"{pad}{tree.get('name', '?')}  {dur * 1000.0:.2f}ms"
    if attr_text:
        line += f"  [{attr_text}]"
    lines = [line]
    for name, acc in sorted((tree.get("stages") or {}).items()):
        seconds = acc.get("seconds", 0.0)
        count = acc.get("count", 0)
        lines.append(
            f"{pad}  - {name}  {seconds * 1000.0:.2f}ms  (x{count})"
        )
    for child in tree.get("children") or ():
        lines.extend(render_span_tree(child, indent + 1))
    return lines
