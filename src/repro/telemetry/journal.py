"""The unified ops event journal: append-only JSONL with rotation.

Every operationally interesting transition — supervisor child lifecycle,
boot-scrub findings, failover, read-only enter/exit, WAL prune, admission
shed, circuit-breaker state changes, SLO burn-rate crossings, sampled
wire traces — lands here as one JSON record per line:

    {"seq": 12, "ts": 1754700000.123, "perf": 8123.45, "pid": 4242,
     "event": "supervise.ready", "role": "supervisor", "epoch": 3,
     "generation": 2, "trace_id": null, ...event fields...}

``seq`` is per-process monotonic; ``ts`` is wall clock (for humans and
cross-host joins), ``perf`` is ``time.monotonic()`` (for intra-process
interval math that survives clock steps — the same split the lockfile
and deadline paths use).  ``trace_id`` is stamped automatically whenever
the emitting thread is inside an open span, which is what lets
``repro trace`` join journal records to a stitched span tree.

Cross-process safety: the supervisor parent and the serve child share
one journal *directory*, but each process appends only to its own
``journal-<pid>-<n>.jsonl`` segments — no write interleaving, no
rotation races.  Readers glob every segment and merge on ``(ts, pid,
seq)``.  Rotation is size-capped per process (``max_segment_bytes`` ×
``max_segments``); the journal lives inside the state dir, so the PR 7
disk budget accounts its bytes like any other state file, and the cap
keeps it a rounding error against the WAL retention math.

Unbound (no ``bind()`` call, e.g. unit tests or library use), the
journal is an in-memory ring — ``emit()`` still returns seqs and
``recent()`` still answers, nothing touches disk.  Set
``REPRO_JOURNAL_DIR`` to bind lazily on first emit (how the CI metrics
job captures a probe workload's journal without a serving process).

Writes are line-buffered and flushed, not fsynced: the journal is an
observability artifact, not a durability one — a torn final line after
SIGKILL is expected and readers skip unparseable lines.
"""

from __future__ import annotations

import glob
import io
import json
import os
import threading
import time
from collections import deque
from typing import Iterable, List, Optional

__all__ = ["Journal", "JOURNAL", "read_journal", "JOURNAL_ENV"]

JOURNAL_ENV = "REPRO_JOURNAL_DIR"

#: Per-process rotation defaults: 512 KiB x 4 segments = at most ~2 MiB
#: of journal per process, far under any disk-budget watermark.
DEFAULT_MAX_SEGMENT_BYTES = 512 * 1024
DEFAULT_MAX_SEGMENTS = 4


def _current_trace_id() -> Optional[str]:
    """The trace id of the emitting thread's innermost open span, if any."""
    try:
        from . import TELEMETRY
    except ImportError:  # mid-import of the telemetry package
        return None
    span = TELEMETRY.tracer.current()
    if span is None or not span.trace_id:
        return None
    return span.trace_id


class Journal:
    """One process's journal writer: in-memory ring until bound to a dir."""

    def __init__(self, ring_capacity: int = 512) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._ring: deque = deque(maxlen=ring_capacity)
        self._dir: Optional[str] = None
        self._fh: Optional[io.TextIOWrapper] = None
        self._segment_index = 0
        self._segment_bytes = 0
        self.max_segment_bytes = DEFAULT_MAX_SEGMENT_BYTES
        self.max_segments = DEFAULT_MAX_SEGMENTS
        self.rotations = 0
        # Ambient context merged into every record; update_context() as
        # role/epoch/generation become known or change.
        self._context = {"role": None, "epoch": None, "generation": None}
        self._env_checked = False

    # ------------------------------------------------------------------
    # binding and rotation
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Optional[str]:
        return self._dir

    def bind(
        self,
        directory: str,
        *,
        max_segment_bytes: Optional[int] = None,
        max_segments: Optional[int] = None,
        role: Optional[str] = None,
    ) -> None:
        """Start appending to ``directory`` (created if missing)."""
        with self._lock:
            self._close_locked()
            os.makedirs(directory, exist_ok=True)
            self._dir = directory
            if max_segment_bytes is not None:
                self.max_segment_bytes = max(1024, int(max_segment_bytes))
            if max_segments is not None:
                self.max_segments = max(1, int(max_segments))
            if role is not None:
                self._context["role"] = role
            self._env_checked = True
            self._open_segment_locked()

    def unbind(self) -> None:
        """Close the on-disk segment; keep journaling to the ring only."""
        with self._lock:
            self._close_locked()
            self._dir = None
            self._env_checked = True

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def _segment_path(self, index: int) -> str:
        assert self._dir is not None
        return os.path.join(
            self._dir, f"journal-{os.getpid()}-{index:04d}.jsonl"
        )

    def _own_segments_locked(self) -> List[str]:
        """This process's segments, oldest first (numeric index order)."""
        def index_of(path: str) -> int:
            try:
                return int(os.path.basename(path).rsplit("-", 1)[1].split(".")[0])
            except (IndexError, ValueError):
                return -1
        return sorted(
            glob.glob(os.path.join(self._dir, f"journal-{os.getpid()}-*.jsonl")),
            key=index_of,
        )

    def _open_segment_locked(self) -> None:
        # Resume after the highest existing index for this pid so a
        # re-bind (or a recycled pid) never truncates history.
        own = self._own_segments_locked()
        if own:
            tail = own[-1]
            try:
                self._segment_index = int(
                    os.path.basename(tail).rsplit("-", 1)[1].split(".")[0]
                )
                self._segment_bytes = os.path.getsize(tail)
            except (ValueError, OSError):
                self._segment_index += 1
                self._segment_bytes = 0
        else:
            self._segment_bytes = 0
        self._fh = open(
            self._segment_path(self._segment_index), "a", encoding="utf-8"
        )

    def _rotate_locked(self) -> None:
        self._close_locked()
        self._segment_index += 1
        self._segment_bytes = 0
        self.rotations += 1
        self._fh = open(
            self._segment_path(self._segment_index), "a", encoding="utf-8"
        )
        # Prune this process's oldest segments beyond the cap.
        own = self._own_segments_locked()
        while len(own) > self.max_segments:
            victim = own.pop(0)
            try:
                os.unlink(victim)
            except OSError:
                break

    # ------------------------------------------------------------------
    # context and emission
    # ------------------------------------------------------------------
    def update_context(self, **ctx) -> None:
        """Merge ambient fields (role / epoch / generation) into records."""
        with self._lock:
            for key, value in ctx.items():
                self._context[key] = value

    def emit(self, event: str, **fields) -> int:
        """Append one record; returns its per-process monotonic seq."""
        with self._lock:
            if not self._env_checked:
                self._env_checked = True
                env_dir = os.environ.get(JOURNAL_ENV, "").strip()
                if env_dir:
                    os.makedirs(env_dir, exist_ok=True)
                    self._dir = env_dir
                    self._open_segment_locked()
            self._seq += 1
            record = {
                "seq": self._seq,
                "ts": time.time(),
                "perf": time.monotonic(),
                "pid": os.getpid(),
                "event": event,
                "role": self._context.get("role"),
                "epoch": self._context.get("epoch"),
                "generation": self._context.get("generation"),
                "trace_id": fields.pop("trace_id", None) or _current_trace_id(),
            }
            # Event fields must not clobber the record envelope: a caller
            # passing e.g. ``pid=<child pid>`` means a *subject* pid, not
            # the emitter's - keep both, the collision renamed.
            for key in list(fields):
                if key in record:
                    fields[f"subject_{key}"] = fields.pop(key)
            record.update(fields)
            self._ring.append(record)
            if self._fh is not None:
                line = json.dumps(record, separators=(",", ":"), default=str)
                try:
                    self._fh.write(line + "\n")
                    self._fh.flush()
                    self._segment_bytes += len(line) + 1
                    if self._segment_bytes >= self.max_segment_bytes:
                        self._rotate_locked()
                except (OSError, ValueError):
                    # Journal writes must never take the server down —
                    # fall back to ring-only on a poisoned fd.
                    self._close_locked()
            return self._seq

    def recent(self, limit: Optional[int] = None) -> List[dict]:
        """The in-memory ring, oldest first."""
        with self._lock:
            records = list(self._ring)
        if limit is not None:
            records = records[-limit:]
        return records

    def disk_bytes(self) -> int:
        """Total bytes of this process's on-disk segments (0 if unbound)."""
        if self._dir is None:
            return 0
        total = 0
        for path in glob.glob(
            os.path.join(self._dir, f"journal-{os.getpid()}-*.jsonl")
        ):
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total


def read_journal(
    directory: str,
    *,
    event: Optional[str] = None,
    trace_id: Optional[str] = None,
    since: Optional[float] = None,
    pids: Optional[Iterable[int]] = None,
    limit: Optional[int] = None,
) -> List[dict]:
    """Read and merge every process's segments in ``directory``.

    Records are merged on ``(ts, pid, seq)`` — cross-process order is
    wall-clock best-effort, per-process order is exact.  Unparseable
    lines (torn tails after SIGKILL) are skipped.  ``since`` filters on
    the wall timestamp (epoch seconds); ``limit`` keeps the newest N
    after filtering.
    """
    records: List[dict] = []
    pid_filter = set(pids) if pids is not None else None
    for path in sorted(glob.glob(os.path.join(directory, "journal-*.jsonl"))):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if not isinstance(record, dict):
                        continue
                    records.append(record)
        except OSError:
            continue
    if event is not None:
        records = [r for r in records if r.get("event") == event]
    if trace_id is not None:
        records = [r for r in records if r.get("trace_id") == trace_id]
    if since is not None:
        records = [r for r in records if (r.get("ts") or 0.0) >= since]
    records.sort(key=lambda r: (r.get("ts", 0.0), r.get("pid", 0), r.get("seq", 0)))
    if limit is not None and limit >= 0:
        records = records[len(records) - min(limit, len(records)):]
    return records


#: The process-wide journal every instrumented module shares.
JOURNAL = Journal()
