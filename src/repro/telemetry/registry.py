"""The metrics registry: counters, gauges and fixed-bucket histograms.

Zero third-party dependencies, process-wide, label-aware.  Every
instrument is owned by a :class:`MetricsRegistry`; creating the same
family twice returns the same object, so call sites can resolve their
instruments at import time and hot loops pay one attribute lookup plus
one ``enabled`` branch per event.

Design constraints (the observability layer rides on every hot path):

* **Cheap when disabled.**  Instruments hold a reference to their
  registry and check its ``enabled`` flag on every mutation; a disabled
  registry turns every ``inc``/``set``/``observe`` into a single branch.
* **Cheap when enabled.**  Counters and gauges are one float add/store;
  histograms are a :func:`bisect.bisect_left` into a fixed bucket table
  (no allocation, no per-observation sorting).
* **Resettable in place.**  :meth:`MetricsRegistry.reset` zeroes values
  but keeps every family and child object alive, so references cached by
  instrumented modules never go stale.

Quantiles (p50/p95/p99) are estimated from the cumulative bucket counts
by linear interpolation inside the target bucket — the standard
Prometheus ``histogram_quantile`` estimator, computed here so operators
get latency percentiles without a scrape pipeline.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "COUNT_BUCKETS",
]

# Seconds.  Spans four orders of magnitude below a millisecond because the
# interesting stage costs (filter arithmetic, one WAL append) live there.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# For size-shaped histograms (batch sizes, wave widths).
COUNT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 25000.0, 50000.0, 100000.0,
)

_VALID_TYPES = ("counter", "gauge", "histogram")


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_registry", "value")

    def __init__(self, registry: "MetricsRegistry") -> None:
        self._registry = registry
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        self.value += amount

    def _reset(self) -> None:
        self.value = 0.0

    def _sample(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (lags, epochs, ratios)."""

    __slots__ = ("_registry", "value")

    def __init__(self, registry: "MetricsRegistry") -> None:
        self._registry = registry
        self.value = 0.0

    def set(self, value: float) -> None:
        if self._registry.enabled:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._registry.enabled:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        if self._registry.enabled:
            self.value -= amount

    def _reset(self) -> None:
        self.value = 0.0

    def _sample(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket distribution with sum/count and quantile estimation.

    ``bounds`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches the overflow, so ``observe`` never drops an observation.
    """

    __slots__ = ("_registry", "bounds", "bucket_counts", "sum", "count")

    def __init__(self, registry: "MetricsRegistry", bounds: Sequence[float]) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must strictly increase: {bounds}")
        self._registry = registry
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) of the observations.

        Linear interpolation within the bucket that crosses the target
        rank; the overflow bucket is pinned to its lower bound (there is
        no finite upper edge to interpolate toward).  Returns ``nan``
        with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                if i >= len(self.bounds):
                    return self.bounds[-1]  # overflow bucket: clamp
                hi = self.bounds[i]
                within = (rank - cumulative) / n
                return lo + (hi - lo) * within
            cumulative += n
        return self.bounds[-1]  # pragma: no cover - rank <= count always hits

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def _reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def _sample(self) -> dict:
        cumulative = 0
        buckets = []
        for bound, n in zip(self.bounds, self.bucket_counts):
            cumulative += n
            buckets.append([bound, cumulative])
        buckets.append(["+Inf", cumulative + self.bucket_counts[-1]])
        return {
            "buckets": buckets,
            "sum": self.sum,
            "count": self.count,
            "quantiles": {
                "p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
            },
        }


class MetricFamily:
    """One named metric plus its labeled children.

    A family declared with no label names has exactly one child (the
    family itself proxies to it); with label names, :meth:`labels`
    resolves/creates the child for one label-value combination.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Sequence[float]],
    ) -> None:
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: "Dict[Tuple[str, ...], object]" = {}
        if not labelnames:
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self):
        if self.kind == "counter":
            return Counter(self.registry)
        if self.kind == "gauge":
            return Gauge(self.registry)
        return Histogram(self.registry, self.buckets or DEFAULT_LATENCY_BUCKETS)

    def labels(self, *values: str, **kv: str):
        """The child instrument for one label-value combination."""
        if kv:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            values = tuple(str(kv[name]) for name in self.labelnames)
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {values}"
            )
        child = self._children.get(values)
        if child is None:
            child = self._make_child()
            self._children[values] = child
        return child

    # Unlabeled families proxy the instrument API directly.
    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def set(self, value: float) -> None:
        self._default.set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    @property
    def value(self) -> float:
        return self._default.value

    def quantile(self, q: float) -> float:
        return self._default.quantile(q)

    @property
    def count(self) -> int:
        return self._default.count

    @property
    def mean(self) -> float:
        return self._default.mean

    @property
    def sum(self) -> float:
        return self._default.sum

    def series(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        return self._children.items()

    def _reset(self) -> None:
        for child in self._children.values():
            child._reset()

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": [
                {"labels": dict(zip(self.labelnames, values)), **child._sample()}
                for values, child in sorted(self._children.items())
            ],
        }


class MetricsRegistry:
    """Owns every metric family; the scrape/snapshot surface.

    ``enabled`` is the single kill switch: instruments check it on every
    mutation, so flipping it off turns the whole telemetry layer into
    branches (see the enabled-vs-disabled benchmark in
    ``benchmarks/perf_gate.py``).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: "Dict[str, MetricFamily]" = {}
        self._collect_hooks: List = []

    def on_collect(self, hook) -> None:
        """Register a callable run before every :meth:`snapshot`.

        For derived metrics (ratios, utilizations) that would otherwise
        need recomputing on every hot-path event: the instrumented code
        keeps cheap counters and the hook folds them into a gauge only
        when somebody actually scrapes.
        """
        self._collect_hooks.append(hook)

    # ------------------------------------------------------------------
    # family construction (idempotent by name)
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"not {kind}"
                )
            return existing
        family = MetricFamily(
            self, name, kind, help_text, tuple(labelnames), buckets
        )
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "gauge", help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help_text, labelnames, buckets)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def snapshot(self) -> dict:
        """A plain-dict image of every family (the JSON export payload)."""
        for hook in self._collect_hooks:
            hook()
        return {"families": [family.snapshot() for family in self.families()]}

    def reset(self) -> None:
        """Zero every value in place; family/child identities survive."""
        for family in self._families.values():
            family._reset()
