"""Unified observability: metrics registry, tracing, slow-query log, exporters.

One process-wide :class:`Telemetry` hub (:data:`TELEMETRY`) owns

* a :class:`~repro.telemetry.registry.MetricsRegistry` of counters,
  gauges and fixed-bucket latency histograms,
* a :class:`~repro.telemetry.tracing.Tracer` building per-query span
  trees (admission -> rung -> filter/fetch/sweep or bnb),
* a :class:`~repro.telemetry.slowlog.SlowQueryLog` retaining the worst
  traces as replayable exemplars,

and the exporters (:mod:`.exporters`) render it as Prometheus text or a
JSON snapshot — via ``repro metrics`` offline or ``MetricsHTTPHandler``
live.

Telemetry is **on by default and cheap**: every instrument mutation is
one branch plus one float op when enabled, and just the branch when
disabled (``REPRO_TELEMETRY=0`` in the environment, or
``TELEMETRY.disable()``).  The enabled-vs-disabled overhead is gated
below 5% by ``benchmarks/perf_gate.py``.

Instrumented modules resolve their instruments once at import time::

    from ..telemetry import TELEMETRY
    _WAVES = TELEMETRY.registry.counter("repro_ingest_waves_total", "...")

which stays valid forever — ``Telemetry.reset()`` zeroes values in place
without replacing instrument objects.
"""

from __future__ import annotations

import os

from .exporters import (
    MetricsHTTPHandler,
    REQUIRED_FAMILIES,
    load_snapshot,
    render_json,
    render_prometheus,
    save_snapshot,
    serve_metrics,
)
from .journal import JOURNAL, Journal, read_journal
from .registry import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .slo import SLO, SLOMonitor
from .slowlog import SlowQueryEntry, SlowQueryLog
from .tracing import (
    NOOP_SPAN,
    Span,
    Tracer,
    new_span_id,
    new_trace_id,
    render_span_tree,
)

__all__ = [
    "Telemetry",
    "TELEMETRY",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "NOOP_SPAN",
    "new_span_id",
    "new_trace_id",
    "render_span_tree",
    "SlowQueryLog",
    "SlowQueryEntry",
    "Journal",
    "JOURNAL",
    "read_journal",
    "SLOMonitor",
    "SLO",
    "MetricsHTTPHandler",
    "serve_metrics",
    "render_prometheus",
    "render_json",
    "save_snapshot",
    "load_snapshot",
    "REQUIRED_FAMILIES",
    "DEFAULT_LATENCY_BUCKETS",
    "COUNT_BUCKETS",
]


class Telemetry:
    """The observability hub: registry + tracer + slow-query log."""

    def __init__(self, enabled: bool = True, slowlog_capacity: int = 32) -> None:
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(enabled=enabled)
        self.slow_queries = SlowQueryLog(capacity=slowlog_capacity)

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def enable(self) -> None:
        self.registry.enabled = True
        self.tracer.enabled = True

    def disable(self) -> None:
        self.registry.enabled = False
        self.tracer.enabled = False

    def reset(self) -> None:
        """Zero all metric values and drop slow-log entries, in place."""
        self.registry.reset()
        self.slow_queries.clear()
        SLO.reset()

    def note_query(self, span, result, *, requested_method: str) -> None:
        """Offer a finished *local-root* query span to the slow-query log.

        Nested spans (a replica query inside a group trace) are skipped —
        the local-root owner offers the whole trace once, so one served
        query never produces two exemplars.  A local root is a true root
        or the first span under an adopted wire boundary (see
        :mod:`.tracing`) — queries arriving over TCP still get exemplars.
        Retained entries carry the trace id and a ``slow_query`` journal
        seq so ``repro trace`` can join log, journal and span tree.
        """
        if span is NOOP_SPAN or not (span.local_root or span.is_root):
            return
        query = result.query
        if query is None:
            return
        if not self.slow_queries.would_retain(span.duration):
            self.slow_queries.note_skipped()
            return  # fast path: don't serialize trees that can't be retained
        entry = SlowQueryEntry(
            duration_seconds=span.duration,
            method=result.stats.method,
            requested_method=requested_method,
            qt=query.qt,
            l=query.l,
            rho=query.rho,
            degraded=result.degraded,
            served_by=result.served_by,
            trace=span.to_dict(),
            trace_id=span.trace_id,
        )
        if self.slow_queries.offer(entry):
            entry.journal_seq = JOURNAL.emit(
                "slow_query",
                trace_id=span.trace_id,
                duration_ms=round(span.duration * 1000.0, 3),
                method=result.stats.method,
                requested_method=requested_method,
                qt=query.qt,
                l=query.l,
                rho=query.rho,
                degraded=result.degraded,
            )


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


#: The process-wide hub every instrumented module shares.
TELEMETRY = Telemetry(enabled=_env_enabled())
