"""Exporters: Prometheus text format, JSON snapshots, and an HTTP scrape
endpoint.

Both exporters render a registry *snapshot* (the plain-dict image from
:meth:`~repro.telemetry.registry.MetricsRegistry.snapshot`), so the same
code path serves a live registry, a snapshot saved by an earlier process
(``repro query --metrics-out``) and the HTTP handler.

The Prometheus rendering follows the text exposition format 0.0.4:
``# HELP`` / ``# TYPE`` headers per family, counters suffixed
``_total`` (when not already), histograms exploded into cumulative
``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

__all__ = [
    "render_prometheus",
    "render_json",
    "save_snapshot",
    "load_snapshot",
    "MetricsHTTPHandler",
    "serve_metrics",
    "REQUIRED_FAMILIES",
]

# The metric families an instrumented deployment must expose; the CI
# metrics-smoke job fails the scrape when any is missing (see
# tests/prometheus_checker.py).
REQUIRED_FAMILIES = (
    "repro_ingest_reports_total",
    "repro_ingest_waves_total",
    "repro_query_stage_seconds",
    "repro_query_seconds",
    # repro_refine_bands_total is labeled and only materialises once a
    # banded FR query runs; the pool-worker gauge and band-stage histogram
    # are unlabeled/required
    "repro_refine_pool_workers",
    "repro_refine_band_seconds",
    "repro_wal_append_seconds",
    "repro_wal_fsync_seconds",
    "repro_replication_lag_records",
    "repro_histogram_cache_hits_total",
    "repro_histogram_cache_hit_ratio",
    "repro_admission_sheds_total",
    # SLO burn/budget gauges are (re)derived by an on_collect hook at
    # every scrape, so they always carry samples; the events counter is
    # labeled and materialises with the first served query, which every
    # instrumented deployment's probe workload produces
    "repro_slo_events_total",
    "repro_slo_burn_rate",
    "repro_slo_budget_remaining",
    # unlabeled resource gauges exist (at zero) from process start;
    # repro_resource_events_total is labeled and only materialises under
    # actual resource pressure, so it is not required of every scrape
    "repro_state_dir_bytes",
    "repro_wal_segments",
    "repro_readonly",
    "repro_build_info",
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in merged.items()
    )
    return "{" + inner + "}"


def _sample_name(family: dict) -> str:
    name = family["name"]
    if family["type"] == "counter" and not name.endswith("_total"):
        name += "_total"
    return name


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot in the Prometheus text format."""
    lines = []
    for family in snapshot.get("families", []):
        name = _sample_name(family)
        kind = family["type"]
        base = name[: -len("_total")] if kind == "counter" else name
        help_text = (family.get("help") or "").replace("\n", " ")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family.get("series", []):
            labels = series.get("labels", {})
            if kind == "histogram":
                for bound, cumulative in series["buckets"]:
                    le = "+Inf" if bound == "+Inf" else _format_value(float(bound))
                    lines.append(
                        f"{base}_bucket{_labels_text(labels, {'le': le})} "
                        f"{_format_value(cumulative)}"
                    )
                lines.append(
                    f"{base}_sum{_labels_text(labels)} {_format_value(series['sum'])}"
                )
                lines.append(
                    f"{base}_count{_labels_text(labels)} "
                    f"{_format_value(series['count'])}"
                )
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} {_format_value(series['value'])}"
                )
    return "\n".join(lines) + "\n"


def render_json(snapshot: dict, slow_queries: Optional[dict] = None) -> str:
    payload = dict(snapshot)
    if slow_queries is not None:
        payload["slow_queries"] = slow_queries
    return json.dumps(payload, indent=2, sort_keys=True, default=str)


def save_snapshot(snapshot: dict, path: str, slow_queries: Optional[dict] = None) -> None:
    """Persist a snapshot so another process can render it later."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_json(snapshot, slow_queries=slow_queries))
        fh.write("\n")


def load_snapshot(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


class MetricsHTTPHandler(BaseHTTPRequestHandler):
    """Scrape endpoint for a live server process.

    Bind a telemetry hub with :meth:`bound_to` (class factory — the
    stdlib HTTP server instantiates handlers per request, so state rides
    on the class), then hand the class to any ``http.server`` server::

        handler = MetricsHTTPHandler.bound_to(TELEMETRY)
        ThreadingHTTPServer(("127.0.0.1", 9100), handler).serve_forever()

    Routes: ``/metrics`` (Prometheus text), ``/metrics.json`` (JSON
    snapshot including the slow-query log).
    """

    telemetry = None  # type: ignore[assignment]

    @classmethod
    def bound_to(cls, telemetry) -> type:
        return type("BoundMetricsHTTPHandler", (cls,), {"telemetry": telemetry})

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        if self.telemetry is None:
            self._respond(500, "text/plain", "no telemetry hub bound\n")
            return
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = render_prometheus(self.telemetry.registry.snapshot())
            self._respond(200, "text/plain; version=0.0.4", body)
        elif path == "/metrics.json":
            body = render_json(
                self.telemetry.registry.snapshot(),
                slow_queries=self.telemetry.slow_queries.to_dict(),
            )
            self._respond(200, "application/json", body)
        else:
            self._respond(404, "text/plain", f"unknown path {path!r}\n")

    def _respond(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes are high-frequency; never spam stderr


def serve_metrics(telemetry, host: str = "127.0.0.1", port: int = 0):
    """Start a daemon-threaded scrape server; returns the ``HTTPServer``.

    ``port=0`` binds an ephemeral port (``server.server_address[1]``
    tells you which) — handy for tests and for running next to a serving
    process without port planning.  Call ``server.shutdown()`` to stop.
    """
    server = ThreadingHTTPServer((host, port), MetricsHTTPHandler.bound_to(telemetry))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server
