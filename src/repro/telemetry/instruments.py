"""Every metric family the system exposes, declared in one place.

Instrumented modules import the family objects below instead of
re-declaring names ad hoc, so help text, label names and bucket layouts
cannot drift between call sites, and the exporter always knows the full
set (``REQUIRED_FAMILIES`` in :mod:`.exporters` is checked by CI against
a live scrape).

Labeled families materialise a series per label combination on first
use; unlabeled ones exist (at zero) from process start.
"""

from __future__ import annotations

from typing import Optional

from . import TELEMETRY
from .registry import COUNT_BUCKETS
from .slo import SLO

_reg = TELEMETRY.registry

# ----------------------------------------------------------------------
# ingest
# ----------------------------------------------------------------------
INGEST_REPORTS = _reg.counter(
    "repro_ingest_reports_total",
    "Location reports by validation outcome",
    labelnames=("outcome",),  # accepted | rejected
)
INGEST_WAVES = _reg.counter(
    "repro_ingest_waves_total", "Batched ingest waves dispatched to listeners"
)
INGEST_WAVE_SIZE = _reg.histogram(
    "repro_ingest_wave_size",
    "Reports per dispatched ingest wave",
    buckets=COUNT_BUCKETS,
)
INGEST_WAVE_SPLITS = _reg.counter(
    "repro_ingest_wave_splits_total",
    "Waves split because an oid repeated within one batch",
)
DEAD_LETTERS = _reg.counter(
    "repro_dead_letters_total", "Reports quarantined by the validator"
)

# ----------------------------------------------------------------------
# query path
# ----------------------------------------------------------------------
QUERIES = _reg.counter(
    "repro_query_total",
    "Queries served, by evaluation method and outcome",
    labelnames=("method", "outcome"),  # outcome: ok | degraded
)
QUERY_SECONDS = _reg.histogram(
    "repro_query_seconds",
    "End-to-end query latency by requested method",
    labelnames=("method",),
)
QUERY_STAGE_SECONDS = _reg.histogram(
    "repro_query_stage_seconds",
    "Per-stage query latency (filter/fetch/sweep/bnb) by served method",
    labelnames=("method", "stage"),
)
REFINE_BANDS = _reg.counter(
    "repro_refine_bands_total",
    "Fused refinement bands, by how they were resolved",
    labelnames=("outcome",),  # swept | skipped (ρ-monotonic cache)
)
REFINE_POOL_WORKERS = _reg.gauge(
    "repro_refine_pool_workers",
    "Process-pool workers configured for band refinement (0 = inline)",
)
REFINE_BAND_SECONDS = _reg.histogram(
    "repro_refine_band_seconds",
    "Band-refinement pipeline latency per query, by stage",
    labelnames=("stage",),  # fuse | fetch | sweep | merge
)
LADDER_FALLBACKS = _reg.counter(
    "repro_query_ladder_fallbacks_total",
    "Degradation-ladder rungs abandoned (deadline or fault), by rung",
    labelnames=("rung",),
)
QUERY_RETRIES = _reg.counter(
    "repro_query_retries_total", "Transient-fault retries spent inside queries"
)

# ----------------------------------------------------------------------
# durability (WAL + checkpoints + recovery)
# ----------------------------------------------------------------------
WAL_APPEND_SECONDS = _reg.histogram(
    "repro_wal_append_seconds", "WAL write+flush latency per append call"
)
WAL_FSYNC_SECONDS = _reg.histogram(
    "repro_wal_fsync_seconds", "WAL fsync latency per append call"
)
WAL_RECORDS = _reg.counter(
    "repro_wal_records_total", "Records durably appended to the WAL"
)
WAL_LSN = _reg.gauge("repro_wal_lsn", "LSN of the last durably appended record")
CHECKPOINTS = _reg.counter("repro_checkpoints_total", "Checkpoints written")
CHECKPOINT_SECONDS = _reg.histogram(
    "repro_checkpoint_seconds", "Full checkpoint duration (write+manifest+rotate)"
)
RECOVERIES = _reg.counter(
    "repro_recoveries_total", "Successful checkpoint+replay recoveries"
)
RECOVERY_GENERATION = _reg.gauge(
    "repro_recovery_generation",
    "Recovery generation of the serving state directory (0 = never recovered)",
)

# ----------------------------------------------------------------------
# process supervision (repro supervise)
# ----------------------------------------------------------------------
SUPERVISOR_RESTARTS = _reg.counter(
    "repro_supervisor_restarts_total",
    "Child server processes restarted after a crash",
)
SUPERVISOR_CRASH_LOOPS = _reg.counter(
    "repro_supervisor_crash_loops_total",
    "Supervision lineages abandoned as crash loops",
)

# ----------------------------------------------------------------------
# replication + failover
# ----------------------------------------------------------------------
REPLICATION_LAG = _reg.gauge(
    "repro_replication_lag_records",
    "Acknowledged records not yet applied, per replica",
    labelnames=("replica",),
)
REPLICATION_APPLIED = _reg.counter(
    "repro_replication_applied_total",
    "Shipped records applied in LSN order, per replica",
    labelnames=("replica",),
)
REPLICATION_APPLY_SECONDS = _reg.histogram(
    "repro_replication_apply_seconds", "Replica drain latency per applied batch"
)
REPLICATION_EPOCH = _reg.gauge(
    "repro_replication_epoch", "Current fencing epoch of the replication group"
)
FAILOVERS = _reg.counter("repro_failovers_total", "Completed failover promotions")
FENCED_REJECTS = _reg.counter(
    "repro_replication_fenced_rejects_total",
    "Shipped records rejected for carrying a stale epoch",
)

# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
ADMISSION_ADMITTED = _reg.counter(
    "repro_admission_admitted_total", "Queries admitted by the front door"
)
ADMISSION_DEGRADED = _reg.counter(
    "repro_admission_degraded_total",
    "Queries admitted at a cheaper rung than requested",
)
ADMISSION_SHEDS = _reg.counter(
    "repro_admission_sheds_total",
    "Queries shed at the front door, by requested cost class",
    labelnames=("method",),
)

# ----------------------------------------------------------------------
# SLO error budget (telemetry.slo)
# ----------------------------------------------------------------------
SLO_EVENTS = _reg.counter(
    "repro_slo_events_total",
    "Query outcomes as the SLO monitor classified them",
    labelnames=("outcome",),  # ok | slow | error | shed
)
SLO_BURN_RATE = _reg.gauge(
    "repro_slo_burn_rate",
    "Error-budget burn rate per rolling window (1.0 = exactly on budget)",
    labelnames=("window",),  # 5s | 60s | 300s
)
SLO_BUDGET_REMAINING = _reg.gauge(
    "repro_slo_budget_remaining",
    "Unspent fraction of the error budget per rolling window",
    labelnames=("window",),
)


def slo_record(latency_seconds: Optional[float] = None, outcome: str = "ok") -> str:
    """Record one query event against the SLO monitor and its counter."""
    kind = SLO.record(latency_seconds=latency_seconds, outcome=outcome)
    SLO_EVENTS.labels(kind).inc()
    return kind


def _export_slo() -> None:
    for window, stats in SLO.snapshot().items():
        label = f"{window}s"
        SLO_BURN_RATE.labels(label).set(stats["burn_rate"])
        SLO_BUDGET_REMAINING.labels(label).set(stats["budget_remaining"])


# burn/budget are scrape-time derived values, like build identity
_export_slo()
_reg.on_collect(_export_slo)

# ----------------------------------------------------------------------
# caches and index maintenance
# ----------------------------------------------------------------------
CACHE_HITS = _reg.counter(
    "repro_histogram_cache_hits_total", "Prefix/block-sum cache hits"
)
CACHE_MISSES = _reg.counter(
    "repro_histogram_cache_misses_total", "Prefix/block-sum cache misses"
)
CACHE_HIT_RATIO = _reg.gauge(
    "repro_histogram_cache_hit_ratio",
    "Lifetime prefix/block-sum cache hit ratio (hits / lookups)",
)
TPR_REPACKS = _reg.counter(
    "repro_tpr_repacks_total",
    "TPR-tree whole-tree STR repacks, by trigger",
    labelnames=("kind",),  # bulk_insert | bulk_delete
)

# ----------------------------------------------------------------------
# resource budgets (disk / memory exhaustion)
# ----------------------------------------------------------------------
STATE_DIR_BYTES = _reg.gauge(
    "repro_state_dir_bytes",
    "Bytes held by the durable state directory (WAL + checkpoints)",
)
WAL_SEGMENTS = _reg.gauge(
    "repro_wal_segments", "WAL segments currently present in the state directory"
)
READONLY = _reg.gauge(
    "repro_readonly",
    "1 while the server is in read-only degraded mode, else 0",
)
RESOURCE_EVENTS = _reg.counter(
    "repro_resource_events_total",
    "Resource-budget lifecycle events",
    # soft_watermark | hard_watermark | readonly_enter | readonly_exit |
    # prune | wal_poisoned | wal_reopened | memory_shed
    labelnames=("event",),
)

# ----------------------------------------------------------------------
# chaos oracles
# ----------------------------------------------------------------------
CHAOS_ORACLES = _reg.counter(
    "repro_chaos_oracle_outcomes_total",
    "Chaos invariant-oracle sweep outcomes",
    labelnames=("outcome",),  # pass | fail
)

# ----------------------------------------------------------------------
# network serving (TCP front door)
# ----------------------------------------------------------------------
CONNECTIONS_ACTIVE = _reg.gauge(
    "repro_connections_active", "TCP connections currently open on the front door"
)
CONNECTIONS_TOTAL = _reg.counter(
    "repro_connections_total",
    "TCP connections closed, by how they ended",
    labelnames=("outcome",),  # closed | reset | timeout | drained
)
SERVING_FRAMES = _reg.counter(
    "repro_serving_frames_total",
    "Protocol frames answered, by operation and outcome",
    labelnames=("op", "outcome"),  # outcome: ok | error
)
SERVING_REQUEST_SECONDS = _reg.histogram(
    "repro_serving_request_seconds",
    "Server-side request latency (frame decoded -> response written)",
    labelnames=("op",),
)
SERVING_INFLIGHT = _reg.gauge(
    "repro_requests_inflight", "Requests currently executing behind the front door"
)
DRAIN_SECONDS = _reg.histogram(
    "repro_drain_duration_seconds",
    "Graceful-drain duration (stop accepting -> all connections closed)",
)

# ----------------------------------------------------------------------
# build identity
# ----------------------------------------------------------------------


def _git_sha() -> str:
    """Best-effort git revision: env override, then .git/HEAD, else unknown."""
    import os

    sha = os.environ.get("REPRO_GIT_SHA")
    if sha:
        return sha[:12]
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))))
    try:
        with open(os.path.join(root, ".git", "HEAD"), encoding="utf-8") as fh:
            head = fh.read().strip()
        if head.startswith("ref:"):
            ref = head.split(None, 1)[1]
            with open(os.path.join(root, ".git", ref), encoding="utf-8") as fh:
                return fh.read().strip()[:12]
        return head[:12]
    except OSError:
        return "unknown"


def _build_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # not installed; the pyproject version is canonical
        return "1.0.0"


BUILD_INFO = _reg.gauge(
    "repro_build_info",
    "Build identity (constant 1); version/python/git_sha ride as labels",
    labelnames=("version", "python", "git_sha"),
)


def _set_build_info() -> None:
    import platform

    BUILD_INFO.labels(_build_version(), platform.python_version(), _git_sha()).set(1)


_set_build_info()
# registry.reset() zeroes gauges in place; build identity is constant 1
# by contract, so re-assert it at every snapshot like other scrape-time
# values
_reg.on_collect(_set_build_info)
