"""The asyncio TCP front door for a PDR serving stack.

:class:`PDRTCPServer` mounts a backend — a single
:class:`~repro.core.system.PDRServer` or a whole
:class:`~repro.reliability.replication.ReplicationGroup` (admission
controller, deadline ladder, staleness router and failover included) —
behind the length-prefixed JSON protocol of :mod:`.protocol`:

* **Per-connection limits.**  Reads and writes carry timeouts (a
  slow-loris peer cannot hold a connection forever), frames above
  ``max_frame`` are refused with a structured error *without* breaking
  the stream framing, and at most ``max_inflight`` requests may be
  pipelined per connection — the excess is answered ``too_many_inflight``
  immediately rather than queued without bound.
* **One writer thread, many reader threads.**  Mutations (``report``,
  ``advance``, ``retire``) and control calls from
  :meth:`ServerThread.call` run on one dedicated executor thread, as the
  in-process stack always assumed.  Read-only queries (``fr_query``,
  ``pa_query``, ``query``, ``status``) fan out over a small reader pool
  instead, coordinated by a writer-preference read/write lock: reads run
  concurrently with each other (the band-fused refinement pipeline and
  the B&B evaluator release the GIL inside numpy/BLAS, so this is real
  parallelism), while any write drains the readers first and runs alone.
  A long FR refinement no longer heads-of-line-blocks every other query
  behind the single backend thread.
* **Structured errors.**  Admission sheds carry the token bucket's
  ``retry_after`` verbatim; writes reaching a non-primary return
  ``not_primary`` with a ``redirect``; a draining server answers
  ``draining`` (also with ``retry_after``) instead of hanging up.
* **Graceful drain.**  :meth:`PDRTCPServer.drain` stops accepting,
  finishes in-flight requests up to ``drain_deadline`` seconds, then
  closes every connection; ``SIGTERM`` in the CLI maps to exactly this.
* **Liveness vs readiness.**  The ``health`` op answers inline (never
  behind the backend executor) — a busy or draining server is still
  *live*; ``ready`` flips false the moment drain starts, which is what
  a load balancer keys on.  The Prometheus scrape endpoint
  (:func:`~repro.telemetry.exporters.serve_metrics`) is a separate HTTP
  listener and never competes with request traffic.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Optional, Set, Tuple

from ..core.errors import (
    AdmissionRejectedError,
    DeadlineExceededError,
    InvalidParameterError,
    NotPrimaryError,
    ProtocolError,
    QueryError,
    ReadOnlyError,
    ReproError,
    ServingError,
    StalenessExceededError,
)
from ..telemetry import NOOP_SPAN, TELEMETRY
from ..telemetry import instruments as tm
from .protocol import (
    DEFAULT_MAX_FRAME,
    encode_frame,
    parse_trace_envelope,
    read_frame_async,
)

__all__ = ["ServingConfig", "PDRTCPServer", "ServerThread"]


@dataclass
class ServingConfig:
    """Front-door knobs (timeouts in seconds)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is in .address
    read_timeout: float = 30.0
    write_timeout: float = 10.0
    max_frame: int = DEFAULT_MAX_FRAME
    max_inflight: int = 16  # pipelined requests per connection
    read_workers: int = 4  # reader threads for read-only ops
    drain_deadline: float = 5.0
    drain_retry_after: float = 1.0  # hint on `draining` error frames
    advertise: Optional[Tuple[str, int]] = None  # address told to clients
    primary_address: Optional[Tuple[str, int]] = None  # redirect target


# Ops that never mutate backend state; they run on the reader pool under
# the shared side of the state lock.  (``status`` includes the resource
# probe, which is an idempotent heal-attempt and safe under concurrent
# readers; every actual mutation takes the exclusive side.)
READ_OPS = frozenset({"fr_query", "pa_query", "query", "status"})


class _ReadWriteLock:
    """A writer-preference readers/writer lock.

    Readers share; a writer waits for readers to drain and runs alone.
    Arriving readers queue behind a *waiting* writer so a steady query
    stream cannot starve ingest.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()


class _Connection:
    """Per-connection bookkeeping: write lock and inflight counter."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.inflight = 0


class PDRTCPServer:
    """One TCP listener over one backend (server or replication group)."""

    def __init__(self, backend, config: Optional[ServingConfig] = None) -> None:
        self.backend = backend
        self.config = config or ServingConfig()
        self.draining = False
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[_Connection] = set()
        self._tasks: Set[asyncio.Task] = set()
        self._drained = asyncio.Event()
        self._drain_started = False
        # the single writer thread: every mutation is serialized here
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="pdr-backend"
        )
        # read-only queries fan out here, sharing the state lock's read side
        self._read_executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, self.config.read_workers),
            thread_name_prefix="pdr-read",
        )
        self._state_lock = _ReadWriteLock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def wait_drained(self) -> None:
        await self._drained.wait()

    async def drain(self) -> float:
        """Stop accepting, finish in-flight work, close; returns seconds.

        Idempotent: concurrent callers all wait for the one drain.
        """
        if self._drain_started:
            await self._drained.wait()
            return 0.0
        self._drain_started = True
        t0 = time.perf_counter()
        self.draining = True  # readiness flips false; new frames refused
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [t for t in self._tasks if not t.done()]
        if pending:
            done, still_pending = await asyncio.wait(
                pending, timeout=self.config.drain_deadline
            )
            for task in still_pending:  # past the deadline: cut them off
                task.cancel()
        for conn in list(self._connections):
            self._close_connection(conn, "drained")
        duration = time.perf_counter() - t0
        tm.DRAIN_SECONDS.observe(duration)
        self._drained.set()
        return duration

    def shutdown_executor(self) -> None:
        self._executor.shutdown(wait=True)
        self._read_executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # backend introspection (duck-typed over server vs group)
    # ------------------------------------------------------------------
    @property
    def _is_group(self) -> bool:
        return hasattr(self.backend, "primary")

    def _epoch(self) -> int:
        return int(self.backend.epoch)

    def _lsn(self) -> int:
        if self._is_group:
            return int(self.backend.acked_lsn)
        return int(self.backend.wal_lsn or 0)

    def _role(self) -> str:
        if self._is_group:
            return "primary" if self.backend.primary_alive else "unavailable"
        return self.backend.role

    def _read_only(self) -> bool:
        server = self.backend.primary if self._is_group else self.backend
        return bool(getattr(server, "read_only", False))

    def _generation(self) -> int:
        server = self.backend.primary if self._is_group else self.backend
        return int(getattr(server, "recovery_generation", 0) or 0)

    def _health_payload(self) -> dict:
        return {
            "ok": True,
            "live": True,
            "ready": not self.draining and self._role() == "primary",
            "draining": self.draining,
            "read_only": self._read_only(),
            "role": self._role(),
            "epoch": self._epoch(),
            # which incarnation of the state directory answered: bumps on
            # every recovery, so clients and the supervisor can observe a
            # process restart even though the epoch never moved
            "generation": self._generation(),
            "pid": os.getpid(),
            "lsn": self._lsn(),
            "tnow": int(self.backend.tnow),
            "advertise": list(self.config.advertise or self.address or ()),
        }

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # response frames are small; without this Nagle + delayed ACK
            # stalls every request/response pair tens of milliseconds
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _Connection(writer)
        self._connections.add(conn)
        tm.CONNECTIONS_ACTIVE.inc()
        outcome = "closed"
        try:
            while True:
                try:
                    framed = await asyncio.wait_for(
                        read_frame_async(reader, self.config.max_frame),
                        timeout=self.config.read_timeout,
                    )
                except asyncio.TimeoutError:
                    outcome = "timeout"
                    break
                except ProtocolError as exc:
                    await self._send(conn, self._error_frame(exc.code, str(exc)))
                    if exc.code == "frame_too_large":
                        continue  # the oversized body was drained; stream ok
                    outcome = "reset"
                    break  # truncated/garbage: framing is lost, hang up
                except (ConnectionResetError, BrokenPipeError, OSError):
                    outcome = "reset"
                    break
                if framed is None:
                    break  # clean EOF
                message, _length = framed
                if conn.inflight >= self.config.max_inflight:
                    await self._send(conn, self._error_frame(
                        "too_many_inflight",
                        f"connection has {conn.inflight} requests in flight "
                        f"(cap {self.config.max_inflight})",
                        retry_after=0.05,
                        request=message,
                    ))
                    continue
                conn.inflight += 1
                task = asyncio.ensure_future(self._serve_request(conn, message))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        except asyncio.CancelledError:
            outcome = "drained"
        finally:
            self._close_connection(conn, outcome)

    def _close_connection(self, conn: _Connection, outcome: str) -> None:
        if conn not in self._connections:
            return
        self._connections.discard(conn)
        tm.CONNECTIONS_ACTIVE.dec()
        tm.CONNECTIONS_TOTAL.labels(outcome).inc()
        try:
            conn.writer.close()
        except Exception:  # closing is best-effort
            pass

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _serve_request(self, conn: _Connection, message: dict) -> None:
        op = str(message.get("op", ""))
        t0 = time.perf_counter()
        tm.SERVING_INFLIGHT.inc()
        try:
            response = await self._response_for(op, message)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # a bug, not a request problem
            response = self._error_frame("internal", f"{type(exc).__name__}: {exc}")
        finally:
            tm.SERVING_INFLIGHT.dec()
            conn.inflight -= 1
        outcome = "ok" if response.get("ok") else "error"
        tm.SERVING_FRAMES.labels(op or "?", outcome).inc()
        tm.SERVING_REQUEST_SECONDS.labels(op or "?").observe(
            time.perf_counter() - t0
        )
        if "id" in message:
            response["id"] = message["id"]
        await self._send(conn, response)

    async def _response_for(self, op: str, message: dict) -> dict:
        if op == "health":
            return self._health_payload()  # liveness never queues
        if op == "drain":
            asyncio.ensure_future(self.drain())
            return {"ok": True, "draining": True,
                    "drain_deadline": self.config.drain_deadline,
                    "epoch": self._epoch()}
        if self.draining:
            return self._error_frame(
                "draining", "server is draining; use another endpoint",
                retry_after=self.config.drain_retry_after,
            )
        loop = asyncio.get_event_loop()
        executor = self._read_executor if op in READ_OPS else self._executor
        try:
            payload = await loop.run_in_executor(
                executor, self._backend_call, op, message
            )
        except ProtocolError as exc:
            return self._error_frame(exc.code, str(exc))
        except AdmissionRejectedError as exc:
            return self._error_frame("shed", str(exc), retry_after=exc.retry_after)
        except NotPrimaryError as exc:
            redirect = self.config.primary_address
            return self._error_frame("not_primary", str(exc), redirect=redirect)
        except ReadOnlyError as exc:
            # before the ReproError catch-all: resource degradation is a
            # structured, retryable condition, not an internal error
            return self._error_frame(
                "read_only", str(exc), retry_after=exc.retry_after
            )
        except StalenessExceededError as exc:
            return self._error_frame("staleness", str(exc), retry_after=0.05)
        except DeadlineExceededError as exc:
            return self._error_frame("deadline", str(exc))
        except InvalidParameterError as exc:
            return self._error_frame("bad_request", str(exc))
        except QueryError as exc:
            tm.slo_record(outcome="error")
            return self._error_frame("query_failed", str(exc))
        except ReproError as exc:
            tm.slo_record(outcome="error")
            return self._error_frame("internal", f"{type(exc).__name__}: {exc}")
        except RuntimeError as exc:
            # the executor rejects work while shutting down
            return self._error_frame(
                "draining", f"backend unavailable: {exc}",
                retry_after=self.config.drain_retry_after,
            )
        payload["ok"] = True
        payload.setdefault("epoch", self._epoch())
        return payload

    def _error_frame(self, code: str, message: str, retry_after=None,
                     redirect=None, request=None) -> dict:
        frame = {"ok": False, "error": code, "message": message,
                 "epoch": self._epoch()}
        if code in ("shed", "draining", "too_many_inflight", "staleness",
                    "read_only"):
            # the retry invariant: these codes ALWAYS carry retry_after
            frame["retry_after"] = float(retry_after or 0.0)
        elif retry_after is not None:
            frame["retry_after"] = float(retry_after)
        if redirect is not None:
            frame["redirect"] = list(redirect)
        if request is not None and "id" in request:
            frame["id"] = request["id"]
        return frame

    async def _send(self, conn: _Connection, message: dict) -> None:
        try:
            data = encode_frame(message, max_frame=self.config.max_frame)
        except ProtocolError:
            data = encode_frame(self._error_frame(
                "internal", "response exceeded the frame limit"))
        async with conn.write_lock:
            try:
                conn.writer.write(data)
                await asyncio.wait_for(
                    conn.writer.drain(), timeout=self.config.write_timeout
                )
            except (asyncio.TimeoutError, ConnectionResetError,
                    BrokenPipeError, OSError):
                self._close_connection(conn, "reset")

    # ------------------------------------------------------------------
    # backend operations (executor threads only)
    # ------------------------------------------------------------------
    def _backend_call(self, op: str, message: dict) -> dict:
        envelope = parse_trace_envelope(message)
        if op in READ_OPS:
            self._state_lock.acquire_read()
        else:
            self._state_lock.acquire_write()
        try:
            if envelope is None:
                return self._dispatch_backend(op, message)
            # This callable runs wholly on one executor worker thread
            # (writer or reader pool), so adopting into the thread-local
            # tracer here is what lets the backend's spans — group_query,
            # query, the rungs, the refinement stages — survive the hop
            # off the event loop and attach to the caller's trace.
            trace_id, parent_id, sampled = envelope
            tracer = TELEMETRY.tracer
            with tracer.adopt(trace_id, parent_id):
                with tracer.trace(
                    "dispatch", op=op, pid=os.getpid(), role=self._role()
                ) as dispatch_span:
                    payload = self._dispatch_backend(op, message)
            if sampled and dispatch_span is not NOOP_SPAN:
                payload["trace"] = dispatch_span.to_dict()
            return payload
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, ReproError):
                raise
            raise ProtocolError(
                f"malformed {op!r} request: {type(exc).__name__}: {exc}",
                code="bad_request",
            ) from exc
        finally:
            if op in READ_OPS:
                self._state_lock.release_read()
            else:
                self._state_lock.release_write()

    def _dispatch_backend(self, op: str, message: dict) -> dict:
        backend = self.backend
        if op == "report":
            motion = backend.report(
                int(message["oid"]), float(message["x"]), float(message["y"]),
                float(message["vx"]), float(message["vy"]),
            )
            return {"accepted": motion is not None, "lsn": self._lsn(),
                    "tnow": int(backend.tnow)}
        if op == "report_batch":
            reports = [
                (int(r[0]), float(r[1]), float(r[2]), float(r[3]), float(r[4]))
                for r in message["reports"]
            ]
            results = backend.report_batch(reports)
            accepted = sum(1 for r in results if r is not None)
            return {"accepted": accepted, "rejected": len(results) - accepted,
                    "lsn": self._lsn(), "tnow": int(backend.tnow)}
        if op == "retire":
            return {"retired": bool(backend.retire(int(message["oid"]))),
                    "lsn": self._lsn()}
        if op == "advance":
            to = int(message.get("to", backend.tnow + 1))
            backend.advance_to(to)
            return {"tnow": int(backend.tnow), "lsn": self._lsn()}
        if op in ("fr_query", "pa_query", "query"):
            method = str(message.get("method") or op.split("_", 1)[0])
            qt = (int(message["qt"]) if "qt" in message
                  else int(backend.tnow) + int(message.get("qt_offset", 0)))
            result = backend.query(
                method, qt=qt,
                l=(None if message.get("l") is None else float(message["l"])),
                rho=(None if message.get("rho") is None
                     else float(message["rho"])),
                varrho=(None if message.get("varrho") is None
                        else float(message["varrho"])),
                deadline=(None if message.get("deadline") is None
                          else float(message["deadline"])),
            )
            regions = [[r.x1, r.y1, r.x2, r.y2] for r in result.regions]
            max_regions = message.get("max_regions")
            if max_regions is not None:  # keep answer frames bounded
                regions = regions[: int(max_regions)]
            return {
                "method": result.stats.method,
                "requested_method": getattr(result, "requested_method", method),
                "degraded": bool(result.degraded),
                "served_by": getattr(result, "served_by", None),
                "qt": qt,
                "n_regions": len(result.regions),
                "regions": regions,
                "area": result.area(),
                "cpu_seconds": result.stats.cpu_seconds,
            }
        if op == "status":
            # operator polling doubles as the resource probe: a backend in
            # read-only degraded mode tries to heal whenever it is looked
            # at (no-op — and cheap — while writable)
            if hasattr(backend, "probe_resources"):
                backend.probe_resources()
            if self._is_group:
                return {"status": self.backend.status()}
            return {"status": {"role": backend.role, "epoch": self._epoch(),
                               "lsn": self._lsn(), "tnow": int(backend.tnow),
                               "read_only": self._read_only()}}
        raise ProtocolError(f"unknown op {op!r}", code="bad_request")


class ServerThread:
    """Hosts a :class:`PDRTCPServer` on its own event loop in a thread.

    The CLI, the load harness and the chaos scheduler all need a live
    server *next to* blocking code; this wrapper owns the loop and
    exposes three thread-safe entry points: :attr:`address` (after
    :meth:`start`), :meth:`call` (run a function on the backend executor
    — the single thread every backend touch is serialized on), and
    :meth:`drain`/:meth:`stop`.
    """

    def __init__(self, backend, config: Optional[ServingConfig] = None) -> None:
        self.server = PDRTCPServer(backend, config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="pdr-serving", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise ServingError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        if not self._started.is_set():
            raise ServingError("server did not start within 10s")
        return self

    @property
    def address(self) -> Tuple[str, int]:
        assert self.server.address is not None
        return self.server.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            await self.server.wait_drained()

        try:
            loop.run_until_complete(main())
        finally:
            try:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                loop.close()

    def call(self, fn, *args, **kwargs):
        """Run ``fn`` on the writer thread; blocks for the result.

        Control calls may mutate backend state, so they take the
        exclusive side of the state lock — the same discipline as any
        write op — and therefore serialize against in-flight reads.
        """
        def locked():
            self.server._state_lock.acquire_write()
            try:
                return fn(*args, **kwargs)
            finally:
                self.server._state_lock.release_write()

        return self.server._executor.submit(locked).result()

    def drain(self, timeout: Optional[float] = None) -> None:
        if self._loop is None or not self._loop.is_running():
            return
        future = asyncio.run_coroutine_threadsafe(self.server.drain(), self._loop)
        future.result(timeout=timeout or self.server.config.drain_deadline + 10.0)

    def stop(self) -> None:
        """Drain, stop the loop thread and release the backend executor."""
        try:
            self.drain()
        finally:
            if self._thread is not None:
                self._thread.join(timeout=10.0)
            self.server.shutdown_executor()
