"""A supervising parent for ``repro serve`` child processes.

The durability layer promises that a SIGKILLed server loses nothing it
acknowledged — but somebody has to notice the corpse and start the next
incarnation.  :class:`Supervisor` is that somebody: it spawns ``repro
serve`` as a **real child OS process**, probes its TCP health endpoint
(liveness and readiness are distinct, exactly as the server reports
them), restarts crashed children with capped jittered backoff, and
refuses to flap forever — N rapid deaths inside a sliding window is a
*crash loop* and the supervisor gives up with its own exit code
(:data:`EXIT_CRASH_LOOP` = 12) so an operator, not a retry loop, owns
the problem.

Policy decisions worth stating:

* **Port pinning.**  The first child may bind an ephemeral port (``serve
  --port 0`` prints ``port=N``); the supervisor parses that line and
  pins every restart to the same port, so clients ride out a restart by
  reconnecting to the address they already know.
* **Liveness ≠ readiness.**  A child that accepts TCP and answers
  ``health`` frames is *live* even while ``ready`` is false (still
  recovering, draining, not primary).  Only repeated liveness failures
  — connect refused / probe timeout while the process still runs — get
  a child killed as hung; unreadiness alone never does.
* **Retryable vs terminal child exits.**  Exit 0 means the child drained
  cleanly (someone asked it to stop) and the supervisor stops too.
  Invalid parameters (2), a refused corrupt state dir (8) and a held
  state-dir lock (11) would recur identically on every respawn, so the
  supervisor passes them through instead of burning restarts.  Anything
  else — SIGKILL's 137 above all — is a crash and earns a restart.
* **SIGTERM forwards as drain.**  Stopping the supervisor SIGTERMs the
  child, which drains gracefully; only a child that overstays the
  graceful deadline is SIGKILLed.
* **One-shot crashpoint arming.**  ``arm_crashpoint`` sets the
  ``REPRO_CRASHPOINT*`` environment for the *first* child only and the
  inherited environment is always scrubbed of those variables — a
  supervisor restarting an armed child into the same armed environment
  would manufacture its own crash loop.

Every state transition is emitted as one machine-readable stdout line,
``supervise: event=<name> k=v ...`` (same convention as ``serve``'s
``port=N``), so the kill-matrix harness and shell scripts parse the
supervisor the way they parse the server.  The same transitions also
land as ``supervise.<event>`` records in the structured ops journal
(``<state-dir>/journal/`` when the child runs with ``--state-dir``),
stamped with the epoch and recovery generation of the last ready child —
``repro journal --event supervise.exit`` shows every crash next to the
failovers and read-only flips it caused.
"""

from __future__ import annotations

import dataclasses
import os
import random
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from typing import IO, List, Optional, Sequence

from ..reliability.crashpoints import ENV_AFTER, ENV_SITE, ENV_TORN
from ..telemetry import Journal
from ..telemetry import instruments as tm
from .protocol import read_frame_sync, write_frame_sync

__all__ = [
    "EXIT_CRASH_LOOP",
    "NON_RETRYABLE_EXITS",
    "SupervisorConfig",
    "Supervisor",
]

# The supervisor's own verdict when children die faster than restarting
# them can possibly help (see cli.py's exit-code table).
EXIT_CRASH_LOOP = 12

# Child exit codes a respawn cannot fix: clean drain (0), invalid
# parameters (2), corrupt state dir refused at boot (8), state-dir lock
# held by another process (11).  Everything else is treated as a crash.
NON_RETRYABLE_EXITS = (0, 2, 8, 11)

_PORT_RE = re.compile(r"^port=(\d+)$")


def _state_dir_from_args(serve_args: Sequence[str]) -> Optional[str]:
    """The ``--state-dir`` value forwarded to the child, if any."""
    args = list(serve_args)
    for index, arg in enumerate(args):
        if arg == "--state-dir" and index + 1 < len(args):
            return args[index + 1]
        if arg.startswith("--state-dir="):
            return arg.split("=", 1)[1]
    return None


@dataclasses.dataclass
class SupervisorConfig:
    """Knobs for one supervised ``repro serve`` lineage."""

    serve_args: Sequence[str] = ()  # forwarded to `repro serve` verbatim
    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the first child pick; then pinned
    probe_interval: float = 0.2  # seconds between health probes
    probe_timeout: float = 2.0  # per-probe socket budget
    liveness_failures: int = 3  # consecutive failed probes = hung child
    startup_deadline: float = 30.0  # port line + first ready, per child
    backoff_initial: float = 0.2
    backoff_max: float = 5.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25  # +- fraction of the delay
    crash_loop_threshold: int = 5  # this many crashes ...
    crash_loop_window: float = 30.0  # ... within this window = give up
    graceful_deadline: float = 10.0  # drain budget on stop before SIGKILL
    max_restarts: Optional[int] = None  # None = unbounded
    seed: int = 0  # jitter determinism for tests
    arm_crashpoint: Optional[str] = None  # first child only
    arm_after: int = 0
    arm_torn: Optional[float] = None
    python: Optional[str] = None  # interpreter override (tests)


class _Child:
    """One incarnation: the process plus its stdout-scanning thread."""

    def __init__(self, process: subprocess.Popen, echo: Optional[IO]) -> None:
        self.process = process
        self.port: Optional[int] = None
        self._port_event = threading.Event()
        self._echo = echo
        self._reader = threading.Thread(target=self._scan_stdout, daemon=True)
        self._reader.start()

    def _scan_stdout(self) -> None:
        stream = self.process.stdout
        if stream is None:  # pragma: no cover - always piped
            return
        for line in stream:
            match = _PORT_RE.match(line.strip())
            if match:
                self.port = int(match.group(1))
                self._port_event.set()
            elif self._echo is not None:
                # non-protocol child chatter (metrics-port= etc.) is
                # passed through so nothing the child says is lost
                try:
                    self._echo.write(f"child: {line}")
                    self._echo.flush()
                except (OSError, ValueError):
                    pass
        self._port_event.set()  # EOF: wake any waiter; port may be None

    def wait_port(self, timeout: float) -> Optional[int]:
        self._port_event.wait(timeout)
        return self.port


class Supervisor:
    """Spawn, probe, restart.  ``run()`` blocks; ``start()`` threads it."""

    def __init__(self, config: SupervisorConfig, out: Optional[IO] = None) -> None:
        self.config = config
        self.out = out if out is not None else sys.stdout
        self.port: Optional[int] = config.port or None
        self.restarts = 0  # crashes survived so far (not total spawns)
        self.exit_code: Optional[int] = None
        self._child: Optional[_Child] = None
        self._stop = threading.Event()
        self._ready = threading.Event()
        self._rng = random.Random(config.seed)
        self._thread: Optional[threading.Thread] = None
        # Every `supervise:` stdout line also lands in the ops journal.
        # The supervisor owns its *own* Journal (not the process global):
        # tests run several supervisors in one process, and the serve
        # child binds the shared journal directory from its own process
        # anyway — per-pid segment files keep the two apart.
        self.journal = Journal()
        state_dir = _state_dir_from_args(config.serve_args)
        if state_dir:
            self.journal.bind(
                os.path.join(state_dir, "journal"), role="supervisor"
            )

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def pid(self) -> Optional[int]:
        child = self._child
        return child.process.pid if child is not None else None

    def start(self) -> "Supervisor":
        """Run the supervision loop in a background thread (for tests
        and the kill-matrix harness; the CLI calls :meth:`run` inline)."""
        self._thread = threading.Thread(target=self.run, daemon=True)
        self._thread.start()
        return self

    def wait_ready(self, timeout: float) -> bool:
        """Block until the current child answers ``ready: true``."""
        return self._ready.wait(timeout)

    def request_stop(self) -> None:
        """Ask for a graceful shutdown: SIGTERM the child, drain, exit."""
        self._stop.set()

    def join(self, timeout: Optional[float] = None) -> Optional[int]:
        if self._thread is not None:
            self._thread.join(timeout)
        return self.exit_code

    # ------------------------------------------------------------------
    # supervision loop
    # ------------------------------------------------------------------
    def run(self) -> int:
        crashes: deque = deque()
        backoff = self.config.backoff_initial
        spawned = 0
        while True:
            child = self._spawn(first=spawned == 0)
            spawned += 1
            became_ready = self._await_startup(child)
            if became_ready:
                backoff = self.config.backoff_initial  # healthy start resets
            code = self._monitor(child)
            self._ready.clear()
            self._child = None
            if self._stop.is_set():
                self._emit("stopped", code=code)
                self.exit_code = 0
                return 0
            if code in NON_RETRYABLE_EXITS:
                self._emit("giveup", reason="non-retryable", code=code)
                self.exit_code = code
                return code
            tm.SUPERVISOR_RESTARTS.inc()
            now = time.monotonic()
            crashes.append(now)
            while crashes and now - crashes[0] > self.config.crash_loop_window:
                crashes.popleft()
            if len(crashes) >= self.config.crash_loop_threshold:
                self._emit(
                    "giveup", reason="crash-loop", crashes=len(crashes),
                    window=self.config.crash_loop_window, code=code,
                )
                tm.SUPERVISOR_CRASH_LOOPS.inc()
                self.exit_code = EXIT_CRASH_LOOP
                return EXIT_CRASH_LOOP
            if (
                self.config.max_restarts is not None
                and self.restarts >= self.config.max_restarts
            ):
                self._emit("giveup", reason="max-restarts", code=code)
                self.exit_code = code
                return code
            self.restarts += 1
            delay = backoff * (
                1.0 + self.config.backoff_jitter * self._rng.uniform(-1.0, 1.0)
            )
            self._emit("backoff", delay=round(delay, 3), code=code,
                       restarts=self.restarts)
            if self._stop.wait(delay):
                self._emit("stopped", code=code)
                self.exit_code = 0
                return 0
            backoff = min(
                backoff * self.config.backoff_factor, self.config.backoff_max
            )

    # ------------------------------------------------------------------
    # child lifecycle
    # ------------------------------------------------------------------
    def _serve_command(self) -> List[str]:
        python = self.config.python or sys.executable
        cmd = [python, "-m", "repro", "serve",
               "--host", self.config.host,
               "--port", str(self.port or 0)]
        cmd.extend(self.config.serve_args)
        return cmd

    def _child_env(self, first: bool) -> dict:
        env = {
            k: v for k, v in os.environ.items()
            if k not in (ENV_SITE, ENV_AFTER, ENV_TORN)
        }
        # PYTHONPATH must reach this package in the child too
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        parts = [src_root] + [
            p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
        ]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        if first and self.config.arm_crashpoint:
            env[ENV_SITE] = self.config.arm_crashpoint
            env[ENV_AFTER] = str(self.config.arm_after)
            if self.config.arm_torn is not None:
                env[ENV_TORN] = str(self.config.arm_torn)
        return env

    def _spawn(self, first: bool) -> _Child:
        process = subprocess.Popen(
            self._serve_command(),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=self._child_env(first),
            text=True,
            bufsize=1,
        )
        child = _Child(process, echo=None)
        self._child = child
        armed = self.config.arm_crashpoint if first else None
        self._emit("start", pid=process.pid, restarts=self.restarts,
                   **({"armed": armed} if armed else {}))
        return child

    def _await_startup(self, child: _Child) -> bool:
        """Wait for the port line, then the first ready probe.  Returns
        True on readiness; False if the child died or overstayed."""
        deadline = time.monotonic() + self.config.startup_deadline
        port = child.wait_port(self.config.startup_deadline)
        if port is None:
            return False  # died before binding; _monitor reaps it
        if self.port is None:
            self._emit("pinned", port=port)
        self.port = port
        while time.monotonic() < deadline and not self._stop.is_set():
            if child.process.poll() is not None:
                return False
            health = self._probe()
            if health is not None and health.get("ready"):
                self._ready.set()
                self.journal.update_context(
                    epoch=health.get("epoch"),
                    generation=health.get("generation"),
                )
                self._emit(
                    "ready", pid=child.process.pid, port=port,
                    epoch=health.get("epoch"),
                    generation=health.get("generation"),
                    lsn=health.get("lsn"),
                )
                return True
            time.sleep(self.config.probe_interval)
        return False

    def _monitor(self, child: _Child) -> int:
        """Probe until the child exits (or stop is requested).  Returns
        the child's exit code (normalized: signal death -> 128+sig)."""
        misses = 0
        while True:
            if self._stop.is_set():
                return self._shutdown_child(child)
            code = child.process.poll()
            if code is not None:
                self._emit("exit", pid=child.process.pid,
                           code=self._normalize(code))
                return self._normalize(code)
            health = self._probe()
            if health is None:
                misses += 1
                if misses >= self.config.liveness_failures and self.port:
                    # live process, dead socket: hung beyond doubt
                    self._emit("hung", pid=child.process.pid, misses=misses)
                    try:
                        child.process.kill()
                    except OSError:  # pragma: no cover - already gone
                        pass
                    child.process.wait()
                    return self._normalize(child.process.returncode)
            else:
                misses = 0
                if health.get("ready"):
                    self._ready.set()
                else:
                    self._ready.clear()
            time.sleep(self.config.probe_interval)

    def _shutdown_child(self, child: _Child) -> int:
        """SIGTERM -> graceful drain -> SIGKILL past the deadline."""
        if child.process.poll() is None:
            self._emit("drain", pid=child.process.pid)
            try:
                child.process.send_signal(signal.SIGTERM)
            except OSError:  # pragma: no cover - lost the race to exit
                pass
            try:
                child.process.wait(self.config.graceful_deadline)
            except subprocess.TimeoutExpired:
                self._emit("drain-timeout", pid=child.process.pid)
                child.process.kill()
                child.process.wait()
        return self._normalize(child.process.returncode)

    @staticmethod
    def _normalize(code: Optional[int]) -> int:
        if code is None:  # pragma: no cover - only after wait()
            return -1
        return 128 - code if code < 0 else code  # -9 -> 137

    # ------------------------------------------------------------------
    # health probing
    # ------------------------------------------------------------------
    def _probe(self) -> Optional[dict]:
        """One liveness probe: connect, ask ``health``, parse the frame.
        Returns the payload, or None when the child cannot answer."""
        if not self.port:
            return None
        try:
            with socket.create_connection(
                (self.config.host, self.port), timeout=self.config.probe_timeout
            ) as sock:
                sock.settimeout(self.config.probe_timeout)
                write_frame_sync(sock, {"op": "health"})
                frame = read_frame_sync(sock)
        except Exception:  # refused, timeout, reset, bad frame: not live
            return None
        if frame is None:
            return None
        return frame if frame.get("ok") else None

    # ------------------------------------------------------------------
    # status lines
    # ------------------------------------------------------------------
    def _emit(self, event: str, **fields) -> None:
        """One transition, two sinks: the machine-readable stdout line
        (the kill-matrix harness and shell scripts parse these) and a
        ``supervise.<event>`` record in the ops journal."""
        self.journal.emit(
            f"supervise.{event}",
            # the `pid` field of these lines is the *child's* pid; the
            # record envelope's `pid` stays the supervisor's own
            **{("child_pid" if k == "pid" else k): v
               for k, v in fields.items() if v is not None},
        )
        parts = [f"supervise: event={event}"]
        parts.extend(
            f"{key}={value}" for key, value in fields.items() if value is not None
        )
        try:
            print(" ".join(parts), file=self.out, flush=True)
        except (OSError, ValueError):  # pragma: no cover - output gone
            pass
