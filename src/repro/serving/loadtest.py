"""Open/closed-loop load generation against a live front door.

The harness drives one of three traffic mixes through
:class:`~repro.serving.client.ResilientClient` workers and reports
p50/p95/p99 latency per operation class against configured SLOs:

* ``report-heavy`` — 90% location reports, 10% queries (ingest-bound);
* ``query-heavy``  — 20% reports, 80% queries (read-bound);
* ``flash-crowd``  — report-heavy, but the offered load multiplies by
  ``flash_factor`` in the middle third of the run (open loop: the
  arrival rate ramps; closed loop: burst workers join) — the overload
  regime where admission sheds and ``retry_after`` honoring earn their
  keep.

**Closed loop** workers issue requests back-to-back: offered load adapts
to service speed, which measures capacity.  **Open loop** workers follow
a precomputed arrival schedule and charge *scheduled-to-done* latency —
queueing delay included — which is what a user behind a flash crowd
actually experiences (the coordinated-omission-free number).

Every worker tracks its acked writes; the run's verdict re-checks the
server's durable position at the end: ``max(acked lsn) <= final WAL
lsn`` is the zero-acked-write-loss criterion, and it must hold even when
``kill_primary_at`` triggers a mid-run failover.
"""

from __future__ import annotations

import dataclasses
import math
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import ClientError, InvalidParameterError, ServingError
from ..telemetry import render_span_tree
from .client import ClientConfig, ResilientClient

__all__ = [
    "LoadTestConfig",
    "LoadTestResult",
    "run_loadtest",
    "build_serving_group",
    "MIXES",
]

# mix name -> (report fraction, query fraction)
MIXES: Dict[str, Tuple[float, float]] = {
    "report-heavy": (0.90, 0.10),
    "query-heavy": (0.20, 0.80),
    "flash-crowd": (0.90, 0.10),
}


@dataclass
class LoadTestConfig:
    """One load-test scenario."""

    mix: str = "report-heavy"
    mode: str = "closed"  # closed | open
    duration: float = 5.0
    rate: float = 100.0  # open loop: offered ops/sec (base, pre-flash)
    concurrency: int = 4  # closed loop: workers (base, pre-flash)
    flash_factor: float = 6.0  # load multiplier in the middle third
    seed: int = 7
    objects: int = 64  # oid space for generated reports
    varrho: float = 2.0
    query_deadline: Optional[float] = 0.5  # degradation ladder budget
    query_methods: Tuple[str, ...] = ("pa", "fr")
    report_slo_p99_ms: float = 250.0  # reports own the writer thread; queries
                                      # run on the reader pool and no longer
                                      # queue ahead of them
    query_slo_p99_ms: float = 600.0   # post-band-fusion distribution (fr ~5ms
                                      # harness-sized); trips on a return to
                                      # the per-cell refinement regime
    max_failure_ratio: float = 0.0  # ops allowed to exhaust retries
    kill_primary_at: Optional[float] = None  # seconds into the run
    trace_sample: int = 0  # sample 1-in-N ops for distributed tracing

    def validate(self) -> None:
        if self.mix not in MIXES:
            raise InvalidParameterError(
                f"unknown mix {self.mix!r}; pick one of {sorted(MIXES)}"
            )
        if self.mode not in ("closed", "open"):
            raise InvalidParameterError(
                f"mode must be 'closed' or 'open', got {self.mode!r}"
            )
        if self.duration <= 0:
            raise InvalidParameterError("duration must be positive")


def _percentile(sorted_ms: List[float], q: float) -> float:
    if not sorted_ms:
        return 0.0
    rank = max(0, min(len(sorted_ms) - 1, math.ceil(q * len(sorted_ms)) - 1))
    return sorted_ms[rank]


@dataclass
class LoadTestResult:
    """Latency distributions, failure counts, and the SLO verdict."""

    config: LoadTestConfig
    elapsed: float = 0.0
    latencies_ms: Dict[str, List[float]] = field(default_factory=dict)
    ops: int = 0
    failed_ops: int = 0  # exhausted retries / hard wire errors
    acked_reports: int = 0
    max_acked_lsn: int = 0
    final_wal_lsn: int = 0
    final_epoch: int = 0
    epoch_changes: int = 0
    sheds_honored: int = 0
    sheds_missing_retry_after: int = 0
    retries: int = 0
    client_stats: Dict[str, int] = field(default_factory=dict)
    traces: List[dict] = field(default_factory=list)  # stitched, sampled

    @property
    def acked_write_loss(self) -> int:
        """Acked LSNs beyond the server's final durable position (must be 0)."""
        return max(0, self.max_acked_lsn - self.final_wal_lsn)

    def percentiles(self, kind: str) -> Dict[str, float]:
        data = sorted(self.latencies_ms.get(kind, []))
        return {
            "count": float(len(data)),
            "p50": _percentile(data, 0.50),
            "p95": _percentile(data, 0.95),
            "p99": _percentile(data, 0.99),
            "max": data[-1] if data else 0.0,
        }

    @property
    def failure_ratio(self) -> float:
        return self.failed_ops / self.ops if self.ops else 0.0

    def slo_verdicts(self) -> Dict[str, bool]:
        report_p99 = self.percentiles("report")["p99"]
        query_p99 = self.percentiles("query")["p99"]
        return {
            "report_p99": (not self.latencies_ms.get("report")
                           or report_p99 <= self.config.report_slo_p99_ms),
            "query_p99": (not self.latencies_ms.get("query")
                          or query_p99 <= self.config.query_slo_p99_ms),
            "failure_ratio": self.failure_ratio <= self.config.max_failure_ratio,
            "zero_acked_write_loss": self.acked_write_loss == 0,
            "retry_after_always_present": self.sheds_missing_retry_after == 0,
        }

    @property
    def ok(self) -> bool:
        return all(self.slo_verdicts().values())

    @property
    def worst_trace(self) -> Optional[dict]:
        """The slowest stitched trace sampled during the run, if any."""
        if not self.traces:
            return None
        return max(self.traces, key=lambda t: t.get("duration_seconds", 0.0))

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "mix": self.config.mix,
            "mode": self.config.mode,
            "elapsed_seconds": round(self.elapsed, 3),
            "ops": self.ops,
            "throughput_ops_per_sec": round(self.ops / self.elapsed, 2)
            if self.elapsed else 0.0,
            "failed_ops": self.failed_ops,
            "failure_ratio": round(self.failure_ratio, 6),
            "acked_reports": self.acked_reports,
            "max_acked_lsn": self.max_acked_lsn,
            "final_wal_lsn": self.final_wal_lsn,
            "acked_write_loss": self.acked_write_loss,
            "final_epoch": self.final_epoch,
            "epoch_changes": self.epoch_changes,
            "retries": self.retries,
            "sheds_honored": self.sheds_honored,
            "sheds_missing_retry_after": self.sheds_missing_retry_after,
            "latency_ms": {
                kind: {k: round(v, 3) for k, v in self.percentiles(kind).items()}
                for kind in sorted(self.latencies_ms)
            },
            "slo": {
                "report_p99_ms": self.config.report_slo_p99_ms,
                "query_p99_ms": self.config.query_slo_p99_ms,
                "verdicts": self.slo_verdicts(),
            },
            "client_stats": dict(self.client_stats),
            "traces_sampled": len(self.traces),
            "worst_trace": self.worst_trace,
        }

    def summary(self) -> str:
        lines = [
            f"loadtest {self.config.mix}/{self.config.mode}: "
            f"{self.ops} ops in {self.elapsed:.2f}s "
            f"({self.ops / self.elapsed:.1f} ops/s), "
            f"{self.failed_ops} failed, {self.retries} retries, "
            f"{self.sheds_honored} sheds honored"
        ]
        for kind in sorted(self.latencies_ms):
            p = self.percentiles(kind)
            slo = (self.config.report_slo_p99_ms if kind == "report"
                   else self.config.query_slo_p99_ms)
            lines.append(
                f"  {kind:7s} n={int(p['count']):6d}  "
                f"p50={p['p50']:8.2f}ms  p95={p['p95']:8.2f}ms  "
                f"p99={p['p99']:8.2f}ms (SLO {slo:.0f}ms) "
                f"{'OK' if p['p99'] <= slo or not p['count'] else 'VIOLATED'}"
            )
        lines.append(
            f"  acked writes: {self.acked_reports} "
            f"(max lsn {self.max_acked_lsn}, final WAL {self.final_wal_lsn}, "
            f"loss {self.acked_write_loss}); epoch {self.final_epoch} "
            f"({self.epoch_changes} change(s) observed)"
        )
        lines.append(f"  verdict: {'PASS' if self.ok else 'FAIL'} "
                     f"{self.slo_verdicts()}")
        if self.traces:
            lines.append(f"  traces sampled: {len(self.traces)}")
        # an SLO miss with sampled traces gets its worst offender printed
        # stitched — the first question ("where did the time go?") is
        # answered without leaving the loadtest output
        worst = self.worst_trace
        if worst is not None and not self.ok:
            lines.append(
                f"  worst sampled trace ({worst.get('trace_id', '?')}):"
            )
            lines.extend("    " + line for line in render_span_tree(worst))
        return "\n".join(lines)


class _Worker:
    """One traffic-generating thread with its own client and rng."""

    def __init__(self, worker_id: int, endpoints, config: LoadTestConfig,
                 client_config: ClientConfig,
                 window: Optional[Tuple[float, float]] = None,
                 arrivals: Optional[List[float]] = None) -> None:
        self.worker_id = worker_id
        self.config = config
        self.client = ResilientClient(endpoints, config=client_config)
        self.rng = random.Random((config.seed << 16) ^ worker_id)
        self.window = window  # closed loop: (start_offset, end_offset)
        self.arrivals = arrivals  # open loop: absolute offsets
        self.latencies: Dict[str, List[float]] = {"report": [], "query": []}
        self.ops = 0
        self.failed = 0
        self.thread = threading.Thread(
            target=self._run_guarded, name=f"loadgen-{worker_id}", daemon=True
        )
        self.error: Optional[BaseException] = None
        self._t0 = 0.0
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def start(self, t0: float) -> None:
        self._t0 = t0
        self.thread.start()

    def stop(self) -> None:
        self._stop.set()

    def join(self) -> None:
        self.thread.join(timeout=self.config.duration + 30.0)

    def _run_guarded(self) -> None:
        try:
            if self.arrivals is not None:
                self._run_open()
            else:
                self._run_closed()
        except BaseException as exc:  # surfaced by the harness
            self.error = exc
        finally:
            self.client.close()

    # ------------------------------------------------------------------
    def _one_op(self) -> Tuple[str, bool]:
        report_frac, _ = MIXES[self.config.mix]
        cfg = self.config
        if self.rng.random() < report_frac:
            kind = "report"
            call = lambda: self.client.report(  # noqa: E731
                self.rng.randrange(cfg.objects),
                self.rng.uniform(2.0, 98.0) * 10.0,
                self.rng.uniform(2.0, 98.0) * 10.0,
                self.rng.uniform(-1.0, 1.0),
                self.rng.uniform(-1.0, 1.0),
            )
        else:
            kind = "query"
            method = cfg.query_methods[
                self.rng.randrange(len(cfg.query_methods))
            ]
            call = lambda: self.client.query(  # noqa: E731
                method, qt_offset=self.rng.randrange(0, 2),
                varrho=cfg.varrho, deadline=cfg.query_deadline,
                max_regions=8,  # percentiles need timing, not geometry
            )
        try:
            call()
            return kind, True
        except (ClientError, ServingError):
            return kind, False

    def _record(self, kind: str, ok: bool, latency_s: float) -> None:
        self.ops += 1
        if ok:
            self.latencies[kind].append(latency_s * 1000.0)
        else:
            self.failed += 1

    def _run_closed(self) -> None:
        start_off, end_off = self.window or (0.0, self.config.duration)
        now = time.perf_counter() - self._t0
        if now < start_off:
            time.sleep(start_off - now)
        while not self._stop.is_set():
            now = time.perf_counter() - self._t0
            if now >= end_off:
                break
            t0 = time.perf_counter()
            kind, ok = self._one_op()
            self._record(kind, ok, time.perf_counter() - t0)

    def _run_open(self) -> None:
        for offset in self.arrivals or []:
            if self._stop.is_set():
                break
            now = time.perf_counter() - self._t0
            if now < offset:
                time.sleep(offset - now)
            # open loop charges from the *scheduled* arrival: queueing
            # delay behind a slow server counts against the latency SLO
            scheduled = self._t0 + offset
            kind, ok = self._one_op()
            self._record(kind, ok, time.perf_counter() - scheduled)


def _open_loop_arrivals(config: LoadTestConfig) -> List[float]:
    """The deterministic arrival schedule (flash-crowd ramp included)."""
    arrivals: List[float] = []
    t = 0.0
    third = config.duration / 3.0
    while t < config.duration:
        rate = config.rate
        if config.mix == "flash-crowd" and third <= t < 2 * third:
            rate *= config.flash_factor
        arrivals.append(t)
        t += 1.0 / rate
    return arrivals


def run_loadtest(
    endpoints: Sequence[Tuple[str, int]],
    config: Optional[LoadTestConfig] = None,
    client_config: Optional[ClientConfig] = None,
    kill_primary: Optional[Callable[[], None]] = None,
) -> LoadTestResult:
    """Drive one scenario against ``endpoints`` and collect the verdict.

    ``kill_primary`` (with ``config.kill_primary_at``) is invoked once,
    mid-run, from a control thread — the hook the CLI and tests use to
    fail the primary over under live load.
    """
    config = config or LoadTestConfig()
    config.validate()
    client_config = client_config or ClientConfig(
        connect_timeout=2.0, request_timeout=10.0, max_attempts=10,
        backoff_base=0.02, backoff_cap=0.5, seed=config.seed,
    )
    if config.trace_sample and not client_config.trace_sample:
        client_config = dataclasses.replace(
            client_config, trace_sample=config.trace_sample
        )

    workers: List[_Worker] = []
    if config.mode == "open":
        arrivals = _open_loop_arrivals(config)
        n = max(1, config.concurrency)
        per_worker: List[List[float]] = [arrivals[i::n] for i in range(n)]
        for i, schedule in enumerate(per_worker):
            workers.append(_Worker(i, endpoints, config, client_config,
                                   arrivals=schedule))
    else:
        third = config.duration / 3.0
        for i in range(max(1, config.concurrency)):
            workers.append(_Worker(i, endpoints, config, client_config,
                                   window=(0.0, config.duration)))
        if config.mix == "flash-crowd":
            burst = max(1, int(config.concurrency * (config.flash_factor - 1)))
            for j in range(burst):
                workers.append(_Worker(
                    1000 + j, endpoints, config, client_config,
                    window=(third, 2 * third),
                ))

    t0 = time.perf_counter()
    for worker in workers:
        worker.start(t0)

    killer_error: List[BaseException] = []
    if config.kill_primary_at is not None and kill_primary is not None:
        def _kill() -> None:
            time.sleep(config.kill_primary_at)
            try:
                kill_primary()
            except BaseException as exc:
                killer_error.append(exc)
        killer = threading.Thread(target=_kill, name="primary-killer",
                                  daemon=True)
        killer.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - t0

    result = LoadTestResult(config=config, elapsed=elapsed)
    merged_stats: Dict[str, int] = {}
    for worker in workers:
        if worker.error is not None:
            raise worker.error
        result.ops += worker.ops
        result.failed_ops += worker.failed
        for kind, values in worker.latencies.items():
            result.latencies_ms.setdefault(kind, []).extend(values)
        client = worker.client
        result.acked_reports += client.acked_reports
        result.max_acked_lsn = max(result.max_acked_lsn, client.max_acked_lsn)
        result.epoch_changes += client.stats.get("epoch_changes", 0)
        result.sheds_honored += client.stats.get("sheds_honored", 0)
        result.sheds_missing_retry_after += client.sheds_missing_retry_after
        result.retries += client.stats.get("retries", 0)
        result.traces.extend(client.traces)
        for key, value in client.stats.items():
            merged_stats[key] = merged_stats.get(key, 0) + value
    result.client_stats = merged_stats
    if killer_error:
        raise killer_error[0]

    # the acked-write-loss verdict needs the server's final position
    with ResilientClient(endpoints, config=client_config) as probe:
        health = probe.health()
        result.final_wal_lsn = int(health.get("lsn", 0))
        result.final_epoch = int(health.get("epoch", 0))
    return result


def build_serving_group(
    state_dir: str,
    objects: int = 200,
    replicas: int = 2,
    seed: int = 7,
    staleness: int = 1_000_000,
    admission_rate: Optional[float] = None,
    admission_burst: Optional[float] = None,
    warmup_ticks: int = 2,
    fsync: bool = False,
    checkpoint_interval: int = 0,
):
    """A durable, warmed :class:`ReplicationGroup` for self-hosted runs.

    Seeds ``objects`` moving objects over the default domain, advances a
    couple of ticks so every maintained structure has state, and mounts
    the admission controller when a rate is given.  The caller owns
    ``state_dir`` and must ``close()`` the group.
    """
    from ..core.config import SystemConfig
    from ..core.geometry import Rect
    from ..core.system import PDRServer
    from ..reliability.admission import AdmissionConfig
    from ..reliability.replication import ReplicationConfig, ReplicationGroup
    from ..reliability.validation import ReliabilityConfig

    rng = random.Random(seed)
    # harness-sized evaluation knobs: the full-paper defaults put a PA
    # query at ~600ms, which — behind the single backend thread — makes
    # the load test measure one slow query, not the serving tier.  These
    # keep pa ~10ms / fr ~50ms so percentiles reflect queueing + wire.
    config = SystemConfig(
        domain=Rect(0.0, 0.0, 1000.0, 1000.0),
        max_update_interval=30,
        prediction_window=30,
        l=100.0,
        histogram_cells=30,
        polynomial_grid=5,
        polynomial_degree=4,
        evaluation_grid=64,
    )
    primary = PDRServer(
        config,
        expected_objects=objects,
        reliability=ReliabilityConfig(
            state_dir=state_dir, fsync=fsync,
            checkpoint_interval=checkpoint_interval,
        ),
    )
    domain = config.domain
    primary.report_batch([
        (
            oid,
            rng.uniform(domain.x1 + 1.0, domain.x2 - 1.0),
            rng.uniform(domain.y1 + 1.0, domain.y2 - 1.0),
            rng.uniform(-1.0, 1.0),
            rng.uniform(-1.0, 1.0),
        )
        for oid in range(objects)
    ])
    for _ in range(warmup_ticks):
        primary.advance_to(primary.tnow + 1)
    admission = None
    if admission_rate is not None:
        admission = AdmissionConfig(
            rate=admission_rate,
            burst=admission_burst or admission_rate * 2.0,
        )
    return ReplicationGroup(
        primary,
        n_replicas=replicas,
        config=ReplicationConfig(staleness_bound=staleness),
        admission=admission,
    )
