"""The wire protocol: length-prefixed JSON frames and stable error codes.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON (one object).  The prefix makes message boundaries
explicit — a reader always knows whether it holds a whole message, so a
connection cut mid-frame is *detectably* truncated instead of silently
reinterpreted.

Requests carry ``op`` plus op-specific fields::

    {"op": "report", "oid": 3, "x": 10.0, "y": 20.0, "vx": 0.5, "vy": 0.0}
    {"op": "report_batch", "reports": [[0, 1.0, 2.0, 0.1, 0.2], ...]}
    {"op": "fr_query", "qt_offset": 1, "varrho": 2.0, "deadline": 0.5}
    {"op": "pa_query", "qt_offset": 0, "rho": 0.004, "l": 10.0}
    {"op": "retire", "oid": 3}
    {"op": "advance", "to": 17}          # "to" optional: default tnow+1
    {"op": "health"}                      # liveness + readiness + topology
    {"op": "drain"}                       # begin graceful drain
    {"op": "status"}                      # replication topology (groups)

Any request may additionally carry a **trace envelope**::

    {"op": "fr_query", ..., "trace": {"trace_id": "00001f4a00000003",
                                      "parent_id": "00000000000b",
                                      "sampled": true}}

``trace_id`` names the distributed trace this request belongs to (the
originating client mints it pid-prefixed — see
:func:`repro.telemetry.tracing.new_trace_id`); ``parent_id`` is the
caller's span, which the server parents its dispatch span under; and
``sampled`` asks the server to return its span tree.  The client keeps
the *same* envelope across retries and redirects, so one logical
operation is one trace no matter how many endpoints it touched.  The
server adopts the envelope into its thread-local tracer before
dispatching; for ``sampled`` requests the success frame carries a
``trace`` field — the server-side span tree (``Span.to_dict`` shape) —
which the client stitches under its own client span.  Malformed
envelopes are ignored, never an error: tracing is advisory.

Responses always carry ``ok``.  Success frames add op-specific payload
plus ``epoch`` (the fencing epoch that served the request — the client's
re-discovery signal).  Error frames look like::

    {"ok": false, "error": "shed", "message": "...", "retry_after": 0.31,
     "epoch": 2}
    {"ok": false, "error": "not_primary", "redirect": ["10.0.0.5", 9731],
     "epoch": 3}

``error`` is one of :data:`ERROR_CODES`; ``retry_after`` (seconds) is
**always present** on ``shed``, ``draining`` and ``read_only`` frames —
that invariant is one of the chaos oracles — and ``redirect`` names the
acting primary's advertised address when known.  ``read_only`` means the
backend entered resource-degraded mode (disk budget exhausted or WAL
poisoned): reads keep flowing, writes should be retried after the hint.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional, Tuple

from ..core.errors import ProtocolError

__all__ = [
    "DEFAULT_MAX_FRAME",
    "LENGTH_PREFIX",
    "ERROR_CODES",
    "encode_frame",
    "decode_frame",
    "read_frame_sync",
    "write_frame_sync",
    "read_frame_async",
    "make_trace_envelope",
    "parse_trace_envelope",
]

LENGTH_PREFIX = struct.Struct(">I")
DEFAULT_MAX_FRAME = 1 << 20  # 1 MiB of JSON is already a pathological frame

# The stable wire error codes (scripts and the client switch on these).
ERROR_CODES = (
    "bad_frame",        # undecodable frame (not JSON / not an object)
    "frame_too_large",  # length prefix exceeds the server's max frame
    "bad_request",      # missing/invalid fields or unknown op
    "too_many_inflight",  # per-connection inflight cap hit; retryable
    "shed",             # admission control shed the request (retry_after)
    "draining",         # server is draining; go elsewhere (retry_after)
    "not_primary",      # writes must go to the acting primary (redirect)
    "read_only",        # resource-degraded: writes refused (retry_after)
    "staleness",        # no backend within the staleness bound
    "deadline",         # the query missed its deadline on every rung
    "query_failed",     # evaluation failed; not retryable as-is
    "internal",         # unexpected server-side failure
)


def make_trace_envelope(
    trace_id: str, parent_id: Optional[str] = None, sampled: bool = True
) -> dict:
    """Build the optional ``trace`` field of a request frame."""
    envelope = {"trace_id": str(trace_id), "sampled": bool(sampled)}
    if parent_id is not None:
        envelope["parent_id"] = str(parent_id)
    return envelope


def parse_trace_envelope(message: dict) -> Optional[Tuple[str, Optional[str], bool]]:
    """Extract ``(trace_id, parent_id, sampled)`` from a request frame.

    Returns ``None`` for absent or malformed envelopes — tracing is
    advisory, so garbage degrades to "untraced", never to an error.
    """
    envelope = message.get("trace")
    if not isinstance(envelope, dict):
        return None
    trace_id = envelope.get("trace_id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    parent_id = envelope.get("parent_id")
    if parent_id is not None and not isinstance(parent_id, str):
        parent_id = None
    return trace_id, parent_id, bool(envelope.get("sampled"))


def encode_frame(message: dict, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize one message to its on-wire bytes (prefix + JSON)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {max_frame}-byte limit",
            code="frame_too_large",
        )
    return LENGTH_PREFIX.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict:
    """Parse a frame body; raises :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


# ----------------------------------------------------------------------
# blocking (client-side) frame I/O
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a boundary."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes read)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame_sync(
    sock: socket.socket, max_frame: int = DEFAULT_MAX_FRAME
) -> Optional[dict]:
    """Read one frame from a blocking socket (``None`` on clean EOF).

    Truncation anywhere — inside the prefix or inside the body — raises
    :class:`ProtocolError`: an interrupted frame is never mistaken for a
    short message.
    """
    prefix = _recv_exact(sock, LENGTH_PREFIX.size)
    if prefix is None:
        return None
    (length,) = LENGTH_PREFIX.unpack(prefix)
    if length > max_frame:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (limit {max_frame})",
            code="frame_too_large",
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between prefix and body")
    return decode_frame(body)


def write_frame_sync(
    sock: socket.socket, message: dict, max_frame: int = DEFAULT_MAX_FRAME
) -> None:
    sock.sendall(encode_frame(message, max_frame=max_frame))


# ----------------------------------------------------------------------
# asyncio (server-side) frame I/O
# ----------------------------------------------------------------------
async def read_frame_async(
    reader, max_frame: int = DEFAULT_MAX_FRAME
) -> Optional[Tuple[dict, int]]:
    """Read one frame from an asyncio stream.

    Returns ``(message, announced_length)`` — the length is surfaced so
    the server can reject an oversized announcement *before* buffering
    it (the bytes are drained and discarded, keeping the stream framed).
    ``None`` means clean EOF.  Raises :class:`ProtocolError` on
    truncation or garbage, like the sync reader.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(LENGTH_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed inside a length prefix") from exc
    (length,) = LENGTH_PREFIX.unpack(prefix)
    if length > max_frame:
        # drain the announced bytes so the connection stays framed, then
        # let the server answer with a structured frame_too_large error
        remaining = length
        while remaining > 0:
            chunk = await reader.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)
        raise ProtocolError(
            f"peer announced a {length}-byte frame (limit {max_frame})",
            code="frame_too_large",
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return decode_frame(body), length
