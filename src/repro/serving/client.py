"""The resilient client: retries, backoff, redirects, circuit breakers.

:class:`ResilientClient` is the polite counterpart of the server's
structured errors.  One call to :meth:`request` hides the whole failure
surface of the wire:

* **Connection failures and timeouts** are retried with capped
  exponential backoff plus seeded jitter (``base * 2^attempt`` capped at
  ``backoff_cap``, then scattered ±``jitter``), against a per-endpoint
  :class:`~repro.reliability.admission.CircuitBreaker` — the same
  closed/open/half-open machine the in-process router uses — so a dead
  endpoint stops eating the retry budget after a few failures.
* **Sheds** (``shed``/``draining``/``too_many_inflight``) are honored:
  the client sleeps the server-announced ``retry_after`` (capped at
  ``retry_after_cap``) before retrying — the token bucket's refill
  estimate, not a blind guess.  Frames of these codes *missing*
  ``retry_after`` are counted in ``sheds_missing_retry_after``; the
  network chaos oracle asserts that count stays zero.
* **Primary re-discovery.**  A ``not_primary`` frame's ``redirect`` is
  followed immediately; without one, every known endpoint is
  health-probed and the one reporting ``role == "primary"`` wins.  An
  ``epoch`` bump in any response is recorded (``epoch_changes``) — the
  group failed over underneath us and acknowledged writes survived it.

Acked writes are tracked: ``max_acked_lsn`` is the highest LSN the
server acknowledged to *this* client, which is exactly the quantity the
"no acked report lost across a connection reset" oracle compares to the
primary's durable WAL position.

With ``ClientConfig.trace_sample = N``, one in every N logical
operations carries a trace envelope (see :mod:`.protocol`) that survives
retries and redirects; the success frame's server-side span tree is
stitched under the client's own span into :attr:`ResilientClient.traces`
and journaled as a ``client_trace`` event — the raw material of
``repro trace``.
"""

from __future__ import annotations

import random
import socket
import time
from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import (
    InvalidParameterError,
    ProtocolError,
    RetriesExhaustedError,
    ServingError,
)
from ..reliability.admission import CircuitBreaker
from ..reliability.faults import Clock, MonotonicClock
from ..telemetry import JOURNAL, new_span_id, new_trace_id
from .protocol import (
    DEFAULT_MAX_FRAME,
    make_trace_envelope,
    read_frame_sync,
    write_frame_sync,
)

__all__ = ["ClientConfig", "ResilientClient", "WireError"]

Endpoint = Tuple[str, int]

# wire error codes the client retries (everything else surfaces);
# read_only means the backend is resource-degraded — the write is retried
# after the hinted delay exactly like a shed
_RETRYABLE = {"shed", "draining", "too_many_inflight", "staleness", "read_only"}


class WireError(ServingError):
    """A structured error frame surfaced to the caller unretried.

    ``code`` is the wire error code; ``frame`` the full error frame.
    """

    def __init__(self, message: str, code: str, frame: Optional[dict] = None):
        super().__init__(message)
        self.code = code
        self.frame = frame or {}


@dataclass
class ClientConfig:
    """Retry policy and socket knobs."""

    connect_timeout: float = 2.0
    request_timeout: float = 10.0
    max_attempts: int = 8
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25  # +- fraction of the computed backoff
    retry_after_cap: float = 5.0  # never sleep longer on a shed hint
    honor_retry_after: bool = True
    max_frame: int = DEFAULT_MAX_FRAME
    seed: Optional[int] = None  # jitter rng seed (None = entropy)
    breaker_threshold: int = 3
    breaker_probation_seconds: float = 1.0
    # end-to-end tracing: sample 1 of every N requests (0 = off).  The
    # envelope is attached once per *logical* operation and rides every
    # retry and redirect unchanged — one op, one trace.
    trace_sample: int = 0
    trace_buffer: int = 32  # stitched traces retained on the client


class ResilientClient:
    """A blocking client over one or more front-door endpoints."""

    def __init__(
        self,
        endpoints: Sequence[Endpoint],
        config: Optional[ClientConfig] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        if not endpoints:
            raise InvalidParameterError("at least one endpoint is required")
        self.config = config or ClientConfig()
        self.clock = clock or MonotonicClock()
        self.endpoints: List[Endpoint] = [tuple(e) for e in endpoints]
        self._target: Endpoint = self.endpoints[0]
        self._sock: Optional[socket.socket] = None
        self._sock_endpoint: Optional[Endpoint] = None
        self._rng = random.Random(self.config.seed)
        self._breakers: Dict[Endpoint, CircuitBreaker] = {}
        self.stats: Counter = Counter()
        self.epoch = 0
        self.generation = 0
        self.max_acked_lsn = 0
        self.acked_reports = 0
        self.sheds_missing_retry_after = 0
        self.retry_after_honored: List[float] = []
        self._trace_counter = 0
        #: stitched client->server span trees of sampled requests,
        #: newest last (bounded by ``config.trace_buffer``)
        self.traces: deque = deque(maxlen=max(1, self.config.trace_buffer))

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def _breaker(self, endpoint: Endpoint) -> CircuitBreaker:
        if endpoint not in self._breakers:
            self._breakers[endpoint] = CircuitBreaker(
                self.clock,
                threshold=self.config.breaker_threshold,
                probation_seconds=self.config.breaker_probation_seconds,
            )
        return self._breakers[endpoint]

    def _connect(self, endpoint: Endpoint) -> socket.socket:
        sock = socket.create_connection(
            endpoint, timeout=self.config.connect_timeout
        )
        sock.settimeout(self.config.request_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _socket_for(self, endpoint: Endpoint) -> socket.socket:
        if self._sock is not None and self._sock_endpoint == endpoint:
            return self._sock
        self._drop_connection()
        self._sock = self._connect(endpoint)
        self._sock_endpoint = endpoint
        self.stats["connects"] += 1
        return self._sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._sock_endpoint = None

    def reconnect(self) -> None:
        """Drop the pinned connection; the next request opens a fresh one.

        The chaos scheduler uses this after arming a proxy fault (faults
        are consumed per-connection) so consumption is deterministic.
        """
        self._drop_connection()

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # retry machinery
    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> float:
        delay = min(
            self.config.backoff_cap, self.config.backoff_base * (2 ** attempt)
        )
        spread = 1.0 + self.config.jitter * self._rng.uniform(-1.0, 1.0)
        return max(0.0, delay * spread)

    def _pick_endpoint(self) -> Endpoint:
        """The current target, or the next endpoint whose breaker allows."""
        candidates = [self._target] + [
            e for e in self.endpoints if e != self._target
        ]
        for endpoint in candidates:
            if self._breaker(endpoint).allow():
                return endpoint
        return self._target  # all broken: probe the target anyway

    def _note_epoch(self, frame: dict) -> None:
        epoch = frame.get("epoch")
        if isinstance(epoch, int) and epoch > self.epoch:
            if self.epoch != 0:
                self.stats["epoch_changes"] += 1
            self.epoch = epoch
        # the recovery generation moves when the *same* address comes back
        # as a freshly recovered process — the restart signal a failover
        # (epoch bump) never sends
        generation = frame.get("generation")
        if isinstance(generation, int) and generation > self.generation:
            if self.generation != 0:
                self.stats["generation_changes"] += 1
            self.generation = generation

    def rediscover(self) -> Optional[Endpoint]:
        """Health-probe every endpoint; adopt the one that is primary."""
        for endpoint in self.endpoints:
            try:
                sock = self._connect(endpoint)
                try:
                    write_frame_sync(sock, {"op": "health"},
                                     max_frame=self.config.max_frame)
                    frame = read_frame_sync(sock, max_frame=self.config.max_frame)
                finally:
                    sock.close()
            except (OSError, ProtocolError):
                continue
            if frame and frame.get("ok") and frame.get("role") == "primary":
                self._note_epoch(frame)
                self._target = endpoint
                self.stats["rediscoveries"] += 1
                return endpoint
        return None

    def _handle_error_frame(self, frame: dict, attempt: int) -> None:
        """Sleep/redirect per the error frame, or raise if unretryable."""
        code = str(frame.get("error", "internal"))
        self._note_epoch(frame)
        self.stats[f"error_{code}"] += 1
        if code == "not_primary":
            redirect = frame.get("redirect")
            self.stats["redirects"] += 1
            if redirect:
                endpoint = (str(redirect[0]), int(redirect[1]))
                if endpoint not in self.endpoints:
                    self.endpoints.append(endpoint)
                self._target = endpoint
            elif self.rediscover() is None:
                self.clock.sleep(self._backoff(attempt))
            return
        if code in _RETRYABLE:
            retry_after = frame.get("retry_after")
            if code in ("shed", "draining", "read_only") and retry_after is None:
                # the protocol invariant the chaos oracle checks
                self.sheds_missing_retry_after += 1
            delay = self._backoff(attempt)
            if retry_after is not None and self.config.honor_retry_after:
                hinted = min(float(retry_after), self.config.retry_after_cap)
                if hinted > delay:
                    delay = hinted
                if code == "shed":
                    self.stats["sheds_honored"] += 1
                    self.retry_after_honored.append(hinted)
            self.clock.sleep(delay)
            return
        raise WireError(
            f"{code}: {frame.get('message', '(no message)')}",
            code=code, frame=frame,
        )

    def _sample_trace(self, message: dict) -> Tuple[dict, Optional[str], Optional[str]]:
        """Attach a trace envelope to 1/N logical operations.

        Returns ``(message, trace_id, client_span_id)`` — the message is
        a copy when an envelope was attached, so the caller's dict is
        never mutated.  The envelope stays on the message across every
        retry and redirect: one logical op, one trace.
        """
        if self.config.trace_sample <= 0:
            return message, None, None
        index = self._trace_counter
        self._trace_counter += 1
        if index % self.config.trace_sample != 0:
            return message, None, None
        trace_id = new_trace_id()
        client_span_id = new_span_id()
        message = dict(message)
        message["trace"] = make_trace_envelope(
            trace_id, parent_id=client_span_id, sampled=True
        )
        return message, trace_id, client_span_id

    def _stitch_trace(
        self,
        trace_id: str,
        client_span_id: str,
        message: dict,
        frame: dict,
        endpoint: Endpoint,
        attempts: int,
        duration_seconds: float,
    ) -> dict:
        """Join the server's span tree under the client's own span."""
        server_tree = frame.get("trace")
        stitched = {
            "name": "client_request",
            "trace_id": trace_id,
            "span_id": client_span_id,
            "parent_id": None,
            "duration_seconds": duration_seconds,
            "attrs": {
                "op": str(message.get("op", "?")),
                "attempts": attempts,
                "endpoint": f"{endpoint[0]}:{endpoint[1]}",
            },
            "stages": {},
            "children": (
                [server_tree] if isinstance(server_tree, dict) and server_tree
                else []
            ),
        }
        self.traces.append(stitched)
        self.stats["traces_sampled"] += 1
        JOURNAL.emit(
            "client_trace",
            trace_id=trace_id,
            op=str(message.get("op", "?")),
            attempts=attempts,
            duration_ms=round(duration_seconds * 1000.0, 3),
            trace=stitched,
        )
        return stitched

    def request(self, message: dict) -> dict:
        """Send one request, riding out every retryable failure.

        Returns the success frame.  Raises :class:`WireError` for
        unretryable structured errors and :class:`RetriesExhaustedError`
        when the attempt budget runs dry.
        """
        message, trace_id, client_span_id = self._sample_trace(message)
        t0 = time.perf_counter()
        last_error: Optional[Exception] = None
        for attempt in range(self.config.max_attempts):
            endpoint = self._pick_endpoint()
            breaker = self._breaker(endpoint)
            try:
                sock = self._socket_for(endpoint)
                write_frame_sync(sock, message, max_frame=self.config.max_frame)
                frame = read_frame_sync(sock, max_frame=self.config.max_frame)
            except (OSError, ProtocolError) as exc:
                breaker.record_failure()
                self._drop_connection()
                last_error = exc
                self.stats["connection_errors"] += 1
                self.stats["retries"] += 1
                self.clock.sleep(self._backoff(attempt))
                continue
            if frame is None:  # server hung up cleanly between frames
                breaker.record_failure()
                self._drop_connection()
                last_error = ProtocolError("connection closed before a response")
                self.stats["retries"] += 1
                self.clock.sleep(self._backoff(attempt))
                continue
            breaker.record_success()
            if frame.get("ok"):
                self._note_epoch(frame)
                if trace_id is not None:
                    self._stitch_trace(
                        trace_id, client_span_id, message, frame, endpoint,
                        attempt + 1, time.perf_counter() - t0,
                    )
                return frame
            last_error = WireError(
                str(frame.get("message", "")), str(frame.get("error", "")),
                frame=frame,
            )
            self.stats["retries"] += 1
            self._handle_error_frame(frame, attempt)  # raises if unretryable
        raise RetriesExhaustedError(
            f"{self.config.max_attempts} attempts exhausted against "
            f"{self._target}: {last_error}",
            last_error=last_error,
        )

    # ------------------------------------------------------------------
    # typed operations
    # ------------------------------------------------------------------
    def report(self, oid: int, x: float, y: float, vx: float, vy: float) -> dict:
        frame = self.request(
            {"op": "report", "oid": oid, "x": x, "y": y, "vx": vx, "vy": vy}
        )
        if frame.get("accepted"):
            self.acked_reports += 1
            self.max_acked_lsn = max(self.max_acked_lsn, int(frame.get("lsn", 0)))
        return frame

    def report_batch(self, reports: Sequence[Tuple]) -> dict:
        frame = self.request(
            {"op": "report_batch", "reports": [list(r) for r in reports]}
        )
        if frame.get("accepted"):
            self.acked_reports += int(frame["accepted"])
            self.max_acked_lsn = max(self.max_acked_lsn, int(frame.get("lsn", 0)))
        return frame

    def retire(self, oid: int) -> dict:
        frame = self.request({"op": "retire", "oid": oid})
        self.max_acked_lsn = max(self.max_acked_lsn, int(frame.get("lsn", 0)))
        return frame

    def advance(self, to: Optional[int] = None) -> dict:
        message = {"op": "advance"}
        if to is not None:
            message["to"] = int(to)
        return self.request(message)

    def query(self, method: str, qt_offset: int = 0, l=None, rho=None,
              varrho=None, deadline=None, max_regions=None) -> dict:
        message = {"op": "query", "method": method, "qt_offset": qt_offset}
        for key, value in (("l", l), ("rho", rho), ("varrho", varrho),
                           ("deadline", deadline), ("max_regions", max_regions)):
            if value is not None:
                message[key] = value
        return self.request(message)

    def fr_query(self, **kwargs) -> dict:
        return self.query("fr", **kwargs)

    def pa_query(self, **kwargs) -> dict:
        return self.query("pa", **kwargs)

    def health(self) -> dict:
        return self.request({"op": "health"})

    def status(self) -> dict:
        return self.request({"op": "status"})

    def drain(self) -> dict:
        return self.request({"op": "drain"})

    def report_stats(self) -> dict:
        """Operator-facing counters plus the acked-write watermark."""
        out = dict(self.stats)
        out["epoch"] = self.epoch
        out["generation"] = self.generation
        out["max_acked_lsn"] = self.max_acked_lsn
        out["acked_reports"] = self.acked_reports
        out["sheds_missing_retry_after"] = self.sheds_missing_retry_after
        return out
