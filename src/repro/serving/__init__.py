"""Network front door: TCP serving, resilient client, load harness.

This package turns the in-process reliability stack (admission control,
deadline ladder, replication with epoch-fenced failover) into a *served*
system:

* :mod:`.protocol` — the length-prefixed JSON wire format, its stable
  error codes, and sync + asyncio frame I/O helpers;
* :mod:`.server` — an asyncio TCP server mounting a
  :class:`~repro.core.system.PDRServer` or
  :class:`~repro.reliability.replication.ReplicationGroup` behind
  per-connection timeouts, frame/inflight limits, structured error
  frames (``retry_after``, ``not_primary`` redirects) and graceful
  drain; :class:`~repro.serving.server.ServerThread` hosts it inside a
  thread for the CLI, tests and the load harness;
* :mod:`.client` — a resilient client: capped exponential backoff with
  jitter, ``retry_after`` honoring, primary re-discovery on epoch
  change, and per-endpoint circuit breakers;
* :mod:`.loadtest` — open/closed-loop load generation with
  report-heavy / query-heavy / flash-crowd mixes, reporting
  p50/p95/p99 against SLOs;
* :mod:`.netchaos` — a socket-level fault-injecting proxy (connection
  resets, slow-loris reads, truncated frames, accept-queue stalls)
  driven by :mod:`repro.reliability.chaos`'s seeded scheduler.
"""

from .client import ClientConfig, ResilientClient
from .loadtest import LoadTestConfig, LoadTestResult, run_loadtest
from .netchaos import ChaosProxy
from .protocol import (
    DEFAULT_MAX_FRAME,
    ERROR_CODES,
    decode_frame,
    encode_frame,
    read_frame_sync,
    write_frame_sync,
)
from .server import PDRTCPServer, ServerThread, ServingConfig

__all__ = [
    "ClientConfig",
    "ResilientClient",
    "LoadTestConfig",
    "LoadTestResult",
    "run_loadtest",
    "ChaosProxy",
    "DEFAULT_MAX_FRAME",
    "ERROR_CODES",
    "encode_frame",
    "decode_frame",
    "read_frame_sync",
    "write_frame_sync",
    "PDRTCPServer",
    "ServerThread",
    "ServingConfig",
]
