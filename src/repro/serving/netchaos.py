"""Socket-level fault injection: a chaos proxy for the TCP front door.

:class:`ChaosProxy` sits between a client and a real
:class:`~repro.serving.server.PDRTCPServer`, forwarding bytes both ways
— until told to misbehave.  Faults are *armed* (by the seeded chaos
scheduler, or a test) and consumed by the next connections/frames that
pass through, so campaigns stay deterministic in *what* breaks even
though socket timing is real:

======================  ================================================
:meth:`reset_next`       hard-RST the client side of the next N
                         connections as soon as the server responds —
                         the ack may already be durable, the client just
                         never hears it (the acked-write-loss oracle's
                         favourite case)
:meth:`truncate_next`    forward only half of the server's next response
                         then close — a frame cut mid-body, which the
                         length-prefixed protocol must detect, never
                         misparse
:meth:`slowloris_next`   dribble the next client request toward the
                         server a few bytes at a time with delays — the
                         server's per-frame read timeout must cut the
                         connection loose
:meth:`stall_accept`     hold freshly accepted connections unserved for
                         a window — the handshake succeeds (kernel
                         backlog) but requests hang; client request
                         timeouts and backoff territory
======================  ================================================

The proxy is threaded (one pump pair per connection) and owns no
protocol knowledge beyond "bytes flow in two directions"; every fault is
expressible as byte-stream surgery, exactly like a misbehaving network.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import List, Optional, Tuple

__all__ = ["ChaosProxy"]


class _FaultBudget:
    """Thread-safe armed-fault counters consumed by pump threads."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.reset = 0
        self.truncate = 0
        self.slowloris = 0
        self.slowloris_delay = 0.1
        self.stall_until = 0.0

    def take(self, name: str) -> bool:
        with self.lock:
            if getattr(self, name) > 0:
                setattr(self, name, getattr(self, name) - 1)
                return True
            return False


class ChaosProxy:
    """A fault-injecting TCP proxy in front of one server address."""

    def __init__(self, target: Tuple[str, int], host: str = "127.0.0.1") -> None:
        self.target = tuple(target)
        self._budget = _FaultBudget()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(64)
        self._listener.settimeout(0.1)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._closing = threading.Event()
        self._threads: List[threading.Thread] = []
        self.stats = {"connections": 0, "resets": 0, "truncations": 0,
                      "slowloris": 0, "stalls": 0}
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # fault arming (called by the scheduler / tests)
    # ------------------------------------------------------------------
    def reset_next(self, n: int = 1) -> None:
        with self._budget.lock:
            self._budget.reset += n

    def truncate_next(self, n: int = 1) -> None:
        with self._budget.lock:
            self._budget.truncate += n

    def slowloris_next(self, n: int = 1, delay: float = 0.1) -> None:
        with self._budget.lock:
            self._budget.slowloris += n
            self._budget.slowloris_delay = delay

    def stall_accept(self, seconds: float) -> None:
        """Stop accepting new connections for ``seconds`` from now."""
        with self._budget.lock:
            self._budget.stall_until = time.monotonic() + seconds
        self.stats["stalls"] += 1

    # ------------------------------------------------------------------
    # proxying
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            # accept-queue stall: the kernel backlog already completed
            # the handshake, so connects "succeed" — the connection just
            # is not served until the window passes (requests hang)
            while not self._closing.is_set():
                with self._budget.lock:
                    remaining = self._budget.stall_until - time.monotonic()
                if remaining <= 0:
                    break
                time.sleep(min(remaining, 0.05))
            self.stats["connections"] += 1
            thread = threading.Thread(
                target=self._serve_connection, args=(client,),
                name="chaos-proxy-conn", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, client: socket.socket) -> None:
        try:
            upstream = socket.create_connection(self.target, timeout=5.0)
        except OSError:
            client.close()
            return
        for sock in (client, upstream):  # do not add Nagle stalls of our own
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        # decide this connection's faults up front (budget semantics:
        # one armed fault afflicts one connection)
        do_reset = self._budget.take("reset")
        do_truncate = self._budget.take("truncate")
        do_slowloris = self._budget.take("slowloris")
        if do_reset:
            self.stats["resets"] += 1
        if do_truncate:
            self.stats["truncations"] += 1
        if do_slowloris:
            self.stats["slowloris"] += 1
        stop = threading.Event()
        c2s = threading.Thread(
            target=self._pump_c2s, args=(client, upstream, do_slowloris, stop),
            daemon=True,
        )
        s2c = threading.Thread(
            target=self._pump_s2c,
            args=(client, upstream, do_reset, do_truncate, stop),
            daemon=True,
        )
        c2s.start()
        s2c.start()
        c2s.join()
        s2c.join()
        for sock in (client, upstream):
            try:
                sock.close()
            except OSError:
                pass

    def _pump_c2s(self, client: socket.socket, upstream: socket.socket,
                  slowloris: bool, stop: threading.Event) -> None:
        """client -> server; slow-loris dribbles the bytes with delays."""
        client.settimeout(0.2)
        while not stop.is_set() and not self._closing.is_set():
            try:
                data = client.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                break
            if not data:
                break
            try:
                if slowloris:
                    delay = self._budget.slowloris_delay
                    for i in range(0, len(data), 2):
                        upstream.sendall(data[i:i + 2])
                        time.sleep(delay)
                        if stop.is_set() or self._closing.is_set():
                            break
                    slowloris = False  # only the first request dribbles
                else:
                    upstream.sendall(data)
            except OSError:
                break
        stop.set()
        try:
            upstream.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def _pump_s2c(self, client: socket.socket, upstream: socket.socket,
                  reset: bool, truncate: bool, stop: threading.Event) -> None:
        """server -> client; reset/truncate strike on the first response."""
        upstream.settimeout(0.2)
        while not stop.is_set() and not self._closing.is_set():
            try:
                data = upstream.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                break
            if not data:
                break
            if reset:
                # the server answered (the write may be durably acked);
                # the client never hears it: RST instead of the response
                self._rst(client)
                break
            if truncate:
                cut = self._truncation_point(data)
                try:
                    if cut:
                        client.sendall(data[:cut])
                except OSError:
                    pass
                try:
                    client.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                break
            try:
                client.sendall(data)
            except OSError:
                break
        stop.set()
        try:
            client.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    @staticmethod
    def _truncation_point(data: bytes) -> int:
        """Cut inside the frame body (after the prefix when possible)."""
        if len(data) >= 4:
            (length,) = struct.unpack(">I", data[:4])
            body = min(length, len(data) - 4)
            return 4 + max(0, body // 2)
        return len(data) // 2

    @staticmethod
    def _rst(sock: socket.socket) -> None:
        """Abortive close: SO_LINGER(1, 0) turns close() into a RST."""
        try:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=2.0)
        for thread in self._threads:
            thread.join(timeout=1.0)
