"""Top-k density peaks — a best-first search over the Chebyshev surface.

Dispatch applications often want "the k busiest spots" rather than every
point above a threshold.  With the PA surface in memory this is a classic
best-first branch-and-bound *maximum* search: maintain a max-heap of boxes
keyed by their density upper bound; repeatedly split the most promising box;
a box at the resolution floor becomes a *peak candidate* valued at its
centre density.  Candidates must be at least ``separation`` apart so the k
results describe k distinct hot spots rather than one peak sampled k times.

The search is exact with respect to the approximated surface at the chosen
resolution: when the best remaining upper bound cannot beat the k-th
candidate, the search stops with a proof of optimality.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..chebyshev.bnb import _GridSearcher
from ..core.errors import InvalidParameterError
from .pa import PAMethod

__all__ = ["DensityPeak", "top_k_peaks"]


@dataclass(frozen=True)
class DensityPeak:
    """One reported hot spot: world position and approximated density."""

    x: float
    y: float
    density: float


def top_k_peaks(
    pa: PAMethod,
    qt: int,
    k: int,
    separation: float = 0.0,
    md: int = 256,
) -> List[DensityPeak]:
    """The ``k`` highest-density locations at time ``qt``.

    Args:
        pa: the maintained polynomial surface.
        qt: query timestamp (inside the maintained window).
        k: number of peaks to report.
        separation: minimum world distance between reported peaks
            (``0`` disables the constraint beyond the resolution floor).
        md: evaluation-grid resolution, as in the PA query (``m_d``).
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if md < pa.spec.g:
        raise InvalidParameterError("md must be at least the polynomial grid g")
    surface = pa.surface_at(qt)
    spec = surface.spec
    searcher = _GridSearcher(surface.coeffs)
    min_edge = 2.0 * spec.g / md

    counter = itertools.count()  # heap tie-breaker
    heap: List[Tuple[float, int, int, int, float, float, float, float]] = []
    ti, tj = np.meshgrid(np.arange(spec.g), np.arange(spec.g), indexing="ij")
    ti = ti.ravel()
    tj = tj.ravel()
    _lo, hi = searcher.bound(
        ti,
        tj,
        np.full(ti.size, -1.0),
        np.ones(ti.size),
        np.full(ti.size, -1.0),
        np.ones(ti.size),
    )
    for idx in range(ti.size):
        heapq.heappush(
            heap,
            (-float(hi[idx]), next(counter), int(ti[idx]), int(tj[idx]),
             -1.0, -1.0, 1.0, 1.0),
        )

    peaks: List[DensityPeak] = []

    def far_enough(x: float, y: float) -> bool:
        return all(
            np.hypot(p.x - x, p.y - y) >= separation for p in peaks
        )

    while heap:
        neg_upper, _tick, i, j, x1, y1, x2, y2 = heapq.heappop(heap)
        upper = -neg_upper
        if len(peaks) >= k and upper <= peaks[-1].density:
            break  # nothing left can beat the current k-th peak
        if (x2 - x1) <= min_edge and (y2 - y1) <= min_edge:
            cx, cy = (x1 + x2) / 2.0, (y1 + y2) / 2.0
            value = float(
                searcher.evaluate_centers(
                    np.array([i]), np.array([j]), np.array([cx]), np.array([cy])
                )[0]
            )
            wx, wy = spec.from_normalized(i, j, cx, cy)
            if far_enough(wx, wy):
                peaks.append(DensityPeak(wx, wy, value))
                peaks.sort(key=lambda p: -p.density)
                if len(peaks) > k:
                    peaks.pop()
            continue
        mx, my = (x1 + x2) / 2.0, (y1 + y2) / 2.0
        children = []
        if (x2 - x1) <= min_edge:
            children = [(x1, y1, x2, my), (x1, my, x2, y2)]
        elif (y2 - y1) <= min_edge:
            children = [(x1, y1, mx, y2), (mx, y1, x2, y2)]
        else:
            children = [
                (x1, y1, mx, my), (mx, y1, x2, my),
                (x1, my, mx, y2), (mx, my, x2, y2),
            ]
        cx1 = np.array([c[0] for c in children])
        cy1 = np.array([c[1] for c in children])
        cx2 = np.array([c[2] for c in children])
        cy2 = np.array([c[3] for c in children])
        tiles = np.full(len(children), i)
        tjls = np.full(len(children), j)
        _clo, chi = searcher.bound(tiles, tjls, cx1, cx2, cy1, cy2)
        for child, child_hi in zip(children, chi):
            # Prune children that cannot beat the current k-th peak.
            if len(peaks) >= k and child_hi <= peaks[-1].density:
                continue
            heapq.heappush(
                heap, (-float(child_hi), next(counter), i, j, *child)
            )
    return peaks
