"""PA — the polynomial-approximation PDR method (Section 6).

For every timestamp in the maintained window ``[t_now, t_now + H]`` the
method keeps a ``g x g`` grid of total-degree-``k`` Chebyshev expansions of
the point-density surface.  Each object insertion (deletion) adds
(subtracts) the closed-form delta coefficients of the object's indicator
square at every covered timestamp — Algorithm 4/5 — vectorised here over
the whole trajectory in one numpy pass.  Queries run branch-and-bound on
the per-tile expansions (Section 6.3) and never touch the objects
themselves, which is why PA's query cost is independent of the dataset size.

Unlike FR, PA fixes the neighborhood edge ``l`` at construction time (the
delta squares are baked into the coefficients); querying with a different
``l`` raises.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from ..chebyshev.delta import delta_coefficients_batch
from ..chebyshev.grid import ChebSurface, GridSpec
from ..core.errors import HorizonError, InvalidParameterError
from ..core.geometry import Rect
from ..core.query import QueryResult, QueryStats, SnapshotPDRQuery
from ..motion.model import Motion
from ..motion.updates import DeleteUpdate, InsertUpdate, ReportPair, UpdateListener
from ..telemetry import TELEMETRY

__all__ = ["PAMethod"]


class PAMethod(UpdateListener):
    """On-line Chebyshev density maintenance plus B&B query evaluation."""

    def __init__(
        self,
        domain: Rect,
        l: float,
        horizon: int,
        g: int = 20,
        k: int = 5,
        md: int = 512,
        tnow: int = 0,
        faults=None,
    ) -> None:
        if l <= 0:
            raise InvalidParameterError(f"l must be positive, got {l}")
        if horizon < 0:
            raise InvalidParameterError(f"horizon must be >= 0, got {horizon}")
        self.faults = faults
        self.spec = GridSpec(domain, g, k)
        self.l = l
        self.horizon = horizon
        self.md = md
        self._tnow = tnow
        self._slots = horizon + 1
        self._coeffs = np.zeros((self._slots, g, g, k + 1, k + 1))
        self._slot_time = np.zeros(self._slots, dtype=np.int64)
        for t in range(tnow, tnow + self._slots):
            self._slot_time[t % self._slots] = t

    # ------------------------------------------------------------------
    # time window (mirrors DensityHistogram's ring buffer)
    # ------------------------------------------------------------------
    @property
    def tnow(self) -> int:
        return self._tnow

    @property
    def window(self) -> Tuple[int, int]:
        return (self._tnow, self._tnow + self.horizon)

    def memory_bytes(self) -> int:
        """The paper's figure: ``H g^2 (k+1)(k+2)/2`` 8-byte coefficients."""
        return self.spec.coefficients_memory_bytes(self.horizon)

    def on_advance(self, tnow: int) -> None:
        if tnow < self._tnow:
            raise InvalidParameterError(f"clock moved backwards to {tnow}")
        steps = tnow - self._tnow
        if steps == 0:
            return
        if steps >= self._slots:
            self._coeffs[:] = 0.0
            ts = np.arange(tnow, tnow + self._slots, dtype=np.int64)
            self._slot_time[ts % self._slots] = ts
        else:
            # Expired slots are all distinct (steps < _slots): reset and
            # relabel them in two vectorised writes, mirroring the density
            # histogram's ring-buffer advance.
            t_old = np.arange(self._tnow, tnow, dtype=np.int64)
            slots = t_old % self._slots
            self._coeffs[slots] = 0.0
            self._slot_time[slots] = t_old + self._slots
        self._tnow = tnow

    # ------------------------------------------------------------------
    # update stream (Algorithms 4 and 5)
    # ------------------------------------------------------------------
    def on_insert(self, update: InsertUpdate) -> None:
        self._apply(update.motion, update.tnow, update.tnow + self.horizon, +1.0)

    def on_delete(self, update: DeleteUpdate) -> None:
        motion = update.motion
        self._apply(motion, motion.t_ref, motion.t_ref + self.horizon, -1.0)

    def on_insert_batch(self, updates: Sequence[InsertUpdate]) -> None:
        self._apply_batch([(u.motion, u.tnow, +1.0) for u in updates])

    def on_delete_batch(self, updates: Sequence[DeleteUpdate]) -> None:
        self._apply_batch(
            [(u.motion, u.motion.t_ref, -1.0) for u in updates]
        )

    def on_report_batch(self, pairs: Sequence[ReportPair]) -> None:
        # Coefficient accumulation is float addition, which is not
        # associative: to stay bit-identical to the sequential path the
        # wave must apply delete_i, insert_i, delete_{i+1}, ... in the
        # exact per-report interleaving — hence this override instead of
        # the default all-deletes-then-all-inserts split.
        jobs = []
        for delete, insert in pairs:
            if delete is not None:
                jobs.append((delete.motion, delete.motion.t_ref, -1.0))
            jobs.append((insert.motion, insert.tnow, +1.0))
        self._apply_batch(jobs)

    def _apply(self, motion: Motion, t_from: int, t_to: int, sign: float) -> None:
        rects = self._update_rects(motion, t_from, t_to)
        if rects is None:
            return
        slots, ci, cj, rx1, rx2, ry1, ry2 = rects
        deltas = delta_coefficients_batch(
            self.spec.k, rx1, rx2, ry1, ry2, height=sign / (self.l * self.l)
        )
        np.add.at(self._coeffs, (slots, ci, cj), deltas)

    # Rectangles per delta/scatter flush.  Large enough that the per-call
    # trig/einsum overhead amortises away, small enough that the
    # intermediate (M, k+1, k+1) arrays stay cache-resident instead of
    # spilling — one unbounded pass over a big wave is *slower* than the
    # scalar path.
    _BATCH_RECTS = 16384

    def _apply_batch(
        self, jobs: Sequence[Tuple[Motion, int, float]]
    ) -> None:
        """Apply ``(motion, t_from, sign)`` updates in whole-wave numpy passes.

        The (timestamp, tile, rectangle) expansion runs over the entire wave
        at once — the batched analogue of :meth:`_update_rects` — and the
        resulting rectangles are stably re-sorted into job order before the
        chunked ``np.add.at`` flushes.  Within one job every rectangle hits
        a distinct ``(slot, tile)`` coefficient cell (distinct timestamps
        map to distinct slots, distinct tiles to distinct cells), so the
        only accumulation order that matters per cell is *across* jobs; the
        stable job sort preserves it exactly, making the result
        bit-identical to calling :meth:`_apply` once per job.
        """
        n = len(jobs)
        if n == 0:
            return
        t_ref = np.array([job[0].t_ref for job in jobs], dtype=float)
        x0 = np.array([job[0].x for job in jobs])
        y0 = np.array([job[0].y for job in jobs])
        vx = np.array([job[0].vx for job in jobs])
        vy = np.array([job[0].vy for job in jobs])
        t_from = np.array([job[1] for job in jobs], dtype=np.int64)
        sign = np.array([job[2] for job in jobs])

        # (n, slots) trajectory grid — elementwise the same ``x + dt*vx``
        # Motion.positions_at computes on the scalar path.
        ts = np.arange(self._tnow, self._tnow + self._slots, dtype=np.int64)
        dt = ts.astype(float)[None, :] - t_ref[:, None]
        xs = x0[:, None] + dt * vx[:, None]
        ys = y0[:, None] + dt * vy[:, None]
        covered = (ts[None, :] >= np.maximum(t_from, self._tnow)[:, None]) & (
            ts[None, :]
            <= np.minimum(t_from + self.horizon, self._tnow + self.horizon)[:, None]
        )
        dom = self.spec.domain
        half = self.l / 2.0
        sx1 = np.maximum(xs - half, dom.x1)
        sx2 = np.minimum(xs + half, dom.x2)
        sy1 = np.maximum(ys - half, dom.y1)
        sy2 = np.minimum(ys + half, dom.y2)
        in_domain = (
            (xs >= dom.x1) & (xs < dom.x2) & (ys >= dom.y1) & (ys < dom.y2)
        )
        nonempty = covered & (sx2 > sx1) & (sy2 > sy1) & in_domain
        if not nonempty.any():
            return
        job_idx, t_idx = np.nonzero(nonempty)
        ts_f = ts[t_idx]
        sx1, sx2, sy1, sy2 = (
            sx1[nonempty],
            sx2[nonempty],
            sy1[nonempty],
            sy2[nonempty],
        )

        cw = self.spec.cell_width
        ch = self.spec.cell_height
        g = self.spec.g
        tiny = 1e-12
        ci0 = np.clip(((sx1 - dom.x1) / cw).astype(np.int64), 0, g - 1)
        ci1 = np.clip(((sx2 - dom.x1) / cw - tiny).astype(np.int64), 0, g - 1)
        cj0 = np.clip(((sy1 - dom.y1) / ch).astype(np.int64), 0, g - 1)
        cj1 = np.clip(((sy2 - dom.y1) / ch - tiny).astype(np.int64), 0, g - 1)

        # Expand variable-size tile spans into flat (job, timestamp, tile)
        # rectangles in one repeat pass.  ``job_idx`` from np.nonzero is
        # row-major, so the expansion comes out job-major with no sort;
        # within one job the tile visit order differs from the scalar
        # path's, which is immaterial because a job's rectangles all hit
        # distinct coefficient cells.
        ci_span = ci1 - ci0 + 1
        cj_span = cj1 - cj0 + 1
        counts = ci_span * cj_span
        rect_of = np.repeat(np.arange(counts.shape[0]), counts)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        offset = np.arange(rect_of.shape[0]) - starts[rect_of]
        span = cj_span[rect_of]
        di = offset // span
        dj = offset - di * span
        ci = ci0[rect_of] + di
        cj = cj0[rect_of] + dj
        tile_x1 = dom.x1 + ci * cw
        tile_y1 = dom.y1 + cj * ch
        ox1 = np.maximum(sx1[rect_of], tile_x1)
        ox2 = np.minimum(sx2[rect_of], tile_x1 + cw)
        oy1 = np.maximum(sy1[rect_of], tile_y1)
        oy2 = np.minimum(sy2[rect_of], tile_y1 + ch)
        slots = ts_f[rect_of] % self._slots
        rx1 = 2.0 * (ox1 - tile_x1) / cw - 1.0
        rx2 = 2.0 * (ox2 - tile_x1) / cw - 1.0
        ry1 = 2.0 * (oy1 - tile_y1) / ch - 1.0
        ry2 = 2.0 * (oy2 - tile_y1) / ch - 1.0
        heights = sign[job_idx[rect_of]] / (self.l * self.l)

        # Scatter through a flat 1-D view: np.add.at on linear indices is
        # several times faster than the equivalent N-D fancy index, and the
        # element addition order (rect order, then the 36 distinct
        # coefficient positions within a rect) is unchanged.
        kk = self.spec.k + 1
        base = ((slots * g + ci) * g + cj) * (kk * kk)
        offsets = np.arange(kk * kk, dtype=np.int64)
        flat = self._coeffs.reshape(-1)
        total = slots.shape[0]
        for start in range(0, total, self._BATCH_RECTS):
            end = min(start + self._BATCH_RECTS, total)
            deltas = delta_coefficients_batch(
                self.spec.k,
                rx1[start:end],
                rx2[start:end],
                ry1[start:end],
                ry2[start:end],
                height=heights[start:end],
            )
            idx = (base[start:end, None] + offsets[None, :]).reshape(-1)
            np.add.at(flat, idx, deltas.reshape(-1))

    def _update_rects(
        self, motion: Motion, t_from: int, t_to: int
    ) -> Optional[Tuple[np.ndarray, ...]]:
        """The (slot, tile, normalized-rect) pairs one update touches.

        Returns ``(slots, ci, cj, rx1, rx2, ry1, ry2)`` arrays, or ``None``
        when the update covers nothing inside the window and domain.
        """
        lo = max(t_from, self._tnow)
        hi = min(t_to, self._tnow + self.horizon)
        if hi < lo:
            return None
        ts = np.arange(lo, hi + 1, dtype=np.int64)
        xs, ys = motion.positions_at(ts)
        half = self.l / 2.0
        dom = self.spec.domain
        # The influence square of the object at each covered timestamp,
        # clipped to the domain.
        sx1 = np.maximum(xs - half, dom.x1)
        sx2 = np.minimum(xs + half, dom.x2)
        sy1 = np.maximum(ys - half, dom.y1)
        sy2 = np.minimum(ys + half, dom.y2)
        # Timestamps where the object itself has left the domain contribute
        # nothing: density is defined over the objects inside the L x L
        # region (shared convention with histogram and brute force).
        in_domain = (
            (xs >= dom.x1) & (xs < dom.x2) & (ys >= dom.y1) & (ys < dom.y2)
        )
        nonempty = (sx2 > sx1) & (sy2 > sy1) & in_domain
        if not nonempty.any():
            return None
        ts, sx1, sx2, sy1, sy2 = (
            ts[nonempty],
            sx1[nonempty],
            sx2[nonempty],
            sy1[nonempty],
            sy2[nonempty],
        )
        cw = self.spec.cell_width
        ch = self.spec.cell_height
        g = self.spec.g
        tiny = 1e-12
        ci0 = np.clip(((sx1 - dom.x1) / cw).astype(np.int64), 0, g - 1)
        ci1 = np.clip(((sx2 - dom.x1) / cw - tiny).astype(np.int64), 0, g - 1)
        cj0 = np.clip(((sy1 - dom.y1) / ch).astype(np.int64), 0, g - 1)
        cj1 = np.clip(((sy2 - dom.y1) / ch - tiny).astype(np.int64), 0, g - 1)

        # Expand variable-size tile spans into flat (timestamp, tile) pairs
        # by looping over the (tiny) span offsets, keeping everything numpy.
        max_di = int((ci1 - ci0).max())
        max_dj = int((cj1 - cj0).max())
        slot_l, ci_l, cj_l = [], [], []
        rx1_l, rx2_l, ry1_l, ry2_l = [], [], [], []
        for di in range(max_di + 1):
            for dj in range(max_dj + 1):
                ci = ci0 + di
                cj = cj0 + dj
                mask = (ci <= ci1) & (cj <= cj1)
                if not mask.any():
                    continue
                ci_m = ci[mask]
                cj_m = cj[mask]
                tile_x1 = dom.x1 + ci_m * cw
                tile_y1 = dom.y1 + cj_m * ch
                ox1 = np.maximum(sx1[mask], tile_x1)
                ox2 = np.minimum(sx2[mask], tile_x1 + cw)
                oy1 = np.maximum(sy1[mask], tile_y1)
                oy2 = np.minimum(sy2[mask], tile_y1 + ch)
                slot_l.append((ts[mask] % self._slots))
                ci_l.append(ci_m)
                cj_l.append(cj_m)
                # Normalise overlap rectangles to the tile frame [-1, 1].
                rx1_l.append(2.0 * (ox1 - tile_x1) / cw - 1.0)
                rx2_l.append(2.0 * (ox2 - tile_x1) / cw - 1.0)
                ry1_l.append(2.0 * (oy1 - tile_y1) / ch - 1.0)
                ry2_l.append(2.0 * (oy2 - tile_y1) / ch - 1.0)
        return (
            np.concatenate(slot_l),
            np.concatenate(ci_l),
            np.concatenate(cj_l),
            np.concatenate(rx1_l),
            np.concatenate(rx2_l),
            np.concatenate(ry1_l),
            np.concatenate(ry2_l),
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def state_arrays(self) -> dict:
        """Raw state for snapshotting (see :mod:`repro.storage.snapshot`)."""
        return {
            "coeffs": self._coeffs.copy(),
            "slot_time": self._slot_time.copy(),
            "tnow": np.int64(self._tnow),
        }

    def load_state_arrays(self, state: dict) -> None:
        """Restore state produced by :meth:`state_arrays` (shapes must match)."""
        coeffs = np.asarray(state["coeffs"], dtype=float)
        if coeffs.shape != self._coeffs.shape:
            raise InvalidParameterError(
                f"snapshot shape {coeffs.shape} does not match PA state "
                f"{self._coeffs.shape}"
            )
        # Contiguity matters: the batched scatter writes through a flat
        # reshape(-1) view, which only aliases contiguous storage.
        self._coeffs = np.ascontiguousarray(coeffs)
        self._slot_time = np.asarray(state["slot_time"], dtype=np.int64)
        self._tnow = int(state["tnow"])

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def surface_at(self, qt: int) -> ChebSurface:
        """The approximated density surface for ``qt`` (shares storage)."""
        if not (self._tnow <= qt <= self._tnow + self.horizon):
            raise HorizonError(
                f"timestamp {qt} outside maintained window {self.window}"
            )
        slot = qt % self._slots
        if self._slot_time[slot] != qt:  # pragma: no cover - internal invariant
            raise HorizonError(f"ring-buffer slot for {qt} not materialised")
        return ChebSurface(self.spec, self._coeffs[slot])

    def query(self, query: SnapshotPDRQuery, deadline=None) -> QueryResult:
        """Approximate PDR answer by branch-and-bound (Section 6.3).

        The deadline is checked once at entry: a single B&B pass is cheap
        and all-or-nothing, so there is no useful intermediate point at
        which to abandon it.
        """
        if abs(query.l - self.l) > 1e-9:
            raise InvalidParameterError(
                f"PA was built for l={self.l}; query asked l={query.l} "
                "(the approximate method fixes l, see Section 6)"
            )
        if self.faults is not None:
            self.faults.hit("pa.query")
        if deadline is not None:
            deadline.check("pa.query")
        start = time.perf_counter()
        surface = self.surface_at(query.qt)
        regions, bnb = surface.dense_regions(query.rho, md=self.md)
        cpu = time.perf_counter() - start
        TELEMETRY.tracer.record_span("bnb", cpu, nodes=bnb.nodes_visited)
        stats = QueryStats(method="pa", cpu_seconds=cpu, bnb_nodes=bnb.nodes_visited)
        stats.extra["bnb_accepted"] = float(bnb.accepted_by_bound)
        stats.extra["bnb_pruned"] = float(bnb.pruned_by_bound)
        stats.extra["bnb_leaves"] = float(bnb.resolved_at_leaf)
        return QueryResult(regions=regions, stats=stats, query=query)
