"""FR — the exact filtering-refinement PDR method (Section 5).

Evaluation proceeds in two steps:

1. **Filter** (Algorithm 1): classify every histogram cell as accepted
   (provably dense in full), rejected (provably nowhere dense) or candidate,
   using the conservative/expansive neighborhood counts.
2. **Refine** (Algorithms 2-3): for each candidate cell, fetch the objects in
   the cell's ``l/2`` expansion with a timestamped range query on the
   TPR-tree (paying simulated I/O through the buffer pool), then plane-sweep
   them into the exact dense sub-rectangles.

The union of accepted cells and refined rectangles is the exact PDR answer.
"""

from __future__ import annotations

import time
from typing import List

from ..core.errors import InvalidParameterError
from ..core.geometry import Rect
from ..core.query import QueryResult, QueryStats, SnapshotPDRQuery
from ..core.regions import RegionSet
from ..histogram.density_histogram import DensityHistogram
from ..histogram.filter import filter_query
from ..index.tree import TPRTree
from ..sweep.plane_sweep import refine_cell
from ..telemetry import TELEMETRY

__all__ = ["FRMethod"]


class FRMethod:
    """Exact PDR evaluation over a density histogram and a moving-object index.

    ``tree`` may be any index exposing ``range_query(rect, qt)`` and a
    ``buffer`` attribute — the TPR-tree by default, the B^x-tree as the
    drop-in alternative.

    ``batch_candidates`` is an optimisation *beyond the paper*: instead of
    one range query per candidate cell (Section 5.3), adjacent candidate
    cells are coalesced into maximal row strips, each refined with a single
    range query and one wider plane-sweep.  The answer is identical (the
    sweep is exact on any rectangle); only the I/O pattern changes — see
    the refinement-batching ablation benchmark.
    """

    def __init__(
        self,
        histogram: DensityHistogram,
        tree: TPRTree,
        batch_candidates: bool = False,
        faults=None,
    ) -> None:
        if histogram is None or tree is None:
            raise InvalidParameterError("FR needs both a histogram and an index")
        self.histogram = histogram
        self.tree = tree
        self.batch_candidates = batch_candidates
        self.faults = faults

    def _candidate_rects(self, filtered) -> List[Rect]:
        """Candidate regions to refine: single cells, or coalesced strips."""
        if not self.batch_candidates:
            return [
                self.histogram.cell_rect(i, j) for (i, j) in filtered.candidate_cells()
            ]
        from ..core.regions import RegionSet

        cells = RegionSet(
            self.histogram.cell_rect(i, j) for (i, j) in filtered.candidate_cells()
        )
        return list(cells.normalized())

    def query(self, query: SnapshotPDRQuery, deadline=None) -> QueryResult:
        """Exact PDR answer; stats include filter counters and charged I/O.

        ``deadline`` (a :class:`repro.reliability.deadline.Deadline`) is
        checked cooperatively before each candidate-cell refinement —
        refinement is where FR's cost lives, one range query per cell —
        raising :class:`~repro.core.errors.DeadlineExceededError` so the
        degradation ladder can fall back to a cheaper method.
        """
        buffer = self.tree.buffer
        io_before = buffer.stats.misses if buffer is not None else 0
        hits_before = self.histogram.cache_hits
        misses_before = self.histogram.cache_misses
        start = time.perf_counter()

        tracer = TELEMETRY.tracer
        filtered = filter_query(self.histogram, query)
        filter_seconds = time.perf_counter() - start
        # Each measured stage float is both accumulated below and recorded
        # as a trace leaf, so trace-derived totals equal stats.extra exactly.
        tracer.record_span("filter", filter_seconds)
        regions: List[Rect] = list(filtered.accepted_region())
        half = query.l / 2.0
        domain = self.histogram.domain
        objects_examined = 0
        fetch_seconds = 0.0
        sweep_seconds = 0.0
        for cell in self._candidate_rects(filtered):
            if self.faults is not None:
                self.faults.hit("fr.refine")
            if deadline is not None:
                deadline.check("fr.refine")
            fetch = cell.expanded(half)
            stage = time.perf_counter()
            motions = self.tree.range_query(fetch, query.qt)
            dt = time.perf_counter() - stage
            fetch_seconds += dt
            tracer.record_span("fetch", dt, objects=len(motions))
            objects_examined += len(motions)
            # Objects outside the domain do not count toward density — the
            # same convention the histogram maintains (see DensityHistogram).
            positions = [
                (x, y)
                for (x, y) in (m.position_at(query.qt) for m in motions)
                if domain.contains_point(x, y)
            ]
            stage = time.perf_counter()
            refined = refine_cell(positions, cell, query.l, query.min_count)
            dt = time.perf_counter() - stage
            sweep_seconds += dt
            tracer.record_span("sweep", dt, rects=len(refined))
            regions.extend(refined)

        cpu = time.perf_counter() - start
        io_count = (buffer.stats.misses - io_before) if buffer is not None else 0
        io_seconds = (
            io_count * buffer.io_seconds_per_miss if buffer is not None else 0.0
        )
        stats = QueryStats(
            method="fr",
            cpu_seconds=cpu,
            io_count=io_count,
            io_seconds=io_seconds,
            accepted_cells=filtered.accepted_count,
            rejected_cells=filtered.rejected_count,
            candidate_cells=filtered.candidate_count,
            objects_examined=objects_examined,
        )
        stats.extra["filter_seconds"] = filter_seconds
        stats.extra["fetch_seconds"] = fetch_seconds
        stats.extra["sweep_seconds"] = sweep_seconds
        stats.extra["cache_hits"] = float(self.histogram.cache_hits - hits_before)
        stats.extra["cache_misses"] = float(
            self.histogram.cache_misses - misses_before
        )
        return QueryResult(regions=RegionSet(regions), stats=stats, query=query)
