"""FR — the exact filtering-refinement PDR method (Section 5).

Evaluation proceeds in two steps:

1. **Filter** (Algorithm 1): classify every histogram cell as accepted
   (provably dense in full), rejected (provably nowhere dense) or candidate,
   using the conservative/expansive neighborhood counts.
2. **Refine** (Algorithms 2-3): fetch the objects that can influence the
   candidate cells with timestamped range queries on the TPR-tree (paying
   simulated I/O through the buffer pool), then plane-sweep them into the
   exact dense sub-rectangles.

The union of accepted cells and refined rectangles is the exact PDR answer.

Refinement pipeline (the default, ``batch_candidates=True``): candidate
cells are fused into per-row **bands** of maximal strips, all band
rectangles are fetched in one shared TPR traversal
(:meth:`~repro.index.tree.TPRTree.range_positions_batch`), and the fused
bands are swept by the vectorised kernel in
:mod:`repro.sweep.band_sweep` — optionally fanned across a process pool
(``REPRO_REFINE_WORKERS``; band tasks are picklable snapshot arrays).  The
emitted rectangles are bit-identical to refining each strip sequentially
with :func:`~repro.sweep.plane_sweep.refine_cell` (see the kernel module
docstring for the argument, and ``tests/test_perf_paths.py`` for the
property suite).  The legacy one-range-query-per-cell path is kept as the
equivalence oracle; opt back into it with ``batch_candidates=False``
(deprecated) or ``REPRO_FR_PER_CELL=1``.

Result reuse: per-band maximum active counts are cached per
``(tree epoch, histogram epoch, qt, l)``.  A later query over the same
snapshot with a *higher* density threshold skips — without fetching or
sweeping — every band whose strips are covered by the cached strips and
whose cached maximum is below the new threshold (no l-square centred in the
band can ever hold more objects than the band's maximum active count; this
is the ρ-monotonic containment rule).
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import InvalidParameterError
from ..core.geometry import Rect
from ..core.query import QueryResult, QueryStats, SnapshotPDRQuery
from ..core.regions import RegionSet
from ..histogram.density_histogram import DensityHistogram
from ..histogram.filter import filter_query
from ..index.tree import TPRTree
from ..sweep.band_sweep import (
    BandTask,
    merge_band_results,
    refine_bands,
    _refine_bands_worker,
)
from ..sweep.plane_sweep import _THRESHOLD_EPS, refine_cell
from ..telemetry import TELEMETRY
from ..telemetry import instruments as tm

__all__ = ["FRMethod"]

# Keep this many (tree epoch, histogram epoch, qt, l) snapshot keys of
# per-band maxima around for the ρ-monotonic skip rule.
_BAND_CACHE_KEYS = 8

# Process pool shared by every FRMethod in the process; sized lazily to the
# last requested worker count (queries are read-only, so one pool serves all
# instances).
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_POOL_LOCK = threading.Lock()


def _refine_pool(workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS != workers:
            if _POOL is not None:
                _POOL.shutdown(wait=False)
            # Spawned workers import the package fresh: no inherited locks
            # from the (possibly threaded) serving process.
            import multiprocessing

            _POOL = ProcessPoolExecutor(
                max_workers=workers, mp_context=multiprocessing.get_context("spawn")
            )
            _POOL_WORKERS = workers
        return _POOL


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


class FRMethod:
    """Exact PDR evaluation over a density histogram and a moving-object index.

    ``tree`` may be any index exposing ``range_query(rect, qt)`` and a
    ``buffer`` attribute — the TPR-tree by default, the B^x-tree as the
    drop-in alternative.  The band-fused fast path additionally uses
    ``range_positions_batch`` when the index provides it and falls back to
    per-strip ``range_query`` calls otherwise.

    ``batch_candidates`` selects the refinement pipeline: ``True`` (the
    default) fuses candidate cells into per-row strips refined by the
    vectorised band kernel; ``False`` is the deprecated per-cell loop of
    Section 5.3, kept as the bit-exactness oracle.  The answer is identical
    (the sweep is exact on any rectangle); only the decomposition and the
    I/O pattern change — see the refinement-batching ablation benchmark.

    ``refine_workers`` fans band sweeps across a process pool (0 = inline;
    defaults to ``REPRO_REFINE_WORKERS``).
    """

    def __init__(
        self,
        histogram: DensityHistogram,
        tree: TPRTree,
        batch_candidates: Optional[bool] = None,
        faults=None,
        refine_workers: Optional[int] = None,
    ) -> None:
        if histogram is None or tree is None:
            raise InvalidParameterError("FR needs both a histogram and an index")
        self.histogram = histogram
        self.tree = tree
        if batch_candidates is None:
            batch_candidates = not _env_flag("REPRO_FR_PER_CELL")
        elif not batch_candidates:
            warnings.warn(
                "batch_candidates=False (per-cell refinement) is deprecated and "
                "kept only as the band-fusion equivalence oracle; it will lose "
                "its public switch once the oracle suite pins the kernel",
                DeprecationWarning,
                stacklevel=2,
            )
        self.batch_candidates = batch_candidates
        if refine_workers is None:
            try:
                refine_workers = int(os.environ.get("REPRO_REFINE_WORKERS", "0"))
            except ValueError:
                refine_workers = 0
        self.refine_workers = max(0, refine_workers)
        self.faults = faults
        # (tree epoch, histogram epoch, qt, l) -> {row j: (x1s, x2s, max_active)}
        self._band_cache: "OrderedDict[tuple, Dict[int, tuple]]" = OrderedDict()
        self._band_cache_lock = threading.Lock()

    # ------------------------------------------------------------------
    # band planning
    # ------------------------------------------------------------------
    def _candidate_rects(self, filtered) -> List[Rect]:
        """Candidate regions to refine: single cells, or coalesced strips."""
        if not self.batch_candidates:
            return [
                self.histogram.cell_rect(i, j) for (i, j) in filtered.candidate_cells()
            ]
        cells = RegionSet(
            self.histogram.cell_rect(i, j) for (i, j) in filtered.candidate_cells()
        )
        return list(cells.normalized())

    def _plan_rows(self, candidate: np.ndarray) -> List[Tuple[int, np.ndarray, np.ndarray]]:
        """Fuse a candidate mask into per-row strips.

        Returns ``(row j, strips_x1, strips_x2)`` for every row with at
        least one candidate cell; strips are the maximal runs of adjacent
        candidate columns, with world extents matching
        :meth:`DensityHistogram.cell_rect` bit for bit.
        """
        hist = self.histogram
        lx = hist.cell_edge
        ly = hist.cell_edge_y
        x0 = hist.domain.x1
        y0 = hist.domain.y1
        out: List[Tuple[int, np.ndarray, np.ndarray]] = []
        # candidate is indexed [i, j] = (column, row).
        for j in np.flatnonzero(candidate.any(axis=0)):
            cols = np.flatnonzero(candidate[:, j])
            breaks = np.flatnonzero(np.diff(cols) > 1)
            run_starts = cols[np.concatenate([[0], breaks + 1])]
            run_ends = cols[np.concatenate([breaks, [cols.size - 1]])]
            # Same float expressions as cell_rect: x1 = x0 + i*lx, x2 = x1 + lx.
            x1s = x0 + run_starts * lx
            x2s = (x0 + run_ends * lx) + lx
            out.append((int(j), x1s.astype(float), x2s.astype(float)))
        return out

    def _row_bounds(self, j: int) -> Tuple[float, float]:
        hist = self.histogram
        y1 = hist.domain.y1 + j * hist.cell_edge_y
        return y1, y1 + hist.cell_edge_y

    def _accepted_bounds(self, filtered) -> np.ndarray:
        """Accepted-cell rectangles as a bounds array (cell_rect floats)."""
        ai, aj = np.nonzero(filtered.accepted)
        if ai.size == 0:
            return np.empty((0, 4), dtype=float)
        hist = self.histogram
        x1 = hist.domain.x1 + ai * hist.cell_edge
        y1 = hist.domain.y1 + aj * hist.cell_edge_y
        return np.column_stack([x1, y1, x1 + hist.cell_edge, y1 + hist.cell_edge_y])

    # ------------------------------------------------------------------
    # ρ-monotonic band cache
    # ------------------------------------------------------------------
    def _cache_key(self, query: SnapshotPDRQuery) -> tuple:
        tree_epoch = getattr(self.tree, "epoch", None)
        hist_epoch = getattr(self.histogram, "_epoch", None)
        return (tree_epoch, hist_epoch, float(query.qt), float(query.l))

    @staticmethod
    def _strips_covered(
        x1s: np.ndarray, x2s: np.ndarray, cx1: np.ndarray, cx2: np.ndarray
    ) -> bool:
        """True when every [x1, x2) strip lies inside some cached strip."""
        idx = np.searchsorted(cx1, x1s, side="right") - 1
        if (idx < 0).any():
            return False
        return bool((x1s >= cx1[idx]).all() and (x2s <= cx2[idx]).all())

    def _skippable_rows(
        self, key: tuple, rows, threshold: float
    ) -> set:
        """Rows whose cached band maximum proves the refinement empty."""
        with self._band_cache_lock:
            cached = self._band_cache.get(key)
            if cached is None:
                return set()
            skippable = set()
            for j, x1s, x2s in rows:
                entry = cached.get(j)
                if entry is None:
                    continue
                cx1, cx2, m_b = entry
                if m_b < threshold and self._strips_covered(x1s, x2s, cx1, cx2):
                    skippable.add(j)
            return skippable

    def _remember_rows(self, key: tuple, entries: Dict[int, tuple]) -> None:
        if not entries:
            return
        with self._band_cache_lock:
            bucket = self._band_cache.get(key)
            if bucket is None:
                bucket = {}
                self._band_cache[key] = bucket
                while len(self._band_cache) > _BAND_CACHE_KEYS:
                    self._band_cache.popitem(last=False)
            else:
                self._band_cache.move_to_end(key)
            bucket.update(entries)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, query: SnapshotPDRQuery, deadline=None) -> QueryResult:
        """Exact PDR answer; stats include filter counters and charged I/O.

        ``deadline`` (a :class:`repro.reliability.deadline.Deadline`) is
        checked cooperatively before each band (or candidate-cell)
        refinement — refinement is where FR's cost lives — raising
        :class:`~repro.core.errors.DeadlineExceededError` so the degradation
        ladder can fall back to a cheaper method.
        """
        if self.batch_candidates and hasattr(self.tree, "range_positions_batch"):
            return self._query_banded(query, deadline)
        return self._query_per_cell(query, deadline)

    def _query_banded(self, query: SnapshotPDRQuery, deadline) -> QueryResult:
        buffer = self.tree.buffer
        io_before = buffer.stats.misses if buffer is not None else 0
        hits_before = self.histogram.cache_hits
        misses_before = self.histogram.cache_misses
        start = time.perf_counter()

        tracer = TELEMETRY.tracer
        filtered = filter_query(self.histogram, query)
        filter_seconds = time.perf_counter() - start
        # Each measured stage float is both accumulated below and recorded
        # as a trace leaf, so trace-derived totals equal stats.extra exactly.
        tracer.record_span("filter", filter_seconds)

        half = query.l / 2.0
        threshold = query.min_count - _THRESHOLD_EPS
        domain = self.histogram.domain

        # --- fuse: candidate mask -> per-row strip bands -------------------
        stage = time.perf_counter()
        rows = self._plan_rows(filtered.candidate)
        for _ in rows:
            if self.faults is not None:
                self.faults.hit("fr.refine")
            if deadline is not None:
                deadline.check("fr.refine")
        cache_key = self._cache_key(query)
        skippable = self._skippable_rows(cache_key, rows, threshold)
        kept = [r for r in rows if r[0] not in skippable]
        fuse_seconds = time.perf_counter() - stage
        tracer.record_span(
            "fuse", fuse_seconds, bands=len(rows), skipped=len(skippable)
        )

        # --- fetch: one shared TPR traversal for every band ----------------
        stage = time.perf_counter()
        fetch_rects = []
        row_bounds = []
        for j, x1s, x2s in kept:
            y1, y2 = self._row_bounds(j)
            row_bounds.append((y1, y2))
            fetch_rects.append(
                Rect(float(x1s[0]) - half, y1 - half, float(x2s[-1]) + half, y2 + half)
            )
        fetched = (
            self.tree.range_positions_batch(fetch_rects, float(query.qt))
            if fetch_rects
            else []
        )
        objects_examined = 0
        tasks: List[BandTask] = []
        for (j, x1s, x2s), (y1, y2), (px, py) in zip(kept, row_bounds, fetched):
            objects_examined += int(px.size)
            # Objects outside the domain do not count toward density — the
            # same convention the histogram maintains (see DensityHistogram).
            inside = (
                (px >= domain.x1)
                & (px < domain.x2)
                & (py >= domain.y1)
                & (py < domain.y2)
            )
            tasks.append(BandTask(y1, y2, x1s, x2s, px[inside], py[inside]))
        fetch_seconds = time.perf_counter() - stage
        tracer.record_span("fetch", fetch_seconds, objects=objects_examined)

        # --- sweep: vectorised band kernel, inline or pooled ---------------
        stage = time.perf_counter()
        workers = self.refine_workers
        if workers > 0 and len(tasks) > 1:
            n_chunks = min(workers, len(tasks))
            sizes = [
                len(tasks) // n_chunks + (1 if k < len(tasks) % n_chunks else 0)
                for k in range(n_chunks)
            ]
            offsets, pos = [], 0
            payloads = []
            for size in sizes:
                offsets.append(pos)
                payloads.append(
                    (
                        [tuple(t) for t in tasks[pos : pos + size]],
                        query.l,
                        query.min_count,
                    )
                )
                pos += size
            pool = _refine_pool(workers)
            chunks = list(pool.map(_refine_bands_worker, payloads))
            swept = merge_band_results(chunks, offsets)
        else:
            swept = refine_bands(tasks, query.l, query.min_count)
        sweep_seconds = time.perf_counter() - stage
        tracer.record_span(
            "sweep", sweep_seconds, rects=int(swept.bounds.shape[0]),
            segments=swept.segments,
        )

        # --- merge: accepted cells + refined rects, cache band maxima ------
        stage = time.perf_counter()
        self._remember_rows(
            cache_key,
            {
                j: (x1s, x2s, int(m_b))
                for (j, x1s, x2s), m_b in zip(kept, swept.max_active)
            },
        )
        bounds = np.concatenate([self._accepted_bounds(filtered), swept.bounds])
        # Accepted cells, candidate strips and per-strip sweep emissions are
        # pairwise disjoint by construction: the O(n) area fast path applies.
        regions = RegionSet.from_bounds(bounds, disjoint=True)
        merge_seconds = time.perf_counter() - stage
        tracer.record_span("merge", merge_seconds, rects=len(regions))

        tm.REFINE_BANDS.labels("swept").inc(len(kept))
        tm.REFINE_BANDS.labels("skipped").inc(len(skippable))
        tm.REFINE_POOL_WORKERS.set(float(workers))
        for band_stage, dt in (
            ("fuse", fuse_seconds),
            ("fetch", fetch_seconds),
            ("sweep", sweep_seconds),
            ("merge", merge_seconds),
        ):
            tm.REFINE_BAND_SECONDS.labels(band_stage).observe(dt)

        cpu = time.perf_counter() - start
        io_count = (buffer.stats.misses - io_before) if buffer is not None else 0
        io_seconds = (
            io_count * buffer.io_seconds_per_miss if buffer is not None else 0.0
        )
        stats = QueryStats(
            method="fr",
            cpu_seconds=cpu,
            io_count=io_count,
            io_seconds=io_seconds,
            accepted_cells=filtered.accepted_count,
            rejected_cells=filtered.rejected_count,
            candidate_cells=filtered.candidate_count,
            objects_examined=objects_examined,
        )
        stats.extra["filter_seconds"] = filter_seconds
        stats.extra["fuse_seconds"] = fuse_seconds
        stats.extra["fetch_seconds"] = fetch_seconds
        stats.extra["sweep_seconds"] = sweep_seconds
        stats.extra["merge_seconds"] = merge_seconds
        stats.extra["refine_bands"] = float(len(kept))
        stats.extra["refine_bands_skipped"] = float(len(skippable))
        stats.extra["refine_segments"] = float(swept.segments)
        stats.extra["refine_workers"] = float(workers)
        stats.extra["cache_hits"] = float(self.histogram.cache_hits - hits_before)
        stats.extra["cache_misses"] = float(
            self.histogram.cache_misses - misses_before
        )
        return QueryResult(regions=regions, stats=stats, query=query)

    def _query_per_cell(self, query: SnapshotPDRQuery, deadline) -> QueryResult:
        """The legacy per-candidate-rect loop (band-fusion equivalence oracle)."""
        buffer = self.tree.buffer
        io_before = buffer.stats.misses if buffer is not None else 0
        hits_before = self.histogram.cache_hits
        misses_before = self.histogram.cache_misses
        start = time.perf_counter()

        tracer = TELEMETRY.tracer
        filtered = filter_query(self.histogram, query)
        filter_seconds = time.perf_counter() - start
        # Each measured stage float is both accumulated below and recorded
        # as a trace leaf, so trace-derived totals equal stats.extra exactly.
        tracer.record_span("filter", filter_seconds)
        regions: List[Rect] = list(filtered.accepted_region())
        half = query.l / 2.0
        domain = self.histogram.domain
        objects_examined = 0
        fetch_seconds = 0.0
        sweep_seconds = 0.0
        for cell in self._candidate_rects(filtered):
            if self.faults is not None:
                self.faults.hit("fr.refine")
            if deadline is not None:
                deadline.check("fr.refine")
            fetch = cell.expanded(half)
            stage = time.perf_counter()
            motions = self.tree.range_query(fetch, query.qt)
            dt = time.perf_counter() - stage
            fetch_seconds += dt
            tracer.record_span("fetch", dt, objects=len(motions))
            objects_examined += len(motions)
            # Objects outside the domain do not count toward density — the
            # same convention the histogram maintains (see DensityHistogram).
            positions = [
                (x, y)
                for (x, y) in (m.position_at(query.qt) for m in motions)
                if domain.contains_point(x, y)
            ]
            stage = time.perf_counter()
            refined = refine_cell(positions, cell, query.l, query.min_count)
            dt = time.perf_counter() - stage
            sweep_seconds += dt
            tracer.record_span("sweep", dt, rects=len(refined))
            regions.extend(refined)

        cpu = time.perf_counter() - start
        io_count = (buffer.stats.misses - io_before) if buffer is not None else 0
        io_seconds = (
            io_count * buffer.io_seconds_per_miss if buffer is not None else 0.0
        )
        stats = QueryStats(
            method="fr",
            cpu_seconds=cpu,
            io_count=io_count,
            io_seconds=io_seconds,
            accepted_cells=filtered.accepted_count,
            rejected_cells=filtered.rejected_count,
            candidate_cells=filtered.candidate_count,
            objects_examined=objects_examined,
        )
        stats.extra["filter_seconds"] = filter_seconds
        stats.extra["fetch_seconds"] = fetch_seconds
        stats.extra["sweep_seconds"] = sweep_seconds
        stats.extra["cache_hits"] = float(self.histogram.cache_hits - hits_before)
        stats.extra["cache_misses"] = float(
            self.histogram.cache_misses - misses_before
        )
        return QueryResult(regions=RegionSet(regions), stats=stats, query=query)
