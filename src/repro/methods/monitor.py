"""Continuous PDR monitoring — an extension beyond the paper's snapshots.

The paper evaluates one-shot snapshot queries; operational deployments
(traffic control rooms, dispatch systems) instead want a *standing* query:
"keep telling me where the dense regions will be ``offset`` timestamps from
now, and what changed".  :class:`PDRMonitor` subscribes to the server clock
and re-evaluates a fixed PDR query every ``every`` timestamps, reporting the
answer plus the appeared/vanished area relative to the previous evaluation.

Because the PA method keeps per-timestamp coefficients for the whole horizon
anyway, continuous evaluation costs exactly one B&B pass per tick — there is
no extra maintained state.

A standing query must outlive individual failures: an evaluation that dies
(an I/O fault, an exhausted retry budget) is recorded as a ``failed``
:class:`MonitorEvent` rather than unwinding the server's clock advance, and
one that fell down the degradation ladder is recorded as ``degraded``.
Only a simulated process crash (``InjectedCrashError``, a
``BaseException``) propagates — a dead process monitors nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.errors import AdmissionRejectedError, InvalidParameterError, ReproError
from ..core.query import QueryResult
from ..core.regions import RegionSet
from ..motion.updates import UpdateListener

__all__ = ["MonitorEvent", "PDRMonitor"]


@dataclass
class MonitorEvent:
    """One evaluation of the standing query.

    ``status`` is ``"ok"``, ``"degraded"`` (the deadline ladder answered
    with a cheaper method), ``"shed"`` (the admission controller rejected
    the evaluation to protect an overloaded group; ``retry_after`` says
    when to expect capacity) or ``"failed"`` (the evaluation raised;
    ``error`` holds the message and ``result`` is ``None``).
    """

    tnow: int
    qt: int
    regions: RegionSet
    appeared_area: float  # newly dense area vs the previous event
    vanished_area: float  # area that stopped being dense
    result: Optional[QueryResult]
    status: str = "ok"
    error: Optional[str] = None
    retry_after: Optional[float] = None
    # Histogram-cache hits/misses this evaluation incurred (0 for methods
    # that never touch the filter, e.g. pure PA evaluations).
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def changed(self) -> bool:
        return self.appeared_area > 1e-9 or self.vanished_area > 1e-9


class PDRMonitor(UpdateListener):
    """A standing predictive PDR query over a :class:`~repro.core.system.PDRServer`.

    Attach with ``server.table.add_listener(monitor)``; each time the clock
    advances across an evaluation boundary the monitor evaluates the query
    at ``t_now + offset`` and appends a :class:`MonitorEvent`.  ``varrho``
    re-resolves against the live object count at every tick (a fixed ``rho``
    may be given instead).  ``deadline`` (seconds per evaluation) turns on
    the degradation ladder so a slow tick yields an approximate event
    instead of a late one.
    """

    def __init__(
        self,
        server,
        offset: int = 0,
        every: int = 1,
        method: str = "pa",
        l: Optional[float] = None,
        rho: Optional[float] = None,
        varrho: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> None:
        if every < 1:
            raise InvalidParameterError(f"every must be >= 1, got {every}")
        if offset < 0:
            raise InvalidParameterError(f"offset must be >= 0, got {offset}")
        if offset > server.config.prediction_window:
            raise InvalidParameterError(
                f"offset {offset} exceeds the prediction window "
                f"W={server.config.prediction_window}"
            )
        if (rho is None) == (varrho is None):
            raise InvalidParameterError("provide exactly one of rho and varrho")
        self.server = server
        self.offset = offset
        self.every = every
        self.method = method
        self.l = l
        self.rho = rho
        self.varrho = varrho
        self.deadline = deadline
        self.events: List[MonitorEvent] = []
        self._last_eval: Optional[int] = None
        self._previous: RegionSet = RegionSet()

    # ------------------------------------------------------------------
    def poll(self) -> MonitorEvent:
        """Force one evaluation at the current time.

        Never raises a :class:`ReproError`: a failed evaluation becomes a
        ``failed`` event (the previous dense picture is kept as the diff
        baseline, so the next successful event diffs against the last
        *known* answer, not against emptiness).
        """
        tnow = self.server.tnow
        qt = tnow + self.offset
        self._last_eval = tnow
        try:
            result = self.server.query(
                self.method, qt=qt, l=self.l, rho=self.rho, varrho=self.varrho,
                deadline=self.deadline,
            )
        except AdmissionRejectedError as exc:
            event = MonitorEvent(
                tnow=tnow,
                qt=qt,
                regions=RegionSet(),
                appeared_area=0.0,
                vanished_area=0.0,
                result=None,
                status="shed",
                error=f"{type(exc).__name__}: {exc}",
                retry_after=exc.retry_after,
            )
            self.events.append(event)
            return event
        except ReproError as exc:
            event = MonitorEvent(
                tnow=tnow,
                qt=qt,
                regions=RegionSet(),
                appeared_area=0.0,
                vanished_area=0.0,
                result=None,
                status="failed",
                error=f"{type(exc).__name__}: {exc}",
            )
            self.events.append(event)
            return event
        appeared = result.regions.difference_area(self._previous)
        vanished = self._previous.difference_area(result.regions)
        event = MonitorEvent(
            tnow=tnow,
            qt=qt,
            regions=result.regions,
            appeared_area=appeared,
            vanished_area=vanished,
            result=result,
            status="degraded" if result.degraded else "ok",
            cache_hits=int(result.stats.extra.get("cache_hits", 0.0)),
            cache_misses=int(result.stats.extra.get("cache_misses", 0.0)),
        )
        self.events.append(event)
        self._previous = result.regions
        return event

    def on_advance(self, tnow: int) -> None:
        if self._last_eval is None or tnow - self._last_eval >= self.every:
            self.poll()

    @property
    def latest(self) -> Optional[MonitorEvent]:
        return self.events[-1] if self.events else None

    def changed_events(self) -> List[MonitorEvent]:
        """Only the evaluations where the dense picture actually moved.

        Failed and shed evaluations never count as change: an unknown
        answer is not an empty one.
        """
        return [
            e for e in self.events
            if e.status not in ("failed", "shed") and e.changed
        ]

    def failed_events(self) -> List[MonitorEvent]:
        """The evaluations that raised (for alerting/backfill)."""
        return [e for e in self.events if e.status == "failed"]

    def shed_events(self) -> List[MonitorEvent]:
        """The evaluations the admission controller rejected under load."""
        return [e for e in self.events if e.status == "shed"]
