"""PDR evaluators and derived query services.

The paper's two methods (FR exact, PA approximate), interval-query lifting,
plus the extensions: continuous monitoring, top-k density peaks and
range-count estimation.
"""

from .estimate import estimate_count_dh, estimate_count_pa, exact_count
from .fr import FRMethod
from .interval import evaluate_interval, evaluate_interval_fr
from .monitor import MonitorEvent, PDRMonitor
from .pa import PAMethod
from .topk import DensityPeak, top_k_peaks

__all__ = [
    "FRMethod",
    "PAMethod",
    "evaluate_interval",
    "evaluate_interval_fr",
    "PDRMonitor",
    "MonitorEvent",
    "DensityPeak",
    "top_k_peaks",
    "estimate_count_dh",
    "estimate_count_pa",
    "exact_count",
]
