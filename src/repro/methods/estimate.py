"""Range-count (selectivity) estimation from the maintained structures.

The paper's related-work section connects dense-region queries to
spatio-temporal aggregation and selectivity estimation: both compute counts
over ranges, but a dense-region query has no range predicate.  The reverse
direction is free, though — the structures FR and PA maintain double as
selectivity estimators, and this module exposes them:

* :func:`estimate_count_dh` — sum the histogram cells intersecting the
  range, prorating boundary cells by overlap fraction (the classic
  equi-width-histogram estimator);
* :func:`estimate_count_pa` — integrate the Chebyshev density surface over
  the range in closed form.  The surface approximates the *l-smoothed*
  object density (each object spreads mass ``1`` over its ``l``-square), so
  the integral estimates the count of a range blurred at scale ``l`` —
  accurate when the range is large relative to ``l``.

Both come with an exact reference (:func:`exact_count`) used by the tests
and handy for calibration.
"""

from __future__ import annotations

from ..chebyshev.cheb1d import plain_integrals
from ..core.geometry import Rect
from ..histogram.density_histogram import DensityHistogram
from .pa import PAMethod

__all__ = ["exact_count", "estimate_count_dh", "estimate_count_pa"]


def exact_count(table, rect: Rect, qt: int, horizon: int) -> int:
    """True number of live, covered objects inside ``rect`` at ``qt``."""
    count = 0
    for motion in table.motions():
        if not (motion.t_ref <= qt <= motion.t_ref + horizon):
            continue
        x, y = motion.position_at(qt)
        if rect.contains_point(x, y):
            count += 1
    return count


def estimate_count_dh(histogram: DensityHistogram, rect: Rect, qt: int) -> float:
    """Histogram estimator: full cells counted fully, edge cells prorated."""
    clipped = rect.intersection(histogram.domain)
    if clipped.is_empty():
        return 0.0
    counts = histogram.counts_at(qt)
    eps = 1e-12
    i0, j0 = histogram.cell_of(clipped.x1, clipped.y1)
    i1, j1 = histogram.cell_of(
        min(clipped.x2, histogram.domain.x2) - eps,
        min(clipped.y2, histogram.domain.y2) - eps,
    )
    total = 0.0
    for i in range(i0, i1 + 1):
        for j in range(j0, j1 + 1):
            cell = histogram.cell_rect(i, j)
            overlap = cell.intersection(clipped)
            if overlap.is_empty():
                continue
            total += counts[i, j] * (overlap.area / cell.area)
    return float(total)


def estimate_count_pa(pa: PAMethod, rect: Rect, qt: int) -> float:
    """Closed-form integral of the density surface over ``rect``.

    For each polynomial tile overlapping ``rect``, integrates
    ``sum a_ij T_i(x) T_j(y)`` over the normalized overlap rectangle using
    the plain Chebyshev antiderivatives, scaled by the tile's world-area
    Jacobian.  Negative local estimates (approximation ringing) are kept —
    they cancel across tiles; the final result is floored at zero.
    """
    surface = pa.surface_at(qt)
    spec = surface.spec
    clipped = rect.intersection(spec.domain)
    if clipped.is_empty():
        return 0.0
    eps = 1e-12
    i0, j0 = spec.cell_of(clipped.x1, clipped.y1)
    i1, j1 = spec.cell_of(
        min(clipped.x2, spec.domain.x2) - eps,
        min(clipped.y2, spec.domain.y2) - eps,
    )
    jacobian = (spec.cell_width / 2.0) * (spec.cell_height / 2.0)
    total = 0.0
    for i in range(i0, i1 + 1):
        for j in range(j0, j1 + 1):
            tile = spec.cell_rect(i, j)
            overlap = tile.intersection(clipped)
            if overlap.is_empty():
                continue
            nx1 = float(spec.to_normalized_x(i, overlap.x1))
            nx2 = float(spec.to_normalized_x(i, overlap.x2))
            ny1 = float(spec.to_normalized_y(j, overlap.y1))
            ny2 = float(spec.to_normalized_y(j, overlap.y2))
            ix = plain_integrals(spec.k, nx1, nx2)
            iy = plain_integrals(spec.k, ny1, ny2)
            total += float(ix @ surface.coeffs[i, j] @ iy) * jacobian
    return max(total, 0.0)
