"""Interval PDR queries (Definition 5).

An interval query ``(rho, l, [qt1, qt2])`` is the union of the snapshot
answers across the integer timestamps of the interval.  Any snapshot
evaluator (FR, PA, DH, brute force) can be lifted via
:func:`evaluate_interval`; statistics are summed across the constituent
snapshots.

:func:`evaluate_interval_fr` is the optimised exact evaluator.  It
classifies cells once for the whole interval
(:mod:`repro.histogram.interval_filter`) so a cell that is wholly dense at
*any* timestamp is emitted without refinement, and the remaining candidate
cells are swept only at the timestamps where they individually need it.
The per-(cell, timestamp) refinements are then executed as one batch: every
(timestamp, row) band of fused candidate strips is fetched in a *single*
shared TPR-tree traversal — adjacent timestamps touch nearly identical
pages, so each page is read and charged once for the whole interval instead
of once per snapshot — and all bands are swept together by the vectorised
kernel in :mod:`repro.sweep.band_sweep`.  Combined with the histogram's
epoch-keyed per-timestamp prefix-sum memoisation, an interval query no
longer recomputes each snapshot from scratch.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

import numpy as np

from ..core.geometry import Rect
from ..core.query import (
    IntervalPDRQuery,
    QueryResult,
    QueryStats,
    SnapshotPDRQuery,
)
from ..core.regions import RegionSet
from ..histogram.interval_filter import filter_query_interval
from ..sweep.band_sweep import BandTask, refine_bands
from ..sweep.plane_sweep import refine_cell

__all__ = ["evaluate_interval", "evaluate_interval_fr"]

SnapshotEvaluator = Callable[[SnapshotPDRQuery], QueryResult]


def evaluate_interval(
    evaluate_snapshot: SnapshotEvaluator, query: IntervalPDRQuery
) -> QueryResult:
    """Union of snapshot answers over ``[qt1, qt2]`` with merged statistics."""
    regions = RegionSet()
    stats = QueryStats()
    for snapshot in query.snapshots():
        result = evaluate_snapshot(snapshot)
        regions = regions.union(result.regions)
        stats = stats.merged_with(result.stats)
    stats.method = (stats.method or "snapshot") + "-interval"
    return QueryResult(regions=regions, stats=stats, query=None)


def evaluate_interval_fr(fr_method, query: IntervalPDRQuery) -> QueryResult:
    """Exact interval answer with interval-level filtering (see module doc).

    ``fr_method`` is an :class:`~repro.methods.fr.FRMethod`; its histogram
    and index are used directly.
    """
    histogram = fr_method.histogram
    tree = fr_method.tree
    buffer = tree.buffer
    io_before = buffer.stats.misses if buffer is not None else 0
    start = time.perf_counter()

    filtered = filter_query_interval(histogram, query)
    regions: List[Rect] = list(filtered.accepted_region())
    half = query.l / 2.0
    min_count = query.rho * query.l * query.l
    domain = histogram.domain
    objects_examined = 0

    if hasattr(tree, "range_positions_batch"):
        # Band-batched refinement: fuse each timestamp's pending candidate
        # cells into per-row strips, fetch every band in one shared
        # traversal, and sweep them all in one kernel pass.
        m = histogram.m
        pending_at: Dict[int, np.ndarray] = {}
        for (i, j), timestamps in filtered.candidate_times.items():
            for qt in timestamps:
                mask = pending_at.get(qt)
                if mask is None:
                    mask = np.zeros((m, m), dtype=bool)
                    pending_at[qt] = mask
                mask[i, j] = True
        tasks: List[BandTask] = []
        fetch_rects: List[Rect] = []
        fetch_qts: List[float] = []
        for qt in sorted(pending_at):
            for j, x1s, x2s in fr_method._plan_rows(pending_at[qt]):
                y1, y2 = fr_method._row_bounds(j)
                tasks.append(BandTask(y1, y2, x1s, x2s, None, None))
                fetch_rects.append(
                    Rect(
                        float(x1s[0]) - half,
                        y1 - half,
                        float(x2s[-1]) + half,
                        y2 + half,
                    )
                )
                fetch_qts.append(float(qt))
        fetched = (
            tree.range_positions_batch(fetch_rects, np.asarray(fetch_qts))
            if fetch_rects
            else []
        )
        for idx, (px, py) in enumerate(fetched):
            objects_examined += int(px.size)
            inside = (
                (px >= domain.x1)
                & (px < domain.x2)
                & (py >= domain.y1)
                & (py < domain.y2)
            )
            t = tasks[idx]
            tasks[idx] = BandTask(
                t.y1, t.y2, t.strips_x1, t.strips_x2, px[inside], py[inside]
            )
        swept = refine_bands(tasks, query.l, min_count)
        regions.extend(
            Rect(row[0], row[1], row[2], row[3]) for row in swept.bounds
        )
    else:
        # Indexes without a batch traversal (e.g. alternative trees) keep
        # the per-(cell, timestamp) loop.
        for (i, j), timestamps in filtered.candidate_times.items():
            cell = histogram.cell_rect(i, j)
            fetch = cell.expanded(half)
            for qt in timestamps:
                motions = tree.range_query(fetch, qt)
                objects_examined += len(motions)
                positions = [
                    (x, y)
                    for (x, y) in (m.position_at(qt) for m in motions)
                    if domain.contains_point(x, y)
                ]
                regions.extend(refine_cell(positions, cell, query.l, min_count))

    cpu = time.perf_counter() - start
    io_count = (buffer.stats.misses - io_before) if buffer is not None else 0
    stats = QueryStats(
        method="fr-interval-optimized",
        cpu_seconds=cpu,
        io_count=io_count,
        io_seconds=io_count * buffer.io_seconds_per_miss if buffer is not None else 0.0,
        accepted_cells=filtered.accepted_count,
        rejected_cells=filtered.rejected_count,
        candidate_cells=filtered.candidate_count,
        objects_examined=objects_examined,
    )
    stats.extra["refinement_snapshots"] = float(filtered.refinement_snapshots())
    return QueryResult(regions=RegionSet(regions), stats=stats, query=None)
