"""Interval PDR queries (Definition 5).

An interval query ``(rho, l, [qt1, qt2])`` is the union of the snapshot
answers across the integer timestamps of the interval.  Any snapshot
evaluator (FR, PA, DH, brute force) can be lifted via
:func:`evaluate_interval`; statistics are summed across the constituent
snapshots.

:func:`evaluate_interval_fr` is the optimised exact evaluator: it
classifies cells once for the whole interval
(:mod:`repro.histogram.interval_filter`) so a cell that is wholly dense at
*any* timestamp is emitted without refinement, and the remaining candidate
cells are swept only at the timestamps where they individually need it —
typically a large refinement-I/O saving over the naive union.
"""

from __future__ import annotations

import time
from typing import Callable, List

from ..core.geometry import Rect
from ..core.query import (
    IntervalPDRQuery,
    QueryResult,
    QueryStats,
    SnapshotPDRQuery,
)
from ..core.regions import RegionSet
from ..histogram.interval_filter import filter_query_interval
from ..sweep.plane_sweep import refine_cell

__all__ = ["evaluate_interval", "evaluate_interval_fr"]

SnapshotEvaluator = Callable[[SnapshotPDRQuery], QueryResult]


def evaluate_interval(
    evaluate_snapshot: SnapshotEvaluator, query: IntervalPDRQuery
) -> QueryResult:
    """Union of snapshot answers over ``[qt1, qt2]`` with merged statistics."""
    regions = RegionSet()
    stats = QueryStats()
    for snapshot in query.snapshots():
        result = evaluate_snapshot(snapshot)
        regions = regions.union(result.regions)
        stats = stats.merged_with(result.stats)
    stats.method = (stats.method or "snapshot") + "-interval"
    return QueryResult(regions=regions, stats=stats, query=None)


def evaluate_interval_fr(fr_method, query: IntervalPDRQuery) -> QueryResult:
    """Exact interval answer with interval-level filtering (see module doc).

    ``fr_method`` is an :class:`~repro.methods.fr.FRMethod`; its histogram
    and index are used directly.
    """
    histogram = fr_method.histogram
    tree = fr_method.tree
    buffer = tree.buffer
    io_before = buffer.stats.misses if buffer is not None else 0
    start = time.perf_counter()

    filtered = filter_query_interval(histogram, query)
    regions: List[Rect] = list(filtered.accepted_region())
    half = query.l / 2.0
    min_count = query.rho * query.l * query.l
    domain = histogram.domain
    objects_examined = 0
    for (i, j), timestamps in filtered.candidate_times.items():
        cell = histogram.cell_rect(i, j)
        fetch = cell.expanded(half)
        for qt in timestamps:
            motions = tree.range_query(fetch, qt)
            objects_examined += len(motions)
            positions = [
                (x, y)
                for (x, y) in (m.position_at(qt) for m in motions)
                if domain.contains_point(x, y)
            ]
            regions.extend(refine_cell(positions, cell, query.l, min_count))

    cpu = time.perf_counter() - start
    io_count = (buffer.stats.misses - io_before) if buffer is not None else 0
    stats = QueryStats(
        method="fr-interval-optimized",
        cpu_seconds=cpu,
        io_count=io_count,
        io_seconds=io_count * buffer.io_seconds_per_miss if buffer is not None else 0.0,
        accepted_cells=filtered.accepted_count,
        rejected_cells=filtered.rejected_count,
        candidate_cells=filtered.candidate_count,
        objects_examined=objects_examined,
    )
    stats.extra["refinement_snapshots"] = float(filtered.refinement_snapshots())
    return QueryResult(regions=RegionSet(regions), stats=stats, query=None)
