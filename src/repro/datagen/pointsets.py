"""Alternative synthetic workloads: free-space random walks.

The road-network workload (:mod:`repro.datagen.trips`) matches the paper's
Chicago setup; the dense-region literature it builds on (Hadjieleftheriou et
al.) also evaluates on free-space synthetic datasets.  This module provides
those: objects placed uniformly or from a Gaussian mixture, moving with
piecewise-constant random velocities, re-reporting at least every ``U``
timestamps and steering back toward the domain when they approach its
border (so the "objects move in an L x L region" assumption holds).

Both workloads implement the same ``initialize`` / ``run_until`` protocol as
:class:`~repro.datagen.trips.TripSimulator`, so any experiment can swap the
movement model with one line.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import DatagenError
from ..core.geometry import Rect
from ..motion.table import ObjectTable

__all__ = ["GaussianCluster", "RandomWalkWorkload", "uniform_workload", "clustered_workload"]


class GaussianCluster:
    """One mixture component: centre, standard deviation, relative weight."""

    __slots__ = ("x", "y", "sigma", "weight")

    def __init__(self, x: float, y: float, sigma: float, weight: float = 1.0) -> None:
        if sigma <= 0 or weight <= 0:
            raise DatagenError("cluster sigma and weight must be positive")
        self.x = x
        self.y = y
        self.sigma = sigma
        self.weight = weight


class RandomWalkWorkload:
    """Free-space moving objects with periodic re-reports."""

    def __init__(
        self,
        domain: Rect,
        n_objects: int,
        update_interval: int,
        clusters: Optional[Sequence[GaussianCluster]] = None,
        max_speed: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_objects < 1:
            raise DatagenError(f"need at least one object, got {n_objects}")
        if update_interval < 1:
            raise DatagenError(f"update interval must be >= 1, got {update_interval}")
        if max_speed <= 0:
            raise DatagenError("max_speed must be positive")
        if domain.is_empty():
            raise DatagenError("domain must have positive area")
        self.domain = domain
        self.n_objects = n_objects
        self.update_interval = update_interval
        self.clusters = list(clusters) if clusters else []
        self.max_speed = max_speed
        self._rng = np.random.default_rng(seed)
        self._events: List[Tuple[int, int]] = []
        self._initialized = False
        self.reports_issued = 0

    # ------------------------------------------------------------------
    def _sample_position(self) -> Tuple[float, float]:
        rng = self._rng
        if not self.clusters:
            return (
                float(rng.uniform(self.domain.x1, self.domain.x2)),
                float(rng.uniform(self.domain.y1, self.domain.y2)),
            )
        weights = np.array([c.weight for c in self.clusters])
        cluster = self.clusters[int(rng.choice(len(self.clusters), p=weights / weights.sum()))]
        x = float(np.clip(rng.normal(cluster.x, cluster.sigma),
                          self.domain.x1, np.nextafter(self.domain.x2, -np.inf)))
        y = float(np.clip(rng.normal(cluster.y, cluster.sigma),
                          self.domain.y1, np.nextafter(self.domain.y2, -np.inf)))
        return x, y

    def _sample_velocity(self, x: float, y: float) -> Tuple[float, float]:
        """A velocity that keeps the object inside over one update period."""
        rng = self._rng
        reach = self.max_speed * self.update_interval
        for _ in range(16):
            speed = float(rng.uniform(0.1, 1.0)) * self.max_speed
            angle = float(rng.uniform(0, 2 * np.pi))
            vx, vy = speed * np.cos(angle), speed * np.sin(angle)
            fx, fy = x + vx * self.update_interval, y + vy * self.update_interval
            if self.domain.contains_point(fx, fy):
                return (float(vx), float(vy))
        # Deep corner case: head for the centre.
        cx, cy = self.domain.center.as_tuple()
        norm = max(np.hypot(cx - x, cy - y), 1e-9)
        speed = 0.5 * self.max_speed
        return (float(speed * (cx - x) / norm), float(speed * (cy - y) / norm))

    # ------------------------------------------------------------------
    def initialize(self, table: ObjectTable) -> None:
        if self._initialized:
            raise DatagenError("workload already initialized")
        t0 = table.tnow
        rng = self._rng
        for oid in range(self.n_objects):
            x, y = self._sample_position()
            vx, vy = self._sample_velocity(x, y)
            table.report(oid, x, y, vx, vy)
            self.reports_issued += 1
            next_t = t0 + 1 + int(rng.integers(self.update_interval))
            heapq.heappush(self._events, (next_t, oid))
        self._initialized = True

    def run_until(self, table: ObjectTable, t_end: int) -> None:
        if not self._initialized:
            raise DatagenError("call initialize() before run_until()")
        if t_end < table.tnow:
            raise DatagenError(f"cannot run backwards to {t_end}")
        for t in range(table.tnow + 1, t_end + 1):
            table.advance_to(t)
            while self._events and self._events[0][0] <= t:
                _, oid = heapq.heappop(self._events)
                motion = table.motion_of(oid)
                x, y = motion.position_at(t)
                x = float(np.clip(x, self.domain.x1,
                                  np.nextafter(self.domain.x2, -np.inf)))
                y = float(np.clip(y, self.domain.y1,
                                  np.nextafter(self.domain.y2, -np.inf)))
                vx, vy = self._sample_velocity(x, y)
                table.report(oid, x, y, vx, vy)
                self.reports_issued += 1
                heapq.heappush(self._events, (t + self.update_interval, oid))

    def step(self, table: ObjectTable) -> None:
        self.run_until(table, table.tnow + 1)


def uniform_workload(
    domain: Rect, n_objects: int, update_interval: int, seed: int = 0, **kwargs
) -> RandomWalkWorkload:
    """Uniformly placed random walkers (no spatial skew)."""
    return RandomWalkWorkload(
        domain, n_objects, update_interval, clusters=None, seed=seed, **kwargs
    )


def clustered_workload(
    domain: Rect,
    n_objects: int,
    update_interval: int,
    n_clusters: int = 5,
    sigma_fraction: float = 0.03,
    seed: int = 0,
    **kwargs,
) -> RandomWalkWorkload:
    """Gaussian-mixture placement: ``n_clusters`` hotspots of random weight."""
    if n_clusters < 1:
        raise DatagenError("need at least one cluster")
    rng = np.random.default_rng(seed)
    clusters = [
        GaussianCluster(
            x=float(rng.uniform(domain.x1 + 0.1 * domain.width,
                                domain.x2 - 0.1 * domain.width)),
            y=float(rng.uniform(domain.y1 + 0.1 * domain.height,
                                domain.y2 - 0.1 * domain.height)),
            sigma=sigma_fraction * domain.width * float(rng.uniform(0.5, 2.0)),
            weight=float(rng.uniform(0.5, 2.0)),
        )
        for _ in range(n_clusters)
    ]
    return RandomWalkWorkload(
        domain, n_objects, update_interval, clusters=clusters, seed=seed + 1, **kwargs
    )
