"""Synthetic metropolitan road network.

The paper drives its evaluation with objects moving on the Chicago
metropolitan road network (generated with the tool of Forlizzi et al.).
That dataset is not redistributable, so we substitute a synthetic network
that reproduces the property the experiments actually depend on: a *skewed*
spatial distribution of moving objects, with heavy concentrations around a
central business district and secondary hubs connected by a street lattice
(see DESIGN.md, Substitutions).

The network is a ``grid_n x grid_n`` lattice of intersections covering the
domain.  Every node carries an attraction *weight* from a mixture of
Gaussian hubs; trips are sampled hub-biased, so traffic concentrates along
corridors between hubs exactly the way arterial roads concentrate traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import DatagenError
from ..core.geometry import Rect

__all__ = ["Hub", "RoadNetwork", "synthetic_metro"]


@dataclass(frozen=True)
class Hub:
    """An attraction centre: position, peak weight and Gaussian radius."""

    x: float
    y: float
    weight: float
    radius: float


class RoadNetwork:
    """A lattice road network with hub-weighted intersections."""

    def __init__(
        self,
        domain: Rect,
        positions: np.ndarray,
        neighbors: List[np.ndarray],
        weights: np.ndarray,
    ) -> None:
        if len(positions) != len(neighbors) or len(positions) != len(weights):
            raise DatagenError("positions, neighbors and weights must align")
        if len(positions) == 0:
            raise DatagenError("a road network needs at least one node")
        self.domain = domain
        self.positions = positions
        self.neighbors = neighbors
        self.weights = weights
        total = float(weights.sum())
        if total <= 0:
            raise DatagenError("node weights must have positive mass")
        self._probabilities = weights / total

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.positions)

    def node_position(self, node: int) -> Tuple[float, float]:
        return (float(self.positions[node, 0]), float(self.positions[node, 1]))

    def edge_length(self, a: int, b: int) -> float:
        return float(np.hypot(*(self.positions[a] - self.positions[b])))

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_node(self, rng: np.random.Generator) -> int:
        """A node drawn proportionally to its attraction weight."""
        return int(rng.choice(self.node_count, p=self._probabilities))

    def sample_nodes(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.choice(self.node_count, size=size, p=self._probabilities)

    def greedy_step(
        self, current: int, destination: int, rng: np.random.Generator
    ) -> int:
        """Next intersection when driving from ``current`` toward ``destination``.

        Chooses the neighbour closest to the destination, with random
        tie-breaking, which routes trips along (Manhattan) shortest paths of
        the lattice — i.e. along corridors.
        """
        if current == destination:
            return current
        nbrs = self.neighbors[current]
        if len(nbrs) == 0:
            return current
        dest = self.positions[destination]
        dists = np.hypot(
            self.positions[nbrs, 0] - dest[0], self.positions[nbrs, 1] - dest[1]
        )
        best = dists.min()
        candidates = nbrs[dists <= best + 1e-9]
        return int(candidates[rng.integers(len(candidates))])

    def nearest_node(self, x: float, y: float) -> int:
        d = np.hypot(self.positions[:, 0] - x, self.positions[:, 1] - y)
        return int(d.argmin())


def synthetic_metro(
    domain: Rect,
    grid_n: int = 40,
    hubs: Optional[Sequence[Hub]] = None,
    base_weight: float = 0.05,
    seed: int = 0,
) -> RoadNetwork:
    """Build the default synthetic metropolitan network.

    Args:
        domain: world rectangle the lattice covers.
        grid_n: intersections per side.
        hubs: attraction centres; defaults to one strong CBD slightly
            off-centre plus four secondary hubs, mimicking a metro area.
        base_weight: weight floor so every node remains reachable as a
            destination (keeps some background traffic everywhere).
        seed: perturbs intersection positions slightly so network edges do
            not align perfectly with histogram cell boundaries.
    """
    if grid_n < 2:
        raise DatagenError(f"grid_n must be >= 2, got {grid_n}")
    rng = np.random.default_rng(seed)
    w, h = domain.width, domain.height
    if hubs is None:
        hubs = [
            Hub(domain.x1 + 0.52 * w, domain.y1 + 0.48 * h, 10.0, 0.06 * w),
            Hub(domain.x1 + 0.25 * w, domain.y1 + 0.70 * h, 4.0, 0.05 * w),
            Hub(domain.x1 + 0.75 * w, domain.y1 + 0.30 * h, 4.0, 0.05 * w),
            Hub(domain.x1 + 0.20 * w, domain.y1 + 0.22 * h, 2.5, 0.04 * w),
            Hub(domain.x1 + 0.80 * w, domain.y1 + 0.78 * h, 2.5, 0.04 * w),
        ]

    # Lattice positions, jittered by a small fraction of the spacing.
    sx = w / grid_n
    sy = h / grid_n
    gx, gy = np.meshgrid(np.arange(grid_n), np.arange(grid_n), indexing="ij")
    px = domain.x1 + (gx + 0.5) * sx
    py = domain.y1 + (gy + 0.5) * sy
    px = px + rng.uniform(-0.15, 0.15, px.shape) * sx
    py = py + rng.uniform(-0.15, 0.15, py.shape) * sy
    positions = np.stack([px.ravel(), py.ravel()], axis=1)

    def node_id(i: int, j: int) -> int:
        return i * grid_n + j

    neighbors: List[np.ndarray] = []
    for i in range(grid_n):
        for j in range(grid_n):
            nbrs = []
            if i > 0:
                nbrs.append(node_id(i - 1, j))
            if i < grid_n - 1:
                nbrs.append(node_id(i + 1, j))
            if j > 0:
                nbrs.append(node_id(i, j - 1))
            if j < grid_n - 1:
                nbrs.append(node_id(i, j + 1))
            neighbors.append(np.asarray(nbrs, dtype=np.int64))

    weights = np.full(len(positions), base_weight)
    for hub in hubs:
        d2 = (positions[:, 0] - hub.x) ** 2 + (positions[:, 1] - hub.y) ** 2
        weights = weights + hub.weight * np.exp(-d2 / (2.0 * hub.radius**2))
    return RoadNetwork(domain, positions, neighbors, weights)
