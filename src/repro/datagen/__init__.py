"""Workload generation: synthetic metro road network and trip simulation."""

from .network import Hub, RoadNetwork, synthetic_metro
from .pointsets import (
    GaussianCluster,
    RandomWalkWorkload,
    clustered_workload,
    uniform_workload,
)
from .trips import SpeedModel, TripSimulator

__all__ = [
    "Hub",
    "RoadNetwork",
    "synthetic_metro",
    "SpeedModel",
    "TripSimulator",
    "GaussianCluster",
    "RandomWalkWorkload",
    "uniform_workload",
    "clustered_workload",
]
