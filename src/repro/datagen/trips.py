"""Network-constrained trip simulation.

Objects drive along lattice edges toward hub-biased destinations.  Each
object reports ``(x, y, vx, vy)`` to the :class:`~repro.motion.table.
ObjectTable` whenever its heading changes (it reaches an intersection) or
its maximum update interval ``U`` expires — so the linear prediction every
maintained structure uses stays accurate between reports, exactly the
regime the paper's update protocol assumes.

Speeds are drawn per-trip-leg from a right-skewed distribution clipped to
``[v_min, v_max]`` (the paper: 25-100 mph, skewed), expressed in
miles-per-timestamp with a configurable minutes-per-timestamp scale.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import DatagenError
from ..motion.table import ObjectTable
from .network import RoadNetwork

__all__ = ["SpeedModel", "TripSimulator"]


@dataclass(frozen=True)
class SpeedModel:
    """Right-skewed speed sampling (paper: 25-100 mph, skewed)."""

    v_min_mph: float = 25.0
    v_max_mph: float = 100.0
    minutes_per_timestamp: float = 1.0
    beta_a: float = 1.6
    beta_b: float = 4.0

    def __post_init__(self) -> None:
        if not (0 < self.v_min_mph < self.v_max_mph):
            raise DatagenError("need 0 < v_min < v_max")
        if self.minutes_per_timestamp <= 0:
            raise DatagenError("minutes_per_timestamp must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        """Speed in miles per timestamp."""
        frac = rng.beta(self.beta_a, self.beta_b)
        mph = self.v_min_mph + frac * (self.v_max_mph - self.v_min_mph)
        return mph * self.minutes_per_timestamp / 60.0


@dataclass
class _ObjectState:
    """Driving state of one simulated object."""

    at_node: int  # intersection the current leg departs from
    to_node: int  # intersection the current leg heads to
    destination: int
    speed: float  # miles per timestamp
    depart_time: float  # (possibly fractional) time the leg started
    x: float  # position at depart_time
    y: float


class TripSimulator:
    """Event-driven simulation of ``n`` objects on a road network."""

    def __init__(
        self,
        network: RoadNetwork,
        n_objects: int,
        update_interval: int,
        speed_model: Optional[SpeedModel] = None,
        seed: int = 0,
    ) -> None:
        if n_objects < 1:
            raise DatagenError(f"need at least one object, got {n_objects}")
        if update_interval < 1:
            raise DatagenError(f"update interval must be >= 1, got {update_interval}")
        self.network = network
        self.n_objects = n_objects
        self.update_interval = update_interval
        self.speed_model = speed_model or SpeedModel()
        self._rng = np.random.default_rng(seed)
        self._states: Dict[int, _ObjectState] = {}
        self._events: List[Tuple[int, int]] = []  # (report_time, oid) min-heap
        self._initialized = False
        self.reports_issued = 0

    # ------------------------------------------------------------------
    # simulation control
    # ------------------------------------------------------------------
    def initialize(self, table: ObjectTable) -> None:
        """Place every object and issue its first report at ``table.tnow``.

        Initial report times are staggered so steady-state traffic issues
        roughly ``n / U`` reports per timestamp, as in the paper's setup.
        """
        if self._initialized:
            raise DatagenError("simulator already initialized")
        t0 = table.tnow
        for oid in range(self.n_objects):
            start = self.network.sample_node(self._rng)
            state = self._new_leg(start, t0)
            self._states[oid] = state
            self._report(table, oid, t0)
        self._initialized = True

    def run_until(self, table: ObjectTable, t_end: int) -> None:
        """Advance the simulation (and the table clock) to ``t_end``."""
        if not self._initialized:
            raise DatagenError("call initialize() before run_until()")
        if t_end < table.tnow:
            raise DatagenError(f"cannot run backwards to {t_end}")
        for t in range(table.tnow + 1, t_end + 1):
            table.advance_to(t)
            while self._events and self._events[0][0] <= t:
                _, oid = heapq.heappop(self._events)
                self._advance_object(oid, t)
                self._report(table, oid, t)

    def step(self, table: ObjectTable) -> None:
        """Advance by one timestamp."""
        self.run_until(table, table.tnow + 1)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _new_leg(self, at_node: int, t: float, destination: int = -1) -> _ObjectState:
        """Start a fresh leg from ``at_node`` at time ``t``."""
        rng = self._rng
        if destination < 0 or destination == at_node:
            destination = self.network.sample_node(rng)
            while destination == at_node:
                destination = self.network.sample_node(rng)
        to_node = self.network.greedy_step(at_node, destination, rng)
        if to_node == at_node:  # isolated node: park the object
            to_node = at_node
        x, y = self.network.node_position(at_node)
        return _ObjectState(
            at_node=at_node,
            to_node=to_node,
            destination=destination,
            speed=self.speed_model.sample(rng),
            depart_time=t,
            x=x,
            y=y,
        )

    def _leg_geometry(self, state: _ObjectState) -> Tuple[float, float, float, float]:
        """(ux, uy, length, arrival_time) of the current leg."""
        tx, ty = self.network.node_position(state.to_node)
        dx, dy = tx - state.x, ty - state.y
        length = float(np.hypot(dx, dy))
        if length <= 0 or state.speed <= 0:
            return (0.0, 0.0, 0.0, float("inf"))
        ux, uy = dx / length, dy / length
        arrival = state.depart_time + length / state.speed
        return (ux, uy, length, arrival)

    def _advance_object(self, oid: int, t: int) -> None:
        """Move the object's logical state forward to time ``t``."""
        state = self._states[oid]
        while True:
            ux, uy, length, arrival = self._leg_geometry(state)
            if arrival > t:
                break
            # Arrived at to_node at (fractional) time `arrival`; turn.
            node = state.to_node
            if node == state.destination:
                state = self._new_leg(node, arrival)
            else:
                nxt = self.network.greedy_step(node, state.destination, self._rng)
                x, y = self.network.node_position(node)
                state = _ObjectState(
                    at_node=node,
                    to_node=nxt,
                    destination=state.destination,
                    speed=state.speed,
                    depart_time=arrival,
                    x=x,
                    y=y,
                )
            self._states[oid] = state
            if state.to_node == state.at_node:
                break

    def _report(self, table: ObjectTable, oid: int, t: int) -> None:
        """Issue a position report at integer time ``t`` and schedule the next."""
        state = self._states[oid]
        ux, uy, length, arrival = self._leg_geometry(state)
        dt = t - state.depart_time
        x = state.x + ux * state.speed * dt
        y = state.y + uy * state.speed * dt
        vx = ux * state.speed
        vy = uy * state.speed
        table.report(oid, x, y, vx, vy)
        self.reports_issued += 1
        # Next report: when the heading will change (next intersection),
        # capped by the maximum update interval U.
        if arrival == float("inf"):
            next_t = t + self.update_interval
        else:
            next_t = min(int(np.ceil(arrival)), t + self.update_interval)
            if next_t <= t:
                next_t = t + 1
        heapq.heappush(self._events, (next_t, oid))
