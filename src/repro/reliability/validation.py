"""Ingestion hardening: report validation and the dead-letter queue.

Every location report crosses :meth:`~repro.core.system.PDRServer.report`
exactly once, so that boundary is where malformed input must die.  A
report that fails validation is *recorded*, not raised: it lands in a
bounded :class:`DeadLetterQueue` with a reason counter, and none of the
maintained structures (object table, TPR-tree, histograms, Chebyshev
surfaces) see it — they either all apply an update or none of them do.

Reject reasons
--------------
``nonfinite``      a coordinate or velocity is NaN or infinite
``out_of_bounds``  the reported position lies outside the domain
``over_speed``     the reported speed exceeds ``policy.max_speed``
``bad_oid``        the object id is negative or not integral
``stale``          the report carries an explicit timestamp < ``t_now``
``future``         the report carries an explicit timestamp > ``t_now``
``duplicate``      the object already reported this tick (strict mode)
``unknown_oid``    a retire names an object the server does not know
"""

from __future__ import annotations

import math
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Iterator, Optional, Set, Tuple

from ..core.errors import InvalidParameterError
from ..core.geometry import Rect
from .faults import FaultInjector

__all__ = [
    "REJECT_REASONS",
    "RejectedReport",
    "DeadLetterQueue",
    "ReportPolicy",
    "ReportValidator",
    "ResourceConfig",
    "ReliabilityConfig",
]

REJECT_REASONS = (
    "nonfinite",
    "out_of_bounds",
    "over_speed",
    "bad_oid",
    "stale",
    "future",
    "duplicate",
    "unknown_oid",
)


@dataclass(frozen=True)
class RejectedReport:
    """One report that failed boundary validation, with its verdict."""

    oid: object
    x: float
    y: float
    vx: float
    vy: float
    t: Optional[int]
    tnow: int
    reason: str
    detail: str


class DeadLetterQueue:
    """A bounded FIFO of rejects plus unbounded per-reason counters.

    The queue keeps only the most recent ``capacity`` rejects (old entries
    are dropped), but ``counts`` and ``total`` keep counting forever so
    operators can alarm on reject *rates* even after the queue wrapped.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise InvalidParameterError(f"dead-letter capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "deque[RejectedReport]" = deque(maxlen=capacity)
        self.counts: Counter = Counter()
        self.total = 0

    def push(self, reject: RejectedReport) -> None:
        self._entries.append(reject)
        self.counts[reject.reason] += 1
        self.total += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RejectedReport]:
        return iter(self._entries)

    @property
    def latest(self) -> Optional[RejectedReport]:
        return self._entries[-1] if self._entries else None


@dataclass(frozen=True)
class ReportPolicy:
    """What the ingestion boundary rejects.

    ``max_speed`` is in domain units per timestamp; ``None`` disables the
    check.  ``reject_duplicates`` rejects a second report for the same
    object id within one tick — off by default because the update
    protocol (Section 5.1) legitimately treats a re-report as
    delete + insert, and the paper's workloads re-report freely.
    """

    reject_nonfinite: bool = True
    reject_out_of_bounds: bool = True
    max_speed: Optional[float] = None
    reject_duplicates: bool = False


class ReportValidator:
    """Applies a :class:`ReportPolicy` at the ``report()`` boundary."""

    def __init__(self, policy: ReportPolicy, domain: Rect) -> None:
        self.policy = policy
        self.domain = domain

    def validate(
        self,
        oid: object,
        x: float,
        y: float,
        vx: float,
        vy: float,
        t: Optional[int],
        tnow: int,
        seen_this_tick: Set[int],
    ) -> Optional[Tuple[str, str]]:
        """Return ``(reason, detail)`` for a reject, or ``None`` to accept."""
        policy = self.policy
        if not isinstance(oid, int) or isinstance(oid, bool) or oid < 0:
            return ("bad_oid", f"object id must be a non-negative integer, got {oid!r}")
        if policy.reject_nonfinite and not all(
            math.isfinite(v) for v in (x, y, vx, vy)
        ):
            return ("nonfinite", f"non-finite report ({x}, {y}, {vx}, {vy})")
        if t is not None:
            if t < tnow:
                return ("stale", f"report timestamped {t} behind server clock {tnow}")
            if t > tnow:
                return ("future", f"report timestamped {t} ahead of server clock {tnow}")
        if policy.reject_out_of_bounds and not self.domain.contains_point(x, y):
            return (
                "out_of_bounds",
                f"position ({x}, {y}) outside domain {self.domain.as_tuple()}",
            )
        if policy.max_speed is not None:
            speed = math.hypot(vx, vy)
            if speed > policy.max_speed:
                return (
                    "over_speed",
                    f"speed {speed:.3f} exceeds max_speed {policy.max_speed}",
                )
        if policy.reject_duplicates and oid in seen_this_tick:
            return ("duplicate", f"object {oid} already reported at tick {tnow}")
        return None


@dataclass
class ResourceConfig:
    """Resource-exhaustion knobs (disk budget, memory watermark).

    ``soft_limit_bytes``: state-dir size at which the server checkpoints
    and prunes retention-covered WAL segments.  ``hard_limit_bytes``:
    size at which it flips to read-only degraded mode (queries keep
    serving, writes are refused with ``retry_after``).  Either may be
    ``None`` to disable that watermark.  ``memory_limit_bytes`` bounds
    the reclaimable query-path memory (prefix/block-sum caches plus
    slow-query exemplars); crossing it sheds those caches.
    ``readonly_retry_after`` is the hint carried on refused writes.

    The object is deliberately mutable and *shared* (never copied by
    ``dataclasses.replace`` of the enclosing ``ReliabilityConfig``), so
    an operator — or the resource chaos scheduler — resizing the budget
    is seen by every incarnation of the manager, across failovers.
    """

    soft_limit_bytes: Optional[int] = None
    hard_limit_bytes: Optional[int] = None
    memory_limit_bytes: Optional[int] = None
    readonly_retry_after: float = 0.5

    def to_dict(self) -> dict:
        return {
            "soft_limit_bytes": self.soft_limit_bytes,
            "hard_limit_bytes": self.hard_limit_bytes,
            "memory_limit_bytes": self.memory_limit_bytes,
            "readonly_retry_after": self.readonly_retry_after,
        }

    @classmethod
    def from_dict(cls, payload: Optional[dict]) -> Optional["ResourceConfig"]:
        if not payload:
            return None
        return cls(
            soft_limit_bytes=(
                None if payload.get("soft_limit_bytes") is None
                else int(payload["soft_limit_bytes"])
            ),
            hard_limit_bytes=(
                None if payload.get("hard_limit_bytes") is None
                else int(payload["hard_limit_bytes"])
            ),
            memory_limit_bytes=(
                None if payload.get("memory_limit_bytes") is None
                else int(payload["memory_limit_bytes"])
            ),
            readonly_retry_after=float(payload.get("readonly_retry_after", 0.5)),
        )


@dataclass
class ReliabilityConfig:
    """Everything the server's reliability layer can be tuned with.

    ``state_dir`` enables durability: an append-only update log (WAL) plus
    a full checkpoint every ``checkpoint_interval`` ticks, from which
    :meth:`PDRServer.recover` reconstructs the server after a crash.
    ``faults`` attaches a :class:`FaultInjector`, whose (virtual) clock
    then also drives query deadlines and retry backoff.  ``resources``
    attaches disk/memory budgets (see :class:`ResourceConfig` and
    :mod:`repro.reliability.resources`).
    """

    policy: ReportPolicy = field(default_factory=ReportPolicy)
    dead_letter_capacity: int = 1024
    retries: int = 2
    backoff_seconds: float = 0.05
    state_dir: Optional[str] = None
    checkpoint_interval: int = 0  # ticks between checkpoints; 0 = WAL only
    keep_checkpoints: int = 2
    fsync: bool = True
    faults: Optional[FaultInjector] = None
    resources: Optional[ResourceConfig] = None
