"""Replicated PDR serving: WAL shipping, failover, and fencing.

A :class:`ReplicationGroup` turns one durable
:class:`~repro.core.system.PDRServer` (the primary, which owns the WAL)
plus N in-memory replicas into a serving tier:

* **WAL shipping.**  Every record the primary durably appends is handed
  to the group (via the manager's ``on_append`` hook) and queued on one
  :class:`ReplicationLink` per replica.  Links are an in-process stand-in
  for the network and expose its failure modes as deterministic knobs —
  ``lag_records`` (delivery stays N records behind), ``partitioned``
  (nothing is delivered), :meth:`~ReplicationLink.drop_next` (records are
  lost) and :meth:`~ReplicationLink.reorder_next` (records arrive out of
  order) — plus the ``replication.send`` / ``replication.deliver`` fault
  sites for the :class:`~repro.reliability.faults.FaultInjector`.
* **In-order apply.**  A :class:`Replica` holds out-of-order arrivals in
  a reorder buffer and applies records strictly by LSN through the same
  ``apply_logged_record`` path recovery uses, so a caught-up replica is
  *bit-exact* with the primary (identical numpy operations in identical
  order) — the same guarantee crash recovery gives.
* **Catch-up.**  A replica that lost records (drop, partition, joining
  late) heals from the durable log: :func:`records_from_lsn` replays the
  tail, and when the needed segments were pruned it installs the newest
  checkpoint image first (:func:`load_latest_checkpoint`) — exactly the
  two artefacts recovery itself uses.
* **Failover.**  A :class:`FailoverCoordinator` tracks the primary's
  heartbeats under a lease; when the lease lapses the group promotes the
  most-caught-up replica — after it has replayed the durable WAL to the
  end (zero acknowledged-write loss: an acknowledged write is by
  definition in the WAL) and passed the structural audit — bumps the
  fencing ``epoch``, demotes the old primary (its writes now raise
  :class:`~repro.core.errors.NotPrimaryError`) and re-points the router.
  Replicas reject shipped records from a stale epoch, so a resurrected
  old primary cannot fork the group.
* **Anti-entropy.**  Replicas retain their applied records (bounded
  history); :meth:`ReplicationGroup.anti_entropy` runs the integrity
  scrubber (:mod:`.integrity`) over the durable state directory,
  quarantines anything failing its checksum, and re-fetches the damaged
  LSN range — or a whole checkpoint image — from the most-caught-up
  replica, so bit rot on the primary's disk heals from the group.
* **Reads.**  Queries are routed to replicas within the configured
  staleness bound (LSN lag), round-robin, each behind a circuit breaker;
  the primary serves reads when no replica qualifies.  An optional
  :class:`~repro.reliability.admission.AdmissionController` shedding
  ladder sits in front (see :mod:`.admission`).

Everything is synchronous and deterministic: the owner calls
:meth:`ReplicationGroup.pump` (implicitly on every write) to move
records across links, and time comes from the group's injectable clock.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.errors import (
    FailoverError,
    InvalidParameterError,
    QueryError,
    RecoveryError,
    ReproError,
    StalenessExceededError,
    StorageError,
    TransientFaultError,
)
from ..telemetry import TELEMETRY
from ..telemetry import instruments as tm
from ..telemetry.journal import JOURNAL
from .admission import AdmissionConfig, AdmissionController, CircuitBreaker
from .faults import FaultInjector, InjectedCrashError
from .validation import ReliabilityConfig

__all__ = [
    "ReplicationConfig",
    "ShippedRecord",
    "ReplicationLink",
    "Replica",
    "FailoverCoordinator",
    "ReplicationGroup",
]


@dataclass
class ReplicationConfig:
    """Group-level knobs.

    ``staleness_bound`` is the maximum LSN lag at which a replica may
    still serve reads (0 = only fully caught-up replicas).
    ``lease_timeout`` is how long the coordinator waits for a heartbeat
    before declaring the primary dead and failing over.
    ``repair_history`` is how many applied records each replica retains
    for anti-entropy repair of a corrupted primary log (the damaged LSN
    range is re-fetched from this history; beyond it, repair falls back
    to a checkpoint image of the replica's state).
    """

    staleness_bound: int = 0
    lease_timeout: float = 3.0
    breaker_threshold: int = 3
    breaker_probation_seconds: float = 5.0
    repair_history: int = 65536


@dataclass(frozen=True)
class ShippedRecord:
    """One WAL record on the wire, stamped with the sender's epoch."""

    epoch: int
    record: dict

    @property
    def lsn(self) -> int:
        return int(self.record["lsn"])


class ReplicationLink:
    """The in-process 'network' between the primary and one replica."""

    def __init__(self, name: str, faults: Optional[FaultInjector] = None) -> None:
        self.name = name
        self.faults = faults
        self.partitioned = False
        self.lag_records = 0
        self._queue: List[ShippedRecord] = []
        self._drop_next = 0
        self._reorder_next = 0
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    def send(self, shipped: ShippedRecord) -> None:
        """Queue one record for delivery; may lose it (drop faults)."""
        self.sent += 1
        if self.faults is not None:
            try:
                self.faults.hit("replication.send")
            except TransientFaultError:
                # the network ate the record; catch-up will heal it
                self.dropped += 1
                return
        if self._drop_next > 0:
            self._drop_next -= 1
            self.dropped += 1
            return
        self._queue.append(shipped)

    def drop_next(self, n: int = 1) -> None:
        """Lose the next ``n`` sends (simulated packet loss)."""
        self._drop_next += n

    def reorder_next(self, n: int = 2) -> None:
        """Deliver the next ``n`` queued records in reversed order."""
        self._reorder_next = max(self._reorder_next, n)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def deliverable(self) -> List[ShippedRecord]:
        """Records the link releases this pump (respecting lag/partition)."""
        if self.partitioned:
            return []
        if self.faults is not None:
            try:
                self.faults.hit("replication.deliver")
            except TransientFaultError:
                return []  # delivery deferred; records stay queued
        count = len(self._queue) - self.lag_records
        if count <= 0:
            return []
        batch = self._queue[:count]
        del self._queue[:count]
        if self._reorder_next > 1:
            flip = min(self._reorder_next, len(batch))
            batch[:flip] = reversed(batch[:flip])
            self._reorder_next = 0
        self.delivered += len(batch)
        return batch


class Replica:
    """One replica server plus its apply cursor and reorder buffer.

    Every applied record is also retained (up to ``history_limit``
    entries, oldest evicted first) in :attr:`history` — the record cache
    that anti-entropy repair re-fetches a corrupted primary-log range
    from (:meth:`records_in_range`).
    """

    def __init__(
        self, name: str, server, link: ReplicationLink, history_limit: int = 65536
    ) -> None:
        self.name = name
        self.server = server
        self.link = link
        self.applied_lsn = 0
        self.epoch = 0
        self.history_limit = max(0, int(history_limit))
        self.history: "OrderedDict[int, dict]" = OrderedDict()
        self._pending: Dict[int, dict] = {}
        self.fenced_rejects = 0

    def _remember(self, lsn: int, record: dict) -> None:
        self.history[lsn] = record
        while len(self.history) > self.history_limit:
            self.history.popitem(last=False)

    def records_in_range(self, lo: int, hi: int) -> Optional[List[dict]]:
        """The applied records with LSNs in ``[lo, hi]``, or ``None`` if
        the retained history does not cover the whole range (the repair
        caller must then fall back to a checkpoint image)."""
        if lo > hi:
            return []
        if any(lsn not in self.history for lsn in range(lo, hi + 1)):
            return None
        return [self.history[lsn] for lsn in range(lo, hi + 1)]

    def offer(self, shipped: ShippedRecord) -> None:
        """Accept one shipped record into the reorder buffer.

        Records stamped with a stale epoch are rejected outright — this
        is the fencing that stops a deposed primary from forking the
        replica, no matter what LSNs it claims.
        """
        if shipped.epoch < self.epoch:
            self.fenced_rejects += 1
            tm.FENCED_REJECTS.inc()
            return
        self.epoch = shipped.epoch
        if shipped.lsn > self.applied_lsn:
            self._pending[shipped.lsn] = shipped.record

    def drain(self) -> int:
        """Apply buffered records strictly in LSN order; returns count."""
        applied = 0
        t0 = time.perf_counter()
        while self.applied_lsn + 1 in self._pending:
            record = self._pending.pop(self.applied_lsn + 1)
            self.server.apply_logged_record(record)
            self.applied_lsn += 1
            self._remember(self.applied_lsn, record)
            applied += 1
        if applied:
            tm.REPLICATION_APPLIED.labels(self.name).inc(applied)
            tm.REPLICATION_APPLY_SECONDS.observe(time.perf_counter() - t0)
        return applied

    def lag(self, acked_lsn: int) -> int:
        """How many acknowledged records this replica has not applied."""
        return max(0, acked_lsn - self.applied_lsn)

    @property
    def stalled(self) -> bool:
        """Buffered records exist that cannot apply (a gap before them)."""
        return bool(self._pending) and (self.applied_lsn + 1) not in self._pending

    # ------------------------------------------------------------------
    # catch-up from the durable log
    # ------------------------------------------------------------------
    def catch_up(self, state_dir: str, prefer_image: bool = False) -> int:
        """Close any gap from the durable WAL in ``state_dir``.

        Replays :func:`records_from_lsn`; when the tail this replica
        needs was pruned (or ``prefer_image`` asks for a fast bootstrap)
        the newest checkpoint image is installed first and the remaining
        tail replayed on top.  Returns the number of records applied.
        """
        from .recovery import records_from_lsn

        self.drain()
        if prefer_image:
            # min_advance=0: a bootstrapping replica installs even an image
            # at its own cursor — a primary restored from a snapshot takes
            # its first checkpoint at LSN 0, and that image carries state
            # (the snapshot contents) that predates the WAL entirely
            self._install_image_if_newer(state_dir, min_advance=0)
        try:
            records = list(records_from_lsn(state_dir, self.applied_lsn))
        except RecoveryError:
            # the log no longer reaches back to our cursor: bootstrap
            # from the newest checkpoint image, then replay the rest
            if not self._install_image_if_newer(state_dir):
                raise
            records = list(records_from_lsn(state_dir, self.applied_lsn))
        applied = 0
        for record in records:
            self.server.apply_logged_record(record)
            self.applied_lsn = int(record["lsn"])
            self._remember(self.applied_lsn, record)
            applied += 1
        self._pending = {n: r for n, r in self._pending.items() if n > self.applied_lsn}
        self.epoch = max(self.epoch, self.server.epoch)
        return applied

    def _install_image_if_newer(self, state_dir: str, min_advance: int = 1) -> bool:
        """Replace this replica's state with the newest checkpoint image."""
        from .recovery import load_latest_checkpoint
        from ..core.system import PDRServer
        from ..storage.snapshot import restore_server_state

        loaded = load_latest_checkpoint(state_dir)
        if loaded is None:
            return False
        state, sidecar = loaded
        image_lsn = int(sidecar["lsn"])
        if image_lsn < self.applied_lsn + min_advance:
            return False  # our own state is at least as new
        fresh = PDRServer(
            state.config,
            expected_objects=self.server.expected_objects,
            tnow=state.tnow,
            role="replica",
            reliability=ReliabilityConfig(faults=self.server.faults),
        )
        restore_server_state(fresh, state)
        fresh.epoch = self.server.epoch
        self.server = fresh
        self.applied_lsn = image_lsn
        return True


class FailoverCoordinator:
    """Heartbeat bookkeeping under a lease, on an injectable clock."""

    def __init__(self, clock, lease_timeout: float) -> None:
        if lease_timeout <= 0:
            raise InvalidParameterError(
                f"lease timeout must be positive, got {lease_timeout}"
            )
        self.clock = clock
        self.lease_timeout = float(lease_timeout)
        self.last_heartbeat = clock.now()

    def note_heartbeat(self) -> None:
        self.last_heartbeat = self.clock.now()

    @property
    def lease_expired(self) -> bool:
        return self.clock.now() - self.last_heartbeat > self.lease_timeout


class ReplicationGroup:
    """One primary plus N replicas behind a staleness-aware read router."""

    def __init__(
        self,
        primary,
        n_replicas: int = 2,
        config: Optional[ReplicationConfig] = None,
        admission: Optional[AdmissionConfig] = None,
    ) -> None:
        if primary._manager is None:
            raise InvalidParameterError(
                "replication requires a durable primary (ReliabilityConfig "
                "with a state_dir): acknowledged writes live in its WAL"
            )
        if n_replicas < 0:
            raise InvalidParameterError(f"n_replicas must be >= 0, got {n_replicas}")
        self.replication = config or ReplicationConfig()
        self.primary = primary
        self.primary_name = "primary"
        self.primary_alive = True
        self.faults = primary.faults
        self.clock = primary.clock
        self.epoch = max(1, primary.epoch)
        primary.epoch = self.epoch
        self.state_dir = primary.reliability.state_dir
        self._tnow0 = self._read_tnow0(self.state_dir)
        self._acked_lsn = primary.wal_lsn or 0
        self.replicas: List[Replica] = []
        self._rr = 0
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.admission = (
            AdmissionController(admission, self.clock) if admission is not None else None
        )
        self.coordinator = FailoverCoordinator(self.clock, self.replication.lease_timeout)
        tm.REPLICATION_EPOCH.set(self.epoch)
        primary._manager.on_append.append(self._ship)
        self._wire_resources(primary._manager)
        for i in range(n_replicas):
            self.add_replica(f"replica-{i}")

    def _wire_resources(self, manager) -> None:
        """Point the manager's retention floor at the live replica set.

        WAL retention may never prune a record a live replica has not
        applied — re-wired onto every manager incarnation (initial,
        promoted, anti-entropy resumed), all of which share the group's
        replica list through this closure.
        """
        if manager.resources is not None:
            manager.resources.replica_lsns = lambda: [
                r.applied_lsn for r in self.replicas
            ]

    @staticmethod
    def _read_tnow0(state_dir: str) -> int:
        try:
            with open(os.path.join(state_dir, "server-config.json"), encoding="utf-8") as fh:
                return int(json.load(fh).get("tnow0", 0))
        except (OSError, ValueError, json.JSONDecodeError):
            return 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_replica(self, name: Optional[str] = None) -> Replica:
        """Attach a new replica and bootstrap it from the durable state.

        A replica joining an aged group catches up through the newest
        checkpoint image plus the WAL tail — it never needs the records
        that pruning already dropped.
        """
        from ..core.system import PDRServer

        name = name or f"replica-{len(self.replicas)}"
        if any(r.name == name for r in self.replicas):
            raise InvalidParameterError(f"replica {name!r} already exists")
        server = PDRServer(
            self.primary.config,
            expected_objects=self.primary.expected_objects,
            tnow=self._tnow0,
            role="replica",
            reliability=ReliabilityConfig(faults=self.faults),
        )
        replica = Replica(
            name,
            server,
            ReplicationLink(name, faults=self.faults),
            history_limit=self.replication.repair_history,
        )
        replica.epoch = self.epoch
        replica.catch_up(self.state_dir, prefer_image=True)
        self.replicas.append(replica)
        return replica

    def replica(self, name: str) -> Replica:
        for replica in self.replicas:
            if replica.name == name:
                return replica
        raise InvalidParameterError(f"no replica named {name!r}")

    def _breaker(self, name: str) -> CircuitBreaker:
        if name not in self._breakers:
            self._breakers[name] = CircuitBreaker(
                self.clock,
                threshold=self.replication.breaker_threshold,
                probation_seconds=self.replication.breaker_probation_seconds,
            )
        return self._breakers[name]

    # ------------------------------------------------------------------
    # write path (primary only)
    # ------------------------------------------------------------------
    def _ship(self, record: dict) -> None:
        self._acked_lsn = int(record["lsn"])
        shipped = ShippedRecord(self.epoch, dict(record))
        for replica in self.replicas:
            replica.link.send(shipped)

    def report(self, oid, x, y, vx, vy, t=None):
        """Apply one location report through the primary and ship it."""
        out = self.primary.report(oid, x, y, vx, vy, t)
        self.coordinator.note_heartbeat()
        self.pump()
        return out

    def report_batch(self, reports):
        """Apply one wave of reports through the primary and ship it.

        The wave is group-committed on the primary (one fsync) and every
        logged record is shipped in LSN order, so replicas converge to
        the same bit-exact state the sequential path would produce.
        """
        out = self.primary.report_batch(reports)
        self.coordinator.note_heartbeat()
        self.pump()
        return out

    def retire(self, oid) -> bool:
        out = self.primary.retire(oid)
        self.coordinator.note_heartbeat()
        self.pump()
        return out

    def advance_to(self, tnow: int) -> None:
        self.primary.advance_to(tnow)
        self.coordinator.note_heartbeat()
        self.pump()

    def pump(self) -> None:
        """Move queued records across every link and apply them in order."""
        for replica in self.replicas:
            for shipped in replica.link.deliverable():
                replica.offer(shipped)
            replica.drain()
            tm.REPLICATION_LAG.labels(replica.name).set(
                replica.lag(self._acked_lsn)
            )

    def catch_up_replicas(self) -> None:
        """Heal every lagging/stalled replica from the durable WAL."""
        self.pump()
        for replica in self.replicas:
            if replica.stalled or replica.lag(self._acked_lsn) > 0:
                replica.catch_up(self.state_dir)
            if replica.lag(self._acked_lsn) > 0:
                # the log alone could not close the gap — the tail this
                # replica was owed sits behind a pruned horizon whose
                # replacement segment is still empty, so records_from_lsn
                # had nothing to trip over.  Bootstrap from the newest
                # checkpoint image and replay whatever tail remains.
                replica.catch_up(self.state_dir, prefer_image=True)

    # ------------------------------------------------------------------
    # anti-entropy
    # ------------------------------------------------------------------
    def anti_entropy(self):
        """Verify the durable state directory and repair it from a replica.

        The integrity scrubber (:mod:`.integrity`) classifies every
        artifact; if anything is damaged — a bit-flipped WAL record, a
        checkpoint failing its manifest digest, a stray temp file — the
        damage is quarantined and the missing LSN range is re-fetched
        from the most-caught-up replica's retained history (falling back
        to a checkpoint image of its state).  The acting primary's WAL
        handle is closed around the repair and durably re-attached after
        it, so the group keeps serving.  Returns the final
        :class:`~repro.reliability.integrity.IntegrityReport` (clean, or
        :class:`~repro.core.errors.RepairError` is raised).
        """
        from .integrity import repair_state_dir, verify_state_dir
        from .recovery import ReliabilityManager

        self.pump()
        report = verify_state_dir(self.state_dir)
        if report.clean and not report.stray_tmp():
            return report
        source = max(self.replicas, key=lambda r: r.applied_lsn, default=None)
        was_alive = self.primary_alive
        if was_alive:
            self.primary._manager.close()
        try:
            report = repair_state_dir(
                self.state_dir,
                source,
                target_lsn=self._acked_lsn,
                fsync=self.primary.reliability.fsync,
            )
        finally:
            if was_alive:
                manager = ReliabilityManager.resume(
                    self.state_dir, self.primary.reliability, lsn=self._acked_lsn
                )
                manager.on_append.append(self._ship)
                self._wire_resources(manager)
                self.primary.attach_manager(manager)
        return report

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    @property
    def acked_lsn(self) -> int:
        """LSN of the last durably acknowledged write."""
        return self._acked_lsn

    def mark_primary_dead(self) -> None:
        """Record that the primary process is gone (releases its WAL)."""
        if not self.primary_alive:
            return
        self.primary_alive = False
        try:
            self.primary._manager.close()
        except OSError:  # pragma: no cover - closing is best-effort
            pass

    def maybe_failover(self):
        """Fail over iff the primary's lease has expired; else ``None``."""
        if self.primary_alive and not self.coordinator.lease_expired:
            return None
        return self.failover()

    def failover(self):
        """Promote the most-caught-up auditable replica; fence the rest.

        Candidates are tried in descending applied-LSN order.  The winner
        must replay the durable WAL to its very end — acknowledged writes
        are exactly the WAL's contents, so this is what "zero
        acknowledged-write loss" means operationally — and pass the
        structural audit.  Returns the promoted server.
        """
        self.mark_primary_dead()
        for replica in sorted(self.replicas, key=lambda r: -r.applied_lsn):
            replica.drain()
            try:
                replica.catch_up(self.state_dir)
            except (RecoveryError, StorageError):
                continue
            if replica.server.audit(raise_on_violation=False):
                continue
            return self._promote(replica)
        raise FailoverError(
            "no replica could catch up to the durable WAL and pass the audit"
        )

    def _promote(self, replica: Replica):
        from .recovery import ReliabilityManager

        new_epoch = self.epoch + 1
        rc = dataclasses.replace(
            self.primary.reliability, state_dir=self.state_dir, faults=self.faults
        )
        manager = ReliabilityManager.resume(self.state_dir, rc, lsn=replica.applied_lsn)
        manager.on_append.append(self._ship)
        self._wire_resources(manager)
        old = self.primary
        self.epoch = new_epoch  # _ship must stamp the new epoch below
        self.replicas.remove(replica)
        self.primary = replica.server
        self.primary_name = replica.name
        self.primary_alive = True
        self.primary.reliability = rc
        self.primary.attach_manager(manager)
        self.primary.promote(new_epoch)  # logs the epoch record -> ships it
        old.demote()
        tm.FAILOVERS.inc()
        tm.REPLICATION_EPOCH.set(new_epoch)
        JOURNAL.emit(
            "failover",
            new_epoch=new_epoch,
            promoted=replica.name,
            applied_lsn=replica.applied_lsn,
        )
        JOURNAL.update_context(epoch=new_epoch)
        self.coordinator.note_heartbeat()
        self.pump()
        return self.primary

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    @property
    def tnow(self) -> int:
        return self.primary.tnow

    @property
    def config(self):
        """The system configuration (the group quacks like a server)."""
        return self.primary.config

    @property
    def table(self):
        """The acting primary's object table (for listener attachment)."""
        return self.primary.table

    def _read_backends(self) -> List:
        """(name, server) candidates: fresh replicas round-robin, then primary."""
        fresh = [
            r for r in self.replicas
            if r.lag(self._acked_lsn) <= self.replication.staleness_bound
        ]
        if fresh:
            self._rr = (self._rr + 1) % len(fresh)
            fresh = fresh[self._rr:] + fresh[:self._rr]
        backends = [(r.name, r.server) for r in fresh]
        if self.primary_alive:
            backends.append((self.primary_name, self.primary))
        return backends

    def query(
        self,
        method: str,
        qt: int,
        l: Optional[float] = None,
        rho: Optional[float] = None,
        varrho: Optional[float] = None,
        deadline: Optional[float] = None,
        retries: Optional[int] = None,
    ):
        """Evaluate a snapshot query on the best available backend.

        Admission control (when configured) may degrade the method or
        shed the query before any backend is touched; circuit breakers
        skip ejected backends; replicas outside the staleness bound are
        never consulted.  The result's ``served_by`` names the backend.
        """
        with TELEMETRY.tracer.trace("group_query", method=method, qt=qt) as group_span:
            with TELEMETRY.tracer.span("admission"):
                admitted, admission_degraded = (
                    self.admission.admit(method)
                    if self.admission is not None
                    else (method, False)
                )
            backends = self._read_backends()
            if not backends:
                raise StalenessExceededError(
                    f"no backend within staleness bound "
                    f"{self.replication.staleness_bound} "
                    f"(acked lsn {self._acked_lsn}) and the primary is unavailable"
                )
            last_exc: Optional[ReproError] = None
            for name, server in backends:
                breaker = self._breaker(name)
                if not breaker.allow():
                    continue
                try:
                    if self.admission is not None:
                        with self.admission.slot():
                            result = server.query(
                                admitted, qt=qt, l=l, rho=rho, varrho=varrho,
                                deadline=deadline, retries=retries,
                            )
                    else:
                        result = server.query(
                            admitted, qt=qt, l=l, rho=rho, varrho=varrho,
                            deadline=deadline, retries=retries,
                        )
                except InjectedCrashError:
                    raise
                except ReproError as exc:
                    breaker.record_failure()
                    last_exc = exc
                    continue
                breaker.record_success()
                result.served_by = name
                if admission_degraded:
                    result.degraded = True
                    result.requested_method = method
                group_span.set(served_by=name, served_method=result.stats.method)
                break
            else:
                if last_exc is not None:
                    raise last_exc
                raise QueryError(
                    "every eligible backend is circuit-broken; retry after probation"
                )
        TELEMETRY.note_query(group_span, result, requested_method=method)
        return result

    def query_interval(
        self,
        method: str,
        qt1: int,
        qt2: int,
        l: Optional[float] = None,
        rho: Optional[float] = None,
        varrho: Optional[float] = None,
    ):
        """Route an interval query like a snapshot one (admission included)."""
        admitted, admission_degraded = (
            self.admission.admit(method) if self.admission is not None else (method, False)
        )
        for name, server in self._read_backends():
            breaker = self._breaker(name)
            if not breaker.allow():
                continue
            try:
                result = server.query_interval(
                    admitted, qt1=qt1, qt2=qt2, l=l, rho=rho, varrho=varrho
                )
            except InjectedCrashError:
                raise
            except ReproError:
                breaker.record_failure()
                continue
            breaker.record_success()
            result.served_by = name
            if admission_degraded:
                result.degraded = True
                result.requested_method = method
            return result
        raise StalenessExceededError("no backend available for the interval query")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """The replication topology as one operator-facing dict."""
        return {
            "epoch": self.epoch,
            "primary": {
                "name": self.primary_name,
                "alive": self.primary_alive,
                "role": self.primary.role,
                "acked_lsn": self._acked_lsn,
                "tnow": self.primary.tnow,
                "read_only": self.primary.read_only,
            },
            "staleness_bound": self.replication.staleness_bound,
            "replicas": [
                {
                    "name": r.name,
                    "applied_lsn": r.applied_lsn,
                    "lag": r.lag(self._acked_lsn),
                    "epoch": r.epoch,
                    "partitioned": r.link.partitioned,
                    "queued": r.link.queued,
                    "dropped": r.link.dropped,
                    "fenced_rejects": r.fenced_rejects,
                    "breaker": self._breakers[r.name].state if r.name in self._breakers else "closed",
                }
                for r in self.replicas
            ],
        }

    def reliability_report(self) -> dict:
        """Primary counters + admission counters + replication status."""
        report = self.primary.reliability_report()
        report["replication"] = self.status()
        report["admission"] = self.admission.report() if self.admission else None
        return report

    def probe_resources(self) -> bool:
        """Try to lift the acting primary out of read-only degraded mode."""
        return self.primary.probe_resources()

    def close(self) -> None:
        if self.primary_alive:
            self.primary.close()
