"""Query deadlines, retry-with-backoff, and the degradation ladder.

A query issued with a time budget must return *something* useful inside
that budget.  The ladder runs the requested method first and falls back to
progressively cheaper evaluations::

    fr  ->  pa  ->  dh-optimistic

FR checks the deadline cooperatively at every candidate-cell refinement;
PA checks at entry (its branch-and-bound pass is cheap and all-or-
nothing); the histogram bounds are O(m^2) arithmetic and always run.  The
budget is *sliced* geometrically across the rungs — at each non-terminal
rung's entry the rung may spend half of the budget still remaining, the
last rung is unbounded — so that when FR blows its slice there is still
budget left for PA to produce an approximate answer *within* the overall
deadline, rather than falling straight to the loosest bound.

Transient faults (:class:`~repro.core.errors.TransientFaultError`) are
retried with exponential backoff inside a rung; once retries are
exhausted the ladder degrades to the next rung instead of failing the
query.  The returned :class:`~repro.core.query.QueryResult` carries
``degraded`` / ``requested_method`` so callers can tell exactly what they
got.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, TypeVar

from ..core.errors import (
    DeadlineExceededError,
    InvalidParameterError,
    QueryError,
    TransientFaultError,
)
from ..core.query import QueryResult, SnapshotPDRQuery
from ..telemetry import TELEMETRY
from ..telemetry import instruments as tm
from .faults import Clock

__all__ = [
    "Deadline",
    "run_with_retries",
    "DEGRADATION_LADDER",
    "ladder_for",
    "evaluate_with_degradation",
]

DEGRADATION_LADDER = ("fr", "pa", "dh-optimistic")

T = TypeVar("T")


class Deadline:
    """An absolute expiry on a clock, checked cooperatively."""

    def __init__(self, seconds: float, clock: Clock) -> None:
        if seconds <= 0:
            raise InvalidParameterError(f"deadline must be positive, got {seconds}")
        self.clock = clock
        self.started = clock.now()
        self.expires_at = self.started + seconds

    def remaining(self) -> float:
        return self.expires_at - self.clock.now()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, site: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            where = f" at {site}" if site else ""
            raise DeadlineExceededError(
                f"query budget exhausted{where} "
                f"({self.clock.now() - self.started:.3f}s elapsed)"
            )

    def sliced(self, seconds_from_start: float) -> "Deadline":
        """A sub-deadline expiring earlier, sharing this deadline's clock."""
        sub = Deadline.__new__(Deadline)
        sub.clock = self.clock
        sub.started = self.started
        sub.expires_at = min(self.expires_at, self.started + seconds_from_start)
        return sub


def run_with_retries(
    fn: Callable[[], T],
    retries: int,
    backoff_seconds: float,
    clock: Clock,
    deadline: Optional[Deadline] = None,
) -> Tuple[T, int]:
    """Run ``fn``, retrying transient faults with exponential backoff.

    Returns ``(result, attempts_used_beyond_the_first)``.  Only
    :class:`TransientFaultError` is retried; a deadline (when given) is
    checked before each attempt so retries cannot outlive the budget.
    """
    attempt = 0
    while True:
        if deadline is not None:
            deadline.check("retry")
        try:
            return fn(), attempt
        except TransientFaultError:
            if attempt >= retries:
                raise
            clock.sleep(backoff_seconds * (2 ** attempt))
            attempt += 1


def ladder_for(method: str, query: SnapshotPDRQuery, pa_l: float) -> List[str]:
    """The fallback rungs for ``method``, cheapest last.

    The PA rung is dropped when the query's ``l`` differs from the edge
    the polynomial surfaces were built for (PA fixes ``l`` at
    construction, Section 6).  ``dh-pessimistic`` is already a terminal
    bound; every other method degrades to the optimistic histogram bound,
    which is a superset of the true answer — under pressure the server
    over-reports dense area rather than silently dropping regions.
    """
    if method in DEGRADATION_LADDER:
        rungs = list(DEGRADATION_LADDER[DEGRADATION_LADDER.index(method):])
    elif method == "dh-pessimistic":
        rungs = [method]
    else:
        rungs = [method, "dh-optimistic"]
    if abs(query.l - pa_l) > 1e-9:
        rungs = [r for r in rungs if r != "pa"]
    return rungs


def evaluate_with_degradation(
    server,
    method: str,
    query: SnapshotPDRQuery,
    budget_seconds: float,
    retries: int,
    backoff_seconds: float,
) -> QueryResult:
    """Evaluate ``query`` under a time budget, degrading down the ladder."""
    clock = server.clock
    deadline = Deadline(budget_seconds, clock)
    rungs = ladder_for(method, query, server.pa.l)
    fallbacks = 0
    total_retries = 0
    for i, rung in enumerate(rungs):
        last = i == len(rungs) - 1
        if last:
            rung_deadline = None  # the terminal bound always produces an answer
        else:
            # Geometric slicing against the budget *remaining at rung
            # entry*: this rung may spend half of it, so even when a rung
            # overshoots its slice (deadlines are cooperative — an
            # expensive step finishes before the check catches it) the
            # rungs below still receive half of whatever is left.
            remaining = deadline.remaining()
            if remaining <= 0:
                fallbacks += 1
                tm.LADDER_FALLBACKS.labels(rung).inc()
                continue
            rung_deadline = deadline.sliced(
                (clock.now() - deadline.started) + remaining / 2.0
            )
        try:
            with TELEMETRY.tracer.span("rung", method=rung) as rung_span:
                result, attempts = run_with_retries(
                    lambda r=rung, d=rung_deadline: server.evaluate(
                        r, query, deadline=d
                    ),
                    retries,
                    backoff_seconds,
                    clock,
                    deadline=rung_deadline,
                )
            total_retries += attempts
            if attempts:
                tm.QUERY_RETRIES.inc(attempts)
        except DeadlineExceededError:
            fallbacks += 1
            tm.LADDER_FALLBACKS.labels(rung).inc()
            continue
        except TransientFaultError:
            if last:
                raise
            fallbacks += 1
            tm.LADDER_FALLBACKS.labels(rung).inc()
            continue
        rung_span.set(retries=attempts)
        result.requested_method = method
        result.degraded = rung != method
        result.stats.extra["deadline_seconds"] = float(budget_seconds)
        result.stats.extra["deadline_spent"] = clock.now() - deadline.started
        if fallbacks:
            result.stats.extra["ladder_fallbacks"] = float(fallbacks)
        if total_retries:
            result.stats.extra["retries"] = float(total_retries)
        return result
    raise QueryError(
        f"degradation ladder exhausted for method {method!r}"
    )  # pragma: no cover - the terminal rung returns or raises transient
