"""Named, env-armed crashpoints that kill the *real* process.

Every robustness layer before this one simulated crashes in-process
(:class:`~repro.reliability.faults.InjectedCrashError` unwinds the stack;
the chaos scheduler reconstructs a server object).  A real storage engine
is validated the other way around: ``kill -9`` the process at the most
durability-critical instruction and prove that a *fresh OS process*
recovers the acknowledged state from disk (ALICE-style crash-consistency
testing).  This module provides the kill switch.

A **crashpoint** is a named site in the durability protocol.  The names
reuse the established fault-site vocabulary of :mod:`.faults` /
:mod:`.recovery` wherever a site already exists:

======================  ================================================
``wal.append``          before a record (or group-commit batch) is framed
                        — the record is lost, but was never acknowledged
``wal_write``           mid-append: with a torn fraction armed, a prefix
                        of the payload lands on disk first (a torn line)
``wal_fsync``           records written+flushed but not yet fsynced
``checkpoint.write``    before the checkpoint image is written
``checkpoint.sidecar``  image durable; sidecar tmp written, not renamed
``checkpoint.manifest`` sidecar durable; manifest tmp written, not
                        renamed — the classic crash-before-rename window
``wal.prune``           mid-prune: some stale segments unlinked, not all
``wal.reopen``          mid segment-reopen after a poisoned descriptor
======================  ================================================

Arming is **per process** via the environment, so a supervised child can
be told to die exactly once at exactly one site:

    REPRO_CRASHPOINT=checkpoint.manifest   the site to die at
    REPRO_CRASHPOINT_AFTER=2               skip this many hits first
    REPRO_CRASHPOINT_TORN=0.5              (wal_write only) land this
                                           fraction of the payload first

The instrumented sites call :func:`crashpoint`, which is a single
attribute test while disarmed — cheap enough to leave in the hot WAL
path unconditionally (unlike :class:`FaultInjector`, which only runs
when a test wired an injector in).

Death is ``SIGKILL`` to our own pid (with ``os._exit(137)`` as the
fallback): no ``atexit``, no ``finally``, no flushing — the same
guarantees a kernel OOM-kill or power loss gives the durability layer.
Tests that must observe the kill *in-process* can :func:`arm` with a
``kill`` callable that raises instead.
"""

from __future__ import annotations

import os
import signal
import sys
from typing import Callable, Optional

__all__ = [
    "CRASH_SITES",
    "ENV_SITE",
    "ENV_AFTER",
    "ENV_TORN",
    "KILL_EXIT_CODE",
    "arm",
    "arm_from_env",
    "disarm",
    "armed_site",
    "crashpoint",
    "hard_kill",
]

# The canonical kill-matrix: every site a standard serve workload
# (reports + advances across a few checkpoint cycles) deterministically
# reaches.  ``wal.reopen`` is a valid crashpoint too, but needs a
# poisoned WAL first, so it is not part of the default matrix.
CRASH_SITES = (
    "wal.append",
    "wal_write",
    "wal_fsync",
    "checkpoint.write",
    "checkpoint.sidecar",
    "checkpoint.manifest",
    "wal.prune",
)

ENV_SITE = "REPRO_CRASHPOINT"
ENV_AFTER = "REPRO_CRASHPOINT_AFTER"
ENV_TORN = "REPRO_CRASHPOINT_TORN"

# What a SIGKILLed process reports as in shell convention (128 + 9); the
# os._exit fallback uses the same number so supervisors see one code.
KILL_EXIT_CODE = 137


def hard_kill() -> None:  # pragma: no cover - the process dies here
    """Die NOW: no unwinding, no atexit, no buffered-IO flush."""
    try:
        os.kill(os.getpid(), signal.SIGKILL)
    except OSError:
        pass
    os._exit(KILL_EXIT_CODE)


class _Armed:
    """The single armed crashpoint of this process (or None)."""

    __slots__ = ("site", "after", "torn", "hits", "kill")

    def __init__(
        self,
        site: str,
        after: int = 0,
        torn: Optional[float] = None,
        kill: Optional[Callable[[], None]] = None,
    ) -> None:
        self.site = site
        self.after = int(after)
        self.torn = None if torn is None else float(torn)
        self.hits = 0
        self.kill = kill or hard_kill


_armed: Optional[_Armed] = None


def arm(
    site: str,
    after: int = 0,
    torn: Optional[float] = None,
    kill: Optional[Callable[[], None]] = None,
) -> None:
    """Arm one crashpoint in this process (replacing any previous one).

    ``after`` skips that many hits before the kill; ``torn`` (only
    meaningful at ``wal_write``) lands that fraction of the payload
    before dying; ``kill`` overrides the death mechanism for tests.
    """
    global _armed
    if torn is not None and not 0.0 <= torn < 1.0:
        raise ValueError(f"torn fraction must be in [0, 1), got {torn}")
    _armed = _Armed(site, after=after, torn=torn, kill=kill)


def disarm() -> None:
    global _armed
    _armed = None


def armed_site() -> Optional[str]:
    return _armed.site if _armed is not None else None


def arm_from_env(environ=None) -> Optional[str]:
    """Arm from ``REPRO_CRASHPOINT*`` variables; returns the site or None.

    Called once at server boot (``repro serve``).  A malformed AFTER/TORN
    value is a hard error: a kill-matrix cell that silently never fires
    would report as green.
    """
    env = os.environ if environ is None else environ
    site = env.get(ENV_SITE)
    if not site:
        return None
    after = int(env.get(ENV_AFTER, "0"))
    torn_raw = env.get(ENV_TORN)
    torn = None if torn_raw in (None, "") else float(torn_raw)
    arm(site, after=after, torn=torn)
    return site


def crashpoint(site: str, payload: Optional[str] = None, fh=None) -> None:
    """Die here if this site is armed and its hit budget is spent.

    ``payload``/``fh`` let the ``wal_write`` site land a torn prefix
    first: the bytes a real mid-write power cut would have left behind.
    Disarmed cost: one global load and one attribute compare.
    """
    armed = _armed
    if armed is None or armed.site != site:
        return
    armed.hits += 1
    if armed.hits <= armed.after:
        return
    if armed.torn is not None and payload and fh is not None:
        try:
            fh.write(payload[: max(1, int(len(payload) * armed.torn))])
            fh.flush()
        except (OSError, ValueError):  # pragma: no cover - dying anyway
            pass
    try:
        print(
            f"crashpoint: killing pid {os.getpid()} at {site!r} "
            f"(hit {armed.hits})",
            file=sys.stderr,
            flush=True,
        )
    except OSError:  # pragma: no cover - stderr gone; still die
        pass
    armed.kill()
