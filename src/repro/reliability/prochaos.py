"""Process-level crash chaos: the crashpoint × seed kill matrix.

One **cell** of the matrix is the full ALICE-style experiment for one
``(crashpoint, seed)`` pair, run against real OS processes:

1. a :class:`~repro.serving.supervisor.Supervisor` spawns ``repro
   serve`` with the crashpoint armed in the first child's environment
   (``--fsync --checkpoint-interval 2`` so every durability site on the
   matrix is actually on the code path);
2. a seeded workload drives reports and clock advances over the real TCP
   front door through :class:`~repro.serving.client.ResilientClient`,
   recording every acknowledged LSN;
3. the armed child SIGKILLs itself at the site (after a seed-derived
   number of hits; the ``wal_write`` site also lands a seed-derived torn
   prefix first);
4. the supervisor restarts a fresh — *disarmed* — process over the same
   state directory at the same port, and the client rides the outage out
   (retries, reconnect, recovery-generation bump);
5. after more acknowledged traffic, the supervisor drains and the
   **oracles** interrogate what is actually on disk:

   * **zero acked-write loss** — an in-process recovery of the state
     directory must reach a WAL position >= every LSN the client ever
     saw acknowledged;
   * **clean-or-quarantined** — ``verify_state_dir`` may report nothing
     worse than stray tmps (damage the crash manufactured must have been
     repaired or quarantined by the restart, not served from);
   * **contiguous LSN chain** — replaying from the newest checkpoint
     must meet every LSN exactly once, no gaps;
   * the restart must actually have happened: exactly one supervised
     restart, recovery generation visibly bumped at the client.

A cell whose crashpoint never fires is a **failure**, not a skip: a
site that silently stopped being reached would otherwise turn the whole
matrix green while testing nothing.

Results serialize like the in-process chaos reproducers
(:meth:`ProcessChaosResult.to_dict` / ``format_reproducer``), so CI can
upload a failing cell as an artifact and a developer can re-run exactly
``repro chaos --process --crashpoint <site> --seed <seed>``.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import List, Optional

from ..core.errors import ClientError, ReproError, ServingError
from .crashpoints import CRASH_SITES

__all__ = [
    "ProcessChaosConfig",
    "ProcessChaosResult",
    "run_process_cell",
    "run_process_matrix",
]


@dataclasses.dataclass
class ProcessChaosConfig:
    """One kill-matrix cell (a crashpoint at one seed)."""

    site: str
    seed: int = 0
    objects: int = 24
    checkpoint_interval: int = 2
    post_restart_ops: int = 8  # acked writes demanded of the new process
    crash_deadline: float = 60.0  # seconds for the armed kill to happen
    recover_deadline: float = 60.0  # seconds for the restart to go ready
    startup_deadline: float = 45.0
    python: Optional[str] = None  # interpreter override

    def __post_init__(self) -> None:
        if self.site not in CRASH_SITES and self.site != "wal.reopen":
            raise ReproError(
                f"unknown crashpoint {self.site!r}; matrix sites: "
                f"{', '.join(CRASH_SITES)}"
            )

    @property
    def arm_after(self) -> int:
        """Seed-derived hits to skip, so seeds die at different depths.

        WAL sites fire per record — plenty of budget; checkpoint-cycle
        sites fire once per checkpoint, so the skip stays small enough
        that the workload reliably reaches it.
        """
        if self.site in ("wal.append", "wal_write", "wal_fsync"):
            return 3 + (self.seed % 7)
        return self.seed % 2

    @property
    def arm_torn(self) -> Optional[float]:
        """Seed-derived torn fraction for the mid-write site."""
        if self.site != "wal_write":
            return None
        return (1 + self.seed % 4) / 5.0  # 0.2, 0.4, 0.6, 0.8


@dataclasses.dataclass
class ProcessChaosResult:
    """Verdict + evidence for one cell."""

    site: str
    seed: int
    ok: bool = False
    violations: List[str] = dataclasses.field(default_factory=list)
    stats: dict = dataclasses.field(default_factory=dict)
    events: List[str] = dataclasses.field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "kind": "process-crash-cell",
            "site": self.site,
            "seed": self.seed,
            "ok": self.ok,
            "violations": list(self.violations),
            "stats": dict(self.stats),
            "events": list(self.events),
            "rerun": (
                f"repro chaos --process --crashpoint {self.site} "
                f"--seed {self.seed}"
            ),
        }

    def format_reproducer(self) -> str:
        lines = [
            f"process-crash cell FAILED: site={self.site} seed={self.seed}"
        ]
        lines.extend(f"  violation: {v}" for v in self.violations)
        lines.append(
            f"  rerun: repro chaos --process --crashpoint {self.site} "
            f"--seed {self.seed}"
        )
        lines.extend(f"  event: {e}" for e in self.events[-12:])
        return "\n".join(lines)


class _EventLog:
    """Supervisor `out` sink that keeps status lines for the reproducer."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def write(self, text: str) -> None:
        text = text.strip()
        if text:
            self.lines.append(text)

    def flush(self) -> None:  # pragma: no cover - interface completeness
        pass


def run_process_cell(
    config: ProcessChaosConfig, workdir: str
) -> ProcessChaosResult:
    """Run one kill-matrix cell in ``workdir`` (caller owns cleanup)."""
    import random

    from ..serving.client import ClientConfig, ResilientClient
    from ..serving.supervisor import Supervisor, SupervisorConfig

    result = ProcessChaosResult(site=config.site, seed=config.seed)
    state_dir = os.path.join(workdir, "state")
    events = _EventLog()
    supervisor = Supervisor(
        SupervisorConfig(
            serve_args=[
                "--state-dir", state_dir,
                "--objects", str(config.objects),
                "--replicas", "0",
                "--seed", str(config.seed),
                "--fsync",
                "--checkpoint-interval", str(config.checkpoint_interval),
            ],
            probe_interval=0.1,
            startup_deadline=config.startup_deadline,
            backoff_initial=0.1,
            backoff_max=1.0,
            seed=config.seed,
            arm_crashpoint=config.site,
            arm_after=config.arm_after,
            arm_torn=config.arm_torn,
            python=config.python,
        ),
        out=events,
    )
    supervisor.start()
    client = None
    try:
        if not supervisor.wait_ready(config.startup_deadline):
            # an eagerly-armed site (e.g. checkpoint at boot with
            # after=0) can kill the child before first readiness; the
            # disarmed restart must still come up
            if not supervisor.wait_ready(config.recover_deadline):
                result.violations.append(
                    "supervised child never became ready"
                )
                return result
        port = supervisor.port
        client = ResilientClient(
            [("127.0.0.1", int(port))],
            ClientConfig(max_attempts=12, backoff_cap=1.0, seed=config.seed),
        )
        rng = random.Random(config.seed)
        _drive_until_crash(config, supervisor, client, rng, result)
        _drive_after_restart(config, supervisor, client, rng, result)
    finally:
        baseline = dict(client.stats) if client is not None else {}
        if client is not None:
            client.close()
        supervisor.request_stop()
        supervisor.join(30.0)
        result.stats.update(
            restarts=supervisor.restarts,
            client_generation=client.generation if client else 0,
            max_acked_lsn=client.max_acked_lsn if client else 0,
            acked_reports=client.acked_reports if client else 0,
            retries=baseline.get("retries", 0),
        )
        result.events = list(events.lines)
    _check_oracles(config, state_dir, client, supervisor, result)
    result.ok = not result.violations
    return result


def _tick(client, rng, tnow: List[int], config) -> int:
    """A few reports then an advance; returns acked ops this tick."""
    acked = 0
    for _ in range(4):
        oid = rng.randrange(config.objects)
        try:
            frame = client.report(
                oid,
                rng.uniform(10.0, 990.0),
                rng.uniform(10.0, 990.0),
                rng.uniform(-1.0, 1.0),
                rng.uniform(-1.0, 1.0),
            )
            if frame.get("accepted"):
                acked += 1
        except (ClientError, ServingError, OSError):
            pass  # mid-outage: the retry budget ran dry; keep driving
    tnow[0] += 1
    try:
        client.advance(tnow[0])
        acked += 1
    except (ClientError, ServingError, OSError):
        pass
    return acked


def _drive_until_crash(config, supervisor, client, rng, result) -> None:
    """Push traffic until the armed child dies (restarts goes 0 -> 1)."""
    # the server warmed itself to tnow=2 at boot; advance from above it
    tnow = [16]  # far enough ahead that every advance is a real tick
    try:
        health = client.health()
        tnow = [int(health.get("tnow", 2)) + 1]
    except (ClientError, ServingError, OSError):
        pass
    deadline = time.monotonic() + config.crash_deadline
    ops = 0
    while supervisor.restarts == 0 and time.monotonic() < deadline:
        ops += _tick(client, rng, tnow, config)
    result.stats["ops_before_crash"] = ops
    result.stats["tnow_reached"] = tnow[0]
    if supervisor.restarts == 0:
        result.violations.append(
            f"crashpoint {config.site!r} never fired within "
            f"{config.crash_deadline:.0f}s ({ops} acked ops driven) — "
            "the site is no longer on the workload's code path"
        )
    result.stats["acked_lsn_at_crash"] = client.max_acked_lsn


def _drive_after_restart(config, supervisor, client, rng, result) -> None:
    """Ride out the restart: demand acked writes from the new process."""
    if result.violations:
        return
    if not supervisor.wait_ready(config.recover_deadline):
        result.violations.append(
            f"restarted process not ready within {config.recover_deadline:.0f}s"
        )
        return
    tnow = [result.stats.get("tnow_reached", 20) + 1]
    try:
        health = client.health()
        tnow = [int(health.get("tnow", tnow[0])) + 1]
    except (ClientError, ServingError, OSError):
        pass
    deadline = time.monotonic() + config.recover_deadline
    acked = 0
    while acked < config.post_restart_ops and time.monotonic() < deadline:
        acked += _tick(client, rng, tnow, config)
    result.stats["ops_after_restart"] = acked
    if acked < config.post_restart_ops:
        result.violations.append(
            f"only {acked}/{config.post_restart_ops} acked ops against the "
            "restarted process — the client never rode out the restart"
        )
    if client.generation < 1:
        result.violations.append(
            "client never observed a recovery-generation bump across the "
            "restart"
        )


def _check_oracles(config, state_dir, client, supervisor, result) -> None:
    """Interrogate the on-disk state a fresh process would recover."""
    from ..core.system import PDRServer
    from .integrity import verify_state_dir
    from .recovery import load_latest_checkpoint, records_from_lsn

    if not os.path.isdir(state_dir):
        result.violations.append(f"state dir {state_dir!r} missing at verdict")
        return

    # clean-or-quarantined: the matrix's manufactured damage must have
    # been truncated/quarantined by the restart, never left live
    report = verify_state_dir(state_dir)
    for status in report.damaged():
        result.violations.append(
            f"verify: {status.state} {status.name} survived recovery "
            f"({status.detail})"
        )
    for expected, found in report.gaps:
        result.violations.append(
            f"verify: LSN gap (expected {expected}, found {found})"
        )

    # contiguous LSN chain from the newest durable checkpoint
    loaded = load_latest_checkpoint(state_dir)
    base_lsn = int(loaded[1]["lsn"]) if loaded is not None else 0
    try:
        replayed = sum(1 for _ in records_from_lsn(state_dir, base_lsn))
        result.stats["replayable_records"] = replayed
    except ReproError as exc:
        result.violations.append(f"lsn-chain: {exc}")

    # zero acked-write loss, judged by an actual in-process recovery
    acked = client.max_acked_lsn if client is not None else 0
    try:
        server = PDRServer.recover(state_dir)
        try:
            durable = int(server.wal_lsn or 0)
        finally:
            server.close()
        result.stats["recovered_lsn"] = durable
        if durable < acked:
            result.violations.append(
                f"acked-write loss: client saw lsn {acked} acknowledged, "
                f"recovery reached only {durable}"
            )
    except ReproError as exc:
        result.violations.append(f"recovery failed at verdict: {exc}")

    if supervisor.restarts < 1:
        # redundant with the drive phase, but cheap and explicit
        result.violations.append("no supervised restart was observed")


def run_process_matrix(
    sites, seeds, workroot: str, python: Optional[str] = None
):
    """Run cells for every site × seed; yields results as they finish."""
    import shutil

    for site in sites:
        for seed in seeds:
            workdir = os.path.join(workroot, f"{site.replace('.', '-')}-{seed}")
            os.makedirs(workdir, exist_ok=True)
            try:
                yield run_process_cell(
                    ProcessChaosConfig(site=site, seed=seed, python=python),
                    workdir,
                )
            finally:
                shutil.rmtree(workdir, ignore_errors=True)
