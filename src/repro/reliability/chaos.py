"""Seeded chaos simulation for the replicated PDR serving stack.

The fault matrix of :mod:`tests.test_replication` exercises hand-picked
failure sites one at a time; real outages are *interleavings* — a
partition during a checkpoint, bit rot discovered mid-failover.  A
:class:`ChaosScheduler` drives a full primary+replicas stack
(:class:`~repro.reliability.replication.ReplicationGroup` over a durable
:class:`~repro.core.system.PDRServer`) through a randomized but fully
seeded schedule of events:

======================  ================================================
``report``/``retire``   accepted writes through the group (WAL-shipped)
``advance``             clock ticks (drive checkpoints + rotation)
``query``               reads through the staleness-aware router
``partition``/``heal``  link partitions and their repair
``lag``/``drop``        delivery lag and packet loss on one link
``crash_primary``       primary death -> failover -> replacement joins
``crash_replica``       replica death -> fresh replica bootstraps
``flip_wal``            one byte of a WAL segment XOR-flipped on disk
``flip_ckpt``           one byte of a checkpoint image XOR-flipped
======================  ================================================

With ``ChaosConfig.network`` the same seeded schedule runs *through the
wire*: the group is mounted behind a
:class:`~repro.serving.server.PDRTCPServer` (on its own thread), a
:class:`~repro.serving.netchaos.ChaosProxy` sits in front, and every
``report``/``retire``/``advance``/``query`` event travels through a
seeded :class:`~repro.serving.client.ResilientClient`.  Four extra event
kinds arm socket-level faults on the proxy (consumed by the next
connection, which the client is forced to open):

======================  ================================================
``net_reset``           hard-RST the client right after the server's
                        response — the ack is durable, the client never
                        hears it
``net_truncate``        the next response frame is cut mid-body
``net_slowloris``       the next request dribbles in 2-byte sips; the
                        server's read timeout must cut it loose
``net_stall``           the proxy stops accepting for a window
======================  ================================================

Direct group manipulation (partitions, crashes, flips) and every oracle
sweep run on the server's single backend thread via
:meth:`~repro.serving.server.ServerThread.call`, preserving the
serialization discipline.  Network mode keeps all six oracles and adds
two wire invariants:

7. *no acked wire loss*: every LSN the server acknowledged **to the
   client** — across resets, truncations and failovers — is covered by
   the acting primary's durable WAL;
8. *shed retry hints*: every ``shed``/``draining`` error frame the
   client ever saw carried ``retry_after`` (the client counts absences).

To make sheds actually happen (and stop happening) deterministically,
network campaigns give the group an admission controller on its virtual
clock and tick that clock a fixed amount per event — token refill is a
pure function of the event index, not of wall time.

With ``ChaosConfig.resources`` the group runs under a live
:class:`~repro.reliability.resources.ResourceManager` (``fsync`` on, so
the ``wal_fsync`` site is reachable; ``checkpoint_interval=0``, so every
checkpoint flows through the soft-watermark path) and four more event
kinds attack the resource envelope:

======================  ================================================
``disk_shrink``         clamp the disk budget around current usage —
                        severe fractions drop the *hard* watermark below
                        usage (forcing read-only), mild ones squeeze the
                        *soft* watermark (forcing checkpoint-then-prune)
``disk_restore``        lift the budget limits (disk "freed")
``wal_fault``           arm one ENOSPC / EIO / short-write at the
                        ``wal_write`` or ``wal_fsync`` site — the next
                        append poisons that WAL descriptor
``ckpt_fault``          arm one ENOSPC / EIO at ``checkpoint_write``
======================  ================================================

Writes refused while degraded (``ReadOnlyError`` / ``WALWriteError``)
are counted, never treated as campaign failures — nothing refused was
ever acknowledged.  After *every* event the scheduler reconciles the
resource manager with the budget, and two more oracles run:

9.  *no acked-write loss under resource faults* — oracle 1, now spanning
    ENOSPC/EIO poisoning, fresh-segment reopens and retention pruning;
10. *read-only monotonicity*: after reconcile the primary is read-only
    **iff** the budget sits at its hard watermark (or the WAL reopen
    itself is still failing) — degraded mode neither lags the budget nor
    lingers after it recovers, and the server never crashes.

Bit-flips go through :func:`~repro.reliability.integrity.flip_byte`,
which hits the ``integrity.flip`` fault site of the shared
:class:`~repro.reliability.faults.FaultInjector` (whose counters are
:meth:`~repro.reliability.faults.FaultInjector.reset_counters`-ed
between episodes), and are healed by
:meth:`~repro.reliability.replication.ReplicationGroup.anti_entropy`.

After every recovery (crash, failover, repair) — and periodically in
between — the **invariant oracles** run:

1. *no acked-write loss*: the acting primary's WAL position covers every
   acknowledged LSN;
2. *replica convergence*: after catch-up, every replica's histogram
   counters and Chebyshev coefficients are bit-exact with the primary's;
3. *answer correctness*: the primary's FR answer equals the brute-force
   oracle's, region set for region set;
4. *structural audit*: table / tree / histogram / PA cross-checks clean;
5. *staleness*: a replica that served a read was within the bound;
6. *durable integrity*: the state directory checksum-verifies clean.

Everything is deterministic given the seed: the schedule is generated up
front by one ``random.Random(seed)``, execution consults no randomness
and no wall clock, so a failing run replays exactly.  On failure the
scheduler greedily shrinks the schedule (ddmin-style) to a minimal
reproducer and prints it with its seed.
"""

from __future__ import annotations

import json
import os
import random
import shutil
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..baselines.bruteforce import bruteforce_from_motions
from ..core.config import SystemConfig
from ..core.errors import (
    FailoverError,
    QueryError,
    ReadOnlyError,
    ReproError,
    StalenessExceededError,
    WALWriteError,
)
from ..core.geometry import Rect
from ..telemetry import instruments as tm
from .faults import FaultInjector
from .integrity import flip_byte, verify_state_dir
from .replication import ReplicationConfig, ReplicationGroup
from .validation import ReliabilityConfig, ResourceConfig

__all__ = [
    "ChaosConfig",
    "ChaosFailure",
    "ChaosResult",
    "ChaosScheduler",
    "ddmin",
]

# One event is a plain tuple ``(kind, *params)`` — JSON-serialisable so a
# shrunk reproducer can be printed, stored as a CI artifact and replayed.
Event = Tuple


@dataclass
class ChaosConfig:
    """Knobs of one chaos campaign (all defaults are CI-sized)."""

    seed: int = 0
    events: int = 200
    replicas: int = 2
    objects: int = 24
    staleness_bound: int = 0
    checkpoint_interval: int = 20
    min_disruptions: int = 3  # scheduled crashes + bit-flips, at minimum
    oracle_every: int = 25  # full oracle sweep cadence (events)
    shrink: bool = True
    max_shrink_runs: int = 120
    # --- network mode: run the schedule through TCP + a chaos proxy ---
    network: bool = False
    min_net_disruptions: int = 4  # socket faults forced into the schedule
    net_admission_rate: float = 25.0  # tokens/s on the group's virtual clock
    net_admission_burst: float = 4.0  # tight: query bursts must shed
    net_clock_tick: float = 0.02  # virtual seconds ticked per event
    # --- resource mode: disk budgets, WAL write faults, read-only mode ---
    resources: bool = False
    min_resource_disruptions: int = 4  # budget/write faults forced in

    def weights(self) -> List[Tuple[str, float]]:
        base = [
            ("report", 42.0),
            ("advance", 18.0),
            ("retire", 4.0),
            ("query", 12.0),
            ("partition", 3.0),
            ("heal", 4.0),
            ("lag", 3.0),
            ("drop", 3.0),
            ("crash_primary", 2.0),
            ("crash_replica", 2.0),
            ("flip_wal", 4.0),
            ("flip_ckpt", 3.0),
        ]
        if self.network:
            base += [
                ("net_reset", 3.0),
                ("net_truncate", 2.0),
                ("net_slowloris", 1.0),
                ("net_stall", 1.0),
            ]
        if self.resources:
            base += [
                ("disk_shrink", 3.0),
                ("disk_restore", 3.0),
                ("wal_fault", 2.0),
                ("ckpt_fault", 2.0),
            ]
        return base


DISRUPTIONS = ("crash_primary", "crash_replica", "flip_wal", "flip_ckpt")
NET_DISRUPTIONS = ("net_reset", "net_truncate", "net_slowloris", "net_stall")
RESOURCE_DISRUPTIONS = ("disk_shrink", "disk_restore", "wal_fault", "ckpt_fault")


@dataclass
class ChaosFailure:
    """One oracle violation, pinned to the event that exposed it."""

    event_index: int
    event: Event
    oracle: str
    message: str

    def to_dict(self) -> dict:
        return {
            "event_index": self.event_index,
            "event": list(self.event),
            "oracle": self.oracle,
            "message": self.message,
        }


@dataclass
class ChaosResult:
    """Outcome of a chaos campaign (and, on failure, its reproducer)."""

    ok: bool
    seed: int
    events_run: int
    stats: dict = field(default_factory=dict)
    failure: Optional[ChaosFailure] = None
    reproducer: Optional[List[Event]] = None
    final_state_dir: Optional[str] = None

    def format_reproducer(self) -> str:
        if self.failure is None:
            return "no failure to reproduce"
        lines = [
            f"chaos failure (seed {self.seed}): oracle {self.failure.oracle!r} "
            f"— {self.failure.message}",
            f"minimal reproducer ({len(self.reproducer or [])} events):",
        ]
        for event in self.reproducer or []:
            lines.append(f"  {json.dumps(list(event))}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "events_run": self.events_run,
            "stats": self.stats,
            "failure": self.failure.to_dict() if self.failure else None,
            "reproducer": [list(e) for e in self.reproducer] if self.reproducer else None,
        }


def ddmin(events: List[Event], fails: Callable[[List[Event]], bool],
          max_runs: int = 120) -> List[Event]:
    """Greedy delta-debugging: a minimal-ish sublist on which ``fails``
    still holds.  ``fails(events)`` must be True on entry.  Classic ddmin
    chunk-removal with a run budget (each probe re-executes a schedule)."""
    runs = 0
    granularity = 2
    while len(events) >= 2 and runs < max_runs:
        chunk = max(1, len(events) // granularity)
        reduced = False
        start = 0
        while start < len(events) and runs < max_runs:
            candidate = events[:start] + events[start + chunk:]
            runs += 1
            if candidate and fails(candidate):
                events = candidate
                reduced = True
                # keep the same granularity relative to the smaller list
                granularity = max(2, granularity - 1)
            else:
                start += chunk
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    return events


class _NetworkHarness:
    """Front door + chaos proxy + resilient client around one group.

    All timeouts are campaign-sized (short): a slow-loris request must be
    cut loose in half a second, not thirty.  The client is seeded from
    the campaign seed so its jitter replays.
    """

    def __init__(self, group, seed: int) -> None:
        # imported lazily: chaos stays importable without the serving
        # extras ever having been touched, and there is no cycle
        from ..serving.client import ClientConfig, ResilientClient
        from ..serving.netchaos import ChaosProxy
        from ..serving.server import ServerThread, ServingConfig

        self.thread = ServerThread(group, ServingConfig(
            read_timeout=0.5, write_timeout=2.0, drain_deadline=1.0,
        )).start()
        self.proxy = ChaosProxy(self.thread.address)
        self.client = ResilientClient([self.proxy.address], ClientConfig(
            connect_timeout=0.5, request_timeout=1.5, max_attempts=6,
            backoff_base=0.01, backoff_cap=0.15, retry_after_cap=0.25,
            seed=seed, breaker_threshold=5, breaker_probation_seconds=0.2,
        ))

    def call(self, fn, *args, **kwargs):
        """Run ``fn`` on the server's single backend thread; blocks."""
        return self.thread.call(fn, *args, **kwargs)

    def close(self) -> None:
        self.client.close()
        self.proxy.close()
        self.thread.stop()


class ChaosScheduler:
    """Generate, execute, oracle-check and shrink seeded chaos schedules.

    ``workdir`` hosts one state directory per execution (run ``i`` under
    ``run-<i>/state``); the caller owns its lifetime.  The injector —
    with its virtual clock — is shared across executions so the
    ``integrity.flip`` hit counter is an honest per-campaign tally;
    :meth:`~repro.reliability.faults.FaultInjector.reset_counters`
    separates the episodes.
    """

    def __init__(self, config: ChaosConfig, workdir: str) -> None:
        self.config = config
        self.workdir = workdir
        self.faults = FaultInjector()
        self._run_counter = 0

    # ------------------------------------------------------------------
    # schedule generation (pure function of the seed)
    # ------------------------------------------------------------------
    def build_schedule(self) -> List[Event]:
        cfg = self.config
        rng = random.Random(cfg.seed)
        kinds = [k for k, _ in cfg.weights()]
        weights = [w for _, w in cfg.weights()]
        events: List[Event] = []
        for _ in range(cfg.events):
            kind = rng.choices(kinds, weights=weights, k=1)[0]
            events.append(self._make_event(kind, rng))
        # guarantee the campaign actually disrupts: force-replace benign
        # events (deterministically) until enough crashes/flips exist
        have = sum(1 for e in events if e[0] in DISRUPTIONS)
        while have < cfg.min_disruptions and events:
            idx = rng.randrange(len(events))
            if events[idx][0] in DISRUPTIONS:
                continue
            kind = rng.choice(DISRUPTIONS)
            events[idx] = self._make_event(kind, rng)
            have += 1
        if cfg.network:  # and actually exercises the wire fault matrix
            have_net = sum(1 for e in events if e[0] in NET_DISRUPTIONS)
            while have_net < cfg.min_net_disruptions and events:
                idx = rng.randrange(len(events))
                if events[idx][0] in DISRUPTIONS + NET_DISRUPTIONS:
                    continue
                kind = rng.choice(NET_DISRUPTIONS)
                events[idx] = self._make_event(kind, rng)
                have_net += 1
        if cfg.resources:  # and actually exhausts some resources
            protected = DISRUPTIONS + NET_DISRUPTIONS + RESOURCE_DISRUPTIONS
            have_res = sum(1 for e in events if e[0] in RESOURCE_DISRUPTIONS)
            while have_res < cfg.min_resource_disruptions and events:
                idx = rng.randrange(len(events))
                if events[idx][0] in protected:
                    continue
                kind = rng.choice(RESOURCE_DISRUPTIONS)
                events[idx] = self._make_event(kind, rng)
                have_res += 1
        return events

    def _make_event(self, kind: str, rng: random.Random) -> Event:
        cfg = self.config
        if kind == "report":
            return (
                "report",
                rng.randrange(cfg.objects),
                round(rng.uniform(2.0, 98.0), 3),
                round(rng.uniform(2.0, 98.0), 3),
                round(rng.uniform(-1.5, 1.5), 3),
                round(rng.uniform(-1.5, 1.5), 3),
            )
        if kind == "advance":
            return ("advance",)
        if kind == "retire":
            return ("retire", rng.randrange(cfg.objects))
        if kind == "query":
            return ("query", rng.choice(["fr", "pa", "dh-optimistic"]),
                    rng.randrange(0, 4))
        if kind in ("partition", "heal", "crash_replica"):
            return (kind, rng.random())
        if kind == "lag":
            return ("lag", rng.random(), rng.randrange(0, 12))
        if kind == "drop":
            return ("drop", rng.random(), rng.randrange(1, 4))
        if kind == "crash_primary":
            return ("crash_primary",)
        if kind in ("flip_wal", "flip_ckpt"):
            # fractions resolve to a concrete file/offset at execution
            # time, so the event stays meaningful under shrinking
            return (kind, rng.random(), rng.random(), rng.randrange(1, 256))
        if kind in ("net_reset", "net_truncate", "net_slowloris"):
            return (kind,)
        if kind == "net_stall":
            return ("net_stall", rng.randrange(1, 4))  # tenths of a second
        if kind == "disk_shrink":
            # the fraction resolves against the *current* usage at
            # execution time (severe < 0.5: hard watermark drops below
            # usage; mild >= 0.5: only the soft watermark is crossed)
            return ("disk_shrink", round(rng.random(), 3))
        if kind == "disk_restore":
            return ("disk_restore",)
        if kind == "wal_fault":
            mode = rng.choice(["enospc", "eio", "short"])
            site = "wal_write" if mode == "short" else rng.choice(
                ["wal_write", "wal_fsync"]
            )
            return ("wal_fault", site, mode)
        if kind == "ckpt_fault":
            return ("ckpt_fault", rng.choice(["enospc", "eio"]))
        raise ValueError(f"unknown chaos event kind {kind!r}")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _build_group(self, state_dir: str):
        from ..core.system import PDRServer

        cfg = self.config
        system = SystemConfig(
            domain=Rect(0.0, 0.0, 100.0, 100.0),
            max_update_interval=6,
            prediction_window=6,
            l=10.0,
            histogram_cells=20,
            polynomial_grid=5,
            polynomial_degree=4,
            evaluation_grid=64,
        )
        rc = ReliabilityConfig(
            state_dir=state_dir,
            # resource campaigns route EVERY checkpoint through the
            # soft-watermark path (which absorbs injected checkpoint
            # faults into read-only mode) instead of the interval timer,
            # and need real fsyncs for the fsyncgate poisoning rule
            checkpoint_interval=0 if cfg.resources else cfg.checkpoint_interval,
            fsync=bool(cfg.resources),
            faults=self.faults,
            resources=ResourceConfig() if cfg.resources else None,
        )
        primary = PDRServer(system, expected_objects=cfg.objects, reliability=rc)
        admission = None
        if cfg.network and cfg.net_admission_rate > 0:
            # the bucket runs on the primary's *virtual* clock, which
            # execute() ticks a fixed amount per event: refill — and so
            # the shed/admit pattern — is a function of the schedule
            from .admission import AdmissionConfig

            admission = AdmissionConfig(
                rate=cfg.net_admission_rate, burst=cfg.net_admission_burst,
            )
        return ReplicationGroup(
            primary,
            n_replicas=cfg.replicas,
            config=ReplicationConfig(staleness_bound=cfg.staleness_bound),
            admission=admission,
        )

    def execute(self, events: List[Event]) -> Tuple[Optional[ChaosFailure], dict, str]:
        """Run one episode from a fresh state directory.

        Returns ``(failure_or_None, stats, state_dir)``; the state
        directory is left on disk (the surviving evidence the acceptance
        scenario runs ``repro verify`` over).
        """
        self._run_counter += 1
        run_dir = os.path.join(self.workdir, f"run-{self._run_counter}")
        shutil.rmtree(run_dir, ignore_errors=True)
        os.makedirs(run_dir)
        state_dir = os.path.join(run_dir, "state")
        self.faults.clear()
        self.faults.reset_counters()
        group = self._build_group(state_dir)
        net: Optional[_NetworkHarness] = None
        if self.config.network:
            net = _NetworkHarness(group, self.config.seed)
        # direct access and oracle sweeps go through the server's single
        # backend thread in network mode — the one serialization point
        gcall = net.call if net is not None else (lambda fn, *a, **k: fn(*a, **k))
        stats = {"events": 0, "oracle_sweeps": 0, "failovers": 0,
                 "repairs": 0, "flips": 0, "replica_crashes": 0}
        if net is not None:
            stats["wire_failures"] = 0
        if self.config.resources:
            stats["refused_writes"] = 0
        max_acked = 0
        joined = 0
        failure: Optional[ChaosFailure] = None
        try:
            for index, event in enumerate(events):
                stats["events"] += 1
                stats[event[0]] = stats.get(event[0], 0) + 1
                oracle_due = False
                try:
                    oracle_due, joined = self._apply_event(
                        group, event, stats, joined, net=net
                    )
                    if net is not None and self.config.net_clock_tick > 0:
                        gcall(group.clock.sleep, self.config.net_clock_tick)
                    if self.config.resources:
                        # converge read-only with the budget after every
                        # event — the monotonicity the oracle then checks
                        gcall(self._reconcile_resources, group)
                except (ReproError, AssertionError) as exc:
                    failure = ChaosFailure(
                        index, event, "no-unexpected-error",
                        f"{type(exc).__name__}: {exc}",
                    )
                    break
                max_acked = max(max_acked, gcall(lambda: group.acked_lsn))
                if oracle_due or (index + 1) % self.config.oracle_every == 0:
                    stats["oracle_sweeps"] += 1
                    verdict = self._check_oracles(group, max_acked, net=net)
                    if verdict is not None:
                        failure = ChaosFailure(index, event, *verdict)
                        break
            if failure is None:
                stats["oracle_sweeps"] += 1
                verdict = self._check_oracles(group, max_acked, net=net)
                if verdict is not None:
                    failure = ChaosFailure(
                        len(events) - 1, events[-1] if events else ("empty",),
                        *verdict,
                    )
        finally:
            stats["flips"] = self.faults.hits("integrity.flip")
            if net is not None:
                stats["wire"] = net.client.report_stats()
                stats["proxy"] = dict(net.proxy.stats)
                net.close()
            group.close()
        return failure, stats, state_dir

    def _apply_event(self, group, event: Event, stats: dict, joined: int,
                     net: Optional[_NetworkHarness] = None):
        """Execute one event; returns ``(oracle_due, joined)``.

        In network mode the workload ops travel through the resilient
        client; ``net_*`` events arm the proxy; everything else touches
        the group directly — on the server's backend thread.
        """
        kind = event[0]
        if net is not None:
            if kind in ("report", "retire", "advance", "query"):
                return self._apply_event_wire(group, event, stats, joined, net)
            if kind in NET_DISRUPTIONS:
                return self._apply_net_event(net, event, stats, joined)
            return net.call(
                self._apply_event_direct, group, event, stats, joined
            )
        return self._apply_event_direct(group, event, stats, joined)

    def _apply_event_wire(self, group, event: Event, stats: dict,
                          joined: int, net: _NetworkHarness):
        """One workload op through proxy + client, riding out wire faults.

        A retried op can double-apply (a reset arrives after the server
        committed): re-reports replace the same motion, double retires
        quarantine, a duplicated advance is one extra tick — all inside
        the chaos fault model, and every duplicate is WAL-logged, so the
        oracles hold regardless.
        """
        from ..core.errors import ServingError

        kind = event[0]
        try:
            if kind == "report":
                net.client.report(*event[1:])
            elif kind == "retire":
                net.client.retire(event[1])
            elif kind == "advance":
                t = net.call(lambda: group.tnow) + 1
                net.client.advance(to=t)  # explicit `to`: retries idempotent
            elif kind == "query":
                method, offset = event[1], event[2]
                frame = net.client.query(
                    method, qt_offset=offset, varrho=2.0, max_regions=8
                )
                net.call(self._assert_staleness, group, frame.get("served_by"))
        except ServingError:
            # sheds that never recovered, retries exhausted mid-fault,
            # truncated frames: tolerated losses — the client already
            # recorded what the oracles care about (acked LSNs, missing
            # retry_after hints)
            stats["wire_failures"] += 1
        if kind == "advance":
            # the contract (and the tick, if the wire ate it) must hold
            # whatever happened on the wire
            net.call(self._ensure_advanced, group, t)
        return False, joined

    def _ensure_advanced(self, group, t: int) -> None:
        if group.tnow < t:
            group.advance_to(t)
        self._honor_update_contract(group, group.tnow)

    def _apply_net_event(self, net: _NetworkHarness, event: Event,
                         stats: dict, joined: int):
        """Arm one socket fault; the client's next connection consumes it.

        The client pins one connection, so arming alone would never
        fire — it is told to reconnect, making fault consumption a
        deterministic property of the schedule, not of socket luck.
        """
        kind = event[0]
        if kind == "net_reset":
            net.proxy.reset_next()
        elif kind == "net_truncate":
            net.proxy.truncate_next()
        elif kind == "net_slowloris":
            net.proxy.slowloris_next(1, delay=0.06)
        elif kind == "net_stall":
            net.proxy.stall_accept(0.1 * event[1])
        net.client.reconnect()
        return False, joined

    def _apply_event_direct(self, group, event: Event, stats: dict, joined: int):
        if self.config.resources:
            # a resource campaign legitimately refuses writes: read-only
            # mode and poisoned-WAL errors are the behavior under test,
            # not unexpected failures (nothing refused was ever acked) —
            # the per-event reconcile converges state and the monotone
            # oracle checks it
            try:
                return self._apply_event_body(group, event, stats, joined)
            except (ReadOnlyError, WALWriteError):
                stats["refused_writes"] += 1
                return False, joined
        return self._apply_event_body(group, event, stats, joined)

    def _apply_event_body(self, group, event: Event, stats: dict, joined: int):
        kind = event[0]
        oracle_due = False
        if kind == "report":
            group.report(*event[1:])
        elif kind == "advance":
            t = group.tnow + 1
            group.advance_to(t)
            self._honor_update_contract(group, t)
        elif kind == "retire":
            group.retire(event[1])  # unknown oids quarantine; that is fine
        elif kind == "query":
            method, offset = event[1], event[2]
            try:
                result = group.query(method, qt=group.tnow + offset, varrho=2.0)
            except (StalenessExceededError, QueryError):
                pass  # partitions legitimately starve the router
            else:
                self._note_served(group, result)
        elif kind == "partition":
            replica = self._pick_replica(group, event[1])
            if replica is not None:
                replica.link.partitioned = True
        elif kind == "heal":
            replica = self._pick_replica(group, event[1])
            if replica is not None:
                replica.link.partitioned = False
                replica.link.lag_records = 0
                replica.catch_up(group.state_dir)
        elif kind == "lag":
            replica = self._pick_replica(group, event[1])
            if replica is not None:
                replica.link.lag_records = event[2]
        elif kind == "drop":
            replica = self._pick_replica(group, event[1])
            if replica is not None:
                replica.link.drop_next(event[2])
        elif kind == "crash_primary":
            group.mark_primary_dead()
            try:
                group.failover()
            except FailoverError:
                # heal the links and retry once: a fully partitioned group
                # must still fail over from the durable WAL
                for replica in group.replicas:
                    replica.link.partitioned = False
                group.failover()
            stats["failovers"] += 1
            joined += 1
            group.add_replica(f"joined-{joined}")  # a fresh node replaces it
            oracle_due = True
        elif kind == "crash_replica":
            if len(group.replicas) >= 2:
                victim = self._pick_replica(group, event[1])
                group.replicas.remove(victim)
                stats["replica_crashes"] += 1
                joined += 1
                group.add_replica(f"joined-{joined}")
                oracle_due = True
        elif kind in ("flip_wal", "flip_ckpt"):
            # stay inside the claimed fault model: bit rot is survivable
            # when the group is healthy, so let the replicas apply the
            # durable log *before* the only intact copy gets damaged
            # (they heal from the state dir directly, partitions or not)
            group.catch_up_replicas()
            if self._flip(group, event):
                report = group.anti_entropy()
                assert report.clean
                stats["repairs"] += 1
                oracle_due = True
        elif kind == "disk_shrink":
            self._apply_disk_shrink(group, event[1])
            oracle_due = True
        elif kind == "disk_restore":
            budget = group.primary.reliability.resources
            budget.soft_limit_bytes = None
            budget.hard_limit_bytes = None
            oracle_due = True
        elif kind == "wal_fault":
            _kind, site, mode = event
            if mode == "short":
                self.faults.inject_short_write(site, fraction=0.5)
            elif mode == "eio":
                self.faults.inject_eio(site)
            else:
                self.faults.inject_enospc(site)
        elif kind == "ckpt_fault":
            if event[1] == "eio":
                self.faults.inject_eio("checkpoint_write")
            else:
                self.faults.inject_enospc("checkpoint_write")
        else:
            raise ValueError(f"unknown chaos event kind {kind!r}")
        return oracle_due, joined

    def _apply_disk_shrink(self, group, fraction: float) -> None:
        """Resize the shared budget against the *current* usage.

        ``fraction < 0.5``: severe — the hard watermark lands below what
        is already on disk, so the server must enter read-only mode.
        ``fraction >= 0.5``: mild — only the soft watermark is crossed,
        driving the checkpoint-then-prune path on the next write.
        """
        from .resources import state_dir_usage

        budget = group.primary.reliability.resources
        usage = max(state_dir_usage(group.state_dir)[0], 4096)
        if fraction < 0.5:
            budget.hard_limit_bytes = max(1, int(usage * (0.4 + fraction)))
            budget.soft_limit_bytes = max(1, budget.hard_limit_bytes // 2)
        else:
            budget.soft_limit_bytes = max(1, int(usage * (fraction - 0.25)))
            budget.hard_limit_bytes = usage * 8

    def _reconcile_resources(self, group) -> None:
        manager = group.primary._manager
        if manager is not None and manager.resources is not None:
            manager.resources.reconcile(group.primary)

    def _honor_update_contract(self, group, t: int) -> None:
        """Re-report motions about to age out of the update window.

        The paper's model (Section 4) has every object report at least
        every U timestamps; the maintained structures assume it.  A
        random schedule cannot guarantee it, so the executor plays the
        part of the dutiful objects: after each tick, any motion at age
        >= U is refreshed at its predicted position (or retired, if it
        drifted off the domain) — through the full logged write path.
        """
        max_age = group.primary.config.max_update_interval
        domain = group.primary.config.domain
        stale = [
            m for m in group.primary.table.motions() if t - m.t_ref >= max_age
        ]
        for m in stale:
            x, y = m.position_at(t)
            if domain.contains_point(x, y):
                group.report(m.oid, x, y, m.vx, m.vy)
            else:
                group.retire(m.oid)

    def _pick_replica(self, group, fraction: float):
        if not group.replicas:
            return None
        return group.replicas[int(fraction * len(group.replicas)) % len(group.replicas)]

    def _flip(self, group, event: Event) -> bool:
        kind, f_file, f_offset, xor = event
        suffix = ".jsonl" if kind == "flip_wal" else ".npz"
        prefix = "wal-" if kind == "flip_wal" else "ckpt-"
        names = sorted(
            n for n in os.listdir(group.state_dir)
            if n.startswith(prefix) and n.endswith(suffix)
        )
        candidates = [
            n for n in names
            if os.path.getsize(os.path.join(group.state_dir, n)) > 0
        ]
        if not candidates:
            return False
        name = candidates[int(f_file * len(candidates)) % len(candidates)]
        path = os.path.join(group.state_dir, name)
        flip_byte(path, int(f_offset * os.path.getsize(path)),
                  xor=xor, faults=self.faults)
        return True

    # ------------------------------------------------------------------
    # oracles
    # ------------------------------------------------------------------
    def _note_served(self, group, result) -> None:
        self._assert_staleness(group, result.served_by)

    def _assert_staleness(self, group, served) -> None:
        if served and served != group.primary_name:
            for replica in group.replicas:
                if replica.name == served:
                    lag = replica.lag(group.acked_lsn)
                    # recorded at serve time; checked by the router already,
                    # asserted here as the independent staleness oracle
                    if lag > group.replication.staleness_bound:
                        raise AssertionError(
                            f"staleness oracle: {served} served at lag {lag} "
                            f"> bound {group.replication.staleness_bound}"
                        )

    def _check_oracles(self, group, max_acked: int,
                       net: Optional[_NetworkHarness] = None,
                       ) -> Optional[Tuple[str, str]]:
        if net is not None:
            verdict = net.call(self._run_oracles, group, max_acked)
            if verdict is None:
                verdict = self._check_wire_oracles(group, net)
        else:
            verdict = self._run_oracles(group, max_acked)
        tm.CHAOS_ORACLES.labels("fail" if verdict is not None else "pass").inc()
        return verdict

    def _check_wire_oracles(self, group,
                            net: _NetworkHarness) -> Optional[Tuple[str, str]]:
        """The two network invariants, from the client's point of view."""
        wal = net.call(lambda: group.primary.wal_lsn or 0)
        if net.client.max_acked_lsn > wal:
            return (
                "no-acked-wire-loss",
                f"client holds ack for lsn {net.client.max_acked_lsn} but "
                f"the primary WAL stops at {wal}",
            )
        if net.client.sheds_missing_retry_after > 0:
            return (
                "shed-retry-after",
                f"{net.client.sheds_missing_retry_after} shed/draining "
                "frame(s) arrived without retry_after",
            )
        return None

    def _run_oracles(self, group, max_acked: int) -> Optional[Tuple[str, str]]:
        verdict = self._readonly_monotone(group)
        if verdict is not None:
            return verdict
        try:
            group.catch_up_replicas()
        except ReproError as exc:
            return ("replica-convergence", f"catch-up failed: {exc}")
        if (group.primary.wal_lsn or 0) < max_acked:
            return (
                "no-acked-write-loss",
                f"primary WAL at lsn {group.primary.wal_lsn} < acked {max_acked}",
            )
        violations = group.primary.audit(raise_on_violation=False)
        if violations:
            return ("structural-audit", "; ".join(violations))
        if len(group.primary.table) > 0:
            q = group.primary.make_query(qt=group.tnow, varrho=2.0)
            # the maintained structures answer only within the prediction
            # window; a chaos workload lets motions expire (no forced
            # re-report within U), so the oracle must share that filter —
            # exactly the one the structural audit cross-checks
            horizon = group.primary.config.horizon
            in_window = [
                m for m in group.primary.table.motions()
                if m.t_ref <= q.qt <= m.t_ref + horizon
            ]
            want = bruteforce_from_motions(
                in_window, group.primary.config.domain, q
            )
            got = group.primary.evaluate("fr", q)
            diff = got.regions.symmetric_difference_area(want.regions)
            if diff > 1e-6:
                return (
                    "answer-vs-bruteforce",
                    f"FR answer diverged from the oracle by area {diff}",
                )
        for replica in group.replicas:
            if replica.lag(group.acked_lsn) != 0:
                return ("replica-convergence",
                        f"{replica.name} still lags after catch-up")
            if not np.array_equal(
                replica.server.pa.state_arrays()["coeffs"],
                group.primary.pa.state_arrays()["coeffs"],
            ) or not np.array_equal(
                replica.server.histogram.state_arrays()["counts"],
                group.primary.histogram.state_arrays()["counts"],
            ):
                return ("replica-convergence",
                        f"{replica.name} is not bit-exact with the primary")
        report = verify_state_dir(group.state_dir)
        if not report.clean:
            return ("durable-integrity", report.summary())
        return None

    def _readonly_monotone(self, group) -> Optional[Tuple[str, str]]:
        """Read-only mode must track the budget state after reconcile.

        Every event is followed by :meth:`_reconcile_resources`, so by
        oracle time the server must be read-only iff the disk budget is
        at its hard watermark (or the WAL is still poisoned because the
        reopen itself failed) — degraded mode may neither lag the budget
        nor linger after it recovers.
        """
        manager = getattr(group.primary, "_manager", None)
        if manager is None or manager.resources is None:
            return None
        res = manager.resources
        usage = res.usage()
        state = res.budget.state(usage)
        if state == "hard" and not group.primary.read_only:
            return (
                "readonly-monotone",
                f"disk budget hard at {usage} bytes but the primary "
                "still accepts writes",
            )
        if state != "hard" and not manager.wal_poisoned and group.primary.read_only:
            return (
                "readonly-monotone",
                f"disk budget {state} at {usage} bytes and the WAL is "
                "healthy, yet the primary is still read-only "
                f"({group.primary.read_only_reason})",
            )
        return None

    # ------------------------------------------------------------------
    # the campaign
    # ------------------------------------------------------------------
    def run(self) -> ChaosResult:
        """Generate, execute and — on failure — shrink one campaign."""
        events = self.build_schedule()
        failure, stats, state_dir = self.execute(events)
        if failure is None:
            return ChaosResult(
                ok=True, seed=self.config.seed, events_run=len(events),
                stats=stats, final_state_dir=state_dir,
            )
        reproducer = events
        if self.config.shrink:
            reproducer = self.shrink(events)
        return ChaosResult(
            ok=False, seed=self.config.seed, events_run=len(events),
            stats=stats, failure=failure, reproducer=reproducer,
            final_state_dir=state_dir,
        )

    def shrink(self, events: List[Event]) -> List[Event]:
        """ddmin the failing schedule down to a minimal reproducer."""

        def still_fails(candidate: List[Event]) -> bool:
            failure, _stats, _dir = self.execute(candidate)
            return failure is not None

        return ddmin(events, still_fails, max_runs=self.config.max_shrink_runs)
