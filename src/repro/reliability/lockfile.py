"""Exclusive state-directory locking: one WAL writer per machine.

Once a supervisor restarts children automatically, the failure mode "two
server processes open the same WAL" stops being operator error and
becomes a race the system must lose *safely*: a half-dead child that
lingers past its replacement, or two supervisors pointed at one
directory, would interleave appends and corrupt the LSN chain.

:func:`acquire_state_dir_lock` takes a ``fcntl.flock`` exclusive lock on
``<state_dir>/LOCK`` before the WAL is opened for append
(:class:`~repro.reliability.recovery.ReliabilityManager` acquires it in
its constructor and releases it on close).  Properties that matter here:

* **Released by the kernel on process death** — a SIGKILLed child never
  leaves a stale lock behind, so the supervisor's restart needs no lock
  breaking, timeouts or pid-liveness heuristics.
* **Advisory and re-entrant per process** (via a process-local refcount):
  the in-process test suites legitimately "crash" a server object and
  recover the same directory without the dead object ever closing — the
  same OS process may hold the lock any number of times.  Only a
  *different* process is refused.
* **Informative refusal**: the holder writes ``{pid, created,
  created_monotonic, hostname}`` into the lock file, so :class:`~repro.core.errors.StateDirLockedError` (CLI
  exit code 11) can say who owns the directory.

The ``LOCK`` file itself is never deleted (unlinking a lock file is the
classic double-lock race: a waiter holding an fd to the unlinked inode
and a newcomer locking the fresh file both "win").
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from typing import Dict, Optional

from ..core.errors import StateDirLockedError

__all__ = ["LOCK_FILENAME", "StateDirLock", "acquire_state_dir_lock"]

LOCK_FILENAME = "LOCK"

try:  # pragma: no cover - import guard for non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None


class _Hold:
    __slots__ = ("fd", "count")

    def __init__(self, fd: int) -> None:
        self.fd = fd
        self.count = 1


_holds: Dict[str, _Hold] = {}
_holds_mutex = threading.Lock()


class StateDirLock:
    """One acquisition of a state directory's lock; call :meth:`release`."""

    def __init__(self, key: str, path: str) -> None:
        self._key = key
        self.path = path
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        with _holds_mutex:
            hold = _holds.get(self._key)
            if hold is None:  # pragma: no cover - release without acquire
                return
            hold.count -= 1
            if hold.count > 0:
                return
            del _holds[self._key]
            if fcntl is not None:
                try:
                    fcntl.flock(hold.fd, fcntl.LOCK_UN)
                except OSError:  # pragma: no cover - unlock best-effort
                    pass
            try:
                os.close(hold.fd)
            except OSError:  # pragma: no cover - close best-effort
                pass

    def __enter__(self) -> "StateDirLock":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def _read_holder(path: str) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.loads(fh.read() or "{}")
    except (OSError, ValueError):
        return None


def acquire_state_dir_lock(state_dir: str) -> StateDirLock:
    """Lock ``state_dir`` for exclusive WAL access by this process.

    Re-entrant within one process (refcounted); raises
    :class:`StateDirLockedError` when another process holds the lock.
    """
    key = os.path.realpath(state_dir)
    path = os.path.join(state_dir, LOCK_FILENAME)
    with _holds_mutex:
        hold = _holds.get(key)
        if hold is not None:
            hold.count += 1
            return StateDirLock(key, path)
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            if fcntl is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                except (BlockingIOError, PermissionError) as exc:
                    holder = _read_holder(path) or {}
                    raise StateDirLockedError(
                        f"state directory {state_dir!r} is locked by another "
                        f"process (pid {holder.get('pid', 'unknown')} on "
                        f"{holder.get('hostname', 'unknown host')}); two "
                        "servers must never append to the same WAL",
                        holder=holder,
                    ) from exc
            # Advertise ourselves for the error message of the next loser.
            # ``created`` (wall clock) can jump under NTP steps; the
            # monotonic twin lets diagnostics compute a trustworthy hold
            # age, and the hostname disambiguates network filesystems.
            os.ftruncate(fd, 0)
            os.write(
                fd,
                json.dumps(
                    {
                        "pid": os.getpid(),
                        "created": time.time(),
                        "created_monotonic": time.monotonic(),
                        "hostname": socket.gethostname(),
                    }
                ).encode("utf-8"),
            )
        except StateDirLockedError:
            os.close(fd)
            raise
        except OSError:
            os.close(fd)
            raise
        _holds[key] = _Hold(fd)
        return StateDirLock(key, path)
