"""Front-door admission control: rate limiting, shedding, circuit breaking.

A serving tier protecting itself from overload has to make three
decisions per query *before* any evaluation work happens:

* **Can the group afford it right now?**  A token bucket refilled at
  ``rate`` tokens per second (burst-capped) is charged the query's *cost
  class* — FR costs more than PA, PA more than the histogram bounds.
  When the requested class is unaffordable the controller degrades the
  request down the same ``fr -> pa -> dh-optimistic`` ladder the deadline
  machinery uses, trading answer precision for admission.  When even the
  cheapest rung is unaffordable, the query is shed with a
  :class:`~repro.core.errors.AdmissionRejectedError` carrying
  ``retry_after`` — an overloaded group answers *something* (cheap
  approximations and polite rejections) instead of building an unbounded
  queue and missing every deadline.
* **Is there a seat?**  A concurrency cap bounds in-flight evaluations
  regardless of token balance (tokens bound throughput, seats bound
  memory/latency amplification).
* **Is the chosen backend healthy?**  A per-backend
  :class:`CircuitBreaker` ejects a repeatedly failing replica from the
  rotation and re-admits it after a probation period via a half-open
  probe, so one sick backend cannot eat every query's retry budget.

Everything is driven by an injectable :class:`~repro.reliability.faults.Clock`,
so overload scenarios are exact in tests (virtual time) and real in
production (monotonic time).
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.errors import AdmissionRejectedError, InvalidParameterError
from ..telemetry import instruments as tm
from ..telemetry.journal import JOURNAL
from .deadline import DEGRADATION_LADDER
from .faults import Clock

__all__ = [
    "TokenBucket",
    "CircuitBreaker",
    "AdmissionConfig",
    "AdmissionController",
    "DEFAULT_COST_CLASSES",
]

# Relative evaluation cost per method, in tokens.  The ordering mirrors
# measured work: FR touches the index and refines candidates (I/O), PA is
# a branch-and-bound over coefficients, the histogram bounds are O(m^2)
# arithmetic.  Bruteforce/edq scan every object and are priced out.
DEFAULT_COST_CLASSES: Dict[str, float] = {
    "fr": 4.0,
    "fr-optimized": 4.0,
    "pa": 2.0,
    "dh-optimistic": 1.0,
    "dh-pessimistic": 1.0,
    "dense-cell": 1.0,
    "bruteforce": 8.0,
    "edq": 8.0,
}


class TokenBucket:
    """A continuously refilled token bucket on an injectable clock."""

    def __init__(self, rate: float, burst: float, clock: Clock) -> None:
        if rate <= 0:
            raise InvalidParameterError(f"refill rate must be positive, got {rate}")
        if burst <= 0:
            raise InvalidParameterError(f"burst must be positive, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.tokens = float(burst)
        self._last = clock.now()

    def _refill(self) -> None:
        now = self.clock.now()
        if now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now

    def try_take(self, cost: float) -> bool:
        """Charge ``cost`` tokens if the balance allows; never blocks."""
        self._refill()
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def seconds_until(self, cost: float) -> float:
        """Time until ``cost`` tokens will be available (0 if already)."""
        self._refill()
        deficit = cost - self.tokens
        return max(0.0, deficit / self.rate)


class CircuitBreaker:
    """Closed -> open -> half-open failure isolation for one backend.

    ``threshold`` consecutive failures open the breaker for
    ``probation_seconds``; the first :meth:`allow` after probation is a
    half-open probe whose outcome closes or re-opens it.
    """

    def __init__(
        self,
        clock: Clock,
        threshold: int = 3,
        probation_seconds: float = 5.0,
        name: Optional[str] = None,
    ) -> None:
        if threshold < 1:
            raise InvalidParameterError(f"breaker threshold must be >= 1, got {threshold}")
        if probation_seconds <= 0:
            raise InvalidParameterError(
                f"probation must be positive, got {probation_seconds}"
            )
        self.clock = clock
        self.threshold = threshold
        self.probation_seconds = float(probation_seconds)
        self.name = name
        self.failures = 0
        self.state = "closed"
        self._open_until = 0.0

    def _transition(self, state: str) -> None:
        """Change state, journaling only *actual* transitions."""
        if state == self.state:
            return
        old, self.state = self.state, state
        JOURNAL.emit(
            "breaker." + state.replace("-", "_"),
            backend=self.name,
            previous=old,
            failures=self.failures,
        )

    def allow(self) -> bool:
        """May a request be routed to this backend right now?"""
        if self.state == "open" and self.clock.now() >= self._open_until:
            self._transition("half-open")
        return self.state != "open"

    def record_success(self) -> None:
        self.failures = 0
        self._transition("closed")

    def record_failure(self) -> None:
        self.failures += 1
        # A failed half-open probe re-opens immediately; a closed breaker
        # opens only once the consecutive-failure threshold is reached.
        if self.state == "half-open" or self.failures >= self.threshold:
            self._open_until = self.clock.now() + self.probation_seconds
            self._transition("open")


@dataclass
class AdmissionConfig:
    """Knobs of the front-door admission controller.

    ``rate``/``burst`` shape the token bucket (tokens per second /
    bucket capacity); ``max_concurrent`` caps in-flight evaluations;
    ``cost_classes`` prices each method; ``degrade`` allows the
    controller to admit a cheaper method than requested before shedding.
    """

    rate: float = 100.0
    burst: float = 200.0
    max_concurrent: int = 64
    cost_classes: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_COST_CLASSES)
    )
    degrade: bool = True
    breaker_threshold: int = 3
    breaker_probation_seconds: float = 5.0


class AdmissionController:
    """Decides, per query, to admit / degrade / shed before evaluation."""

    def __init__(self, config: AdmissionConfig, clock: Clock) -> None:
        self.config = config
        self.clock = clock
        self.bucket = TokenBucket(config.rate, config.burst, clock)
        self.in_flight = 0
        self.counters: Counter = Counter()
        self._breakers: Dict[str, CircuitBreaker] = {}
        # Read-only queries are admitted from a thread pool in the serving
        # tier; the bucket's refill-check-charge sequence and the seat
        # counter must not interleave or tokens get double-spent.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def cost_of(self, method: str) -> float:
        return self.config.cost_classes.get(method, 1.0)

    def _rungs(self, method: str) -> Tuple[str, ...]:
        if not self.config.degrade:
            return (method,)
        if method in DEGRADATION_LADDER:
            return DEGRADATION_LADDER[DEGRADATION_LADDER.index(method):]
        return (method,)

    def admit(self, method: str) -> Tuple[str, bool]:
        """Admit ``method`` or a cheaper rung; raise when shedding.

        Returns ``(admitted_method, degraded)``.  Raises
        :class:`AdmissionRejectedError` with a ``retry_after`` computed
        from the bucket's refill rate when even the cheapest acceptable
        rung is unaffordable, or when the concurrency cap is reached.
        """
        with self._lock:
            return self._admit_locked(method)

    def _admit_locked(self, method: str) -> Tuple[str, bool]:
        self.counters["requested"] += 1
        if self.in_flight >= self.config.max_concurrent:
            self.counters["rejected"] += 1
            self.counters["rejected_concurrency"] += 1
            tm.ADMISSION_SHEDS.labels(method).inc()
            tm.slo_record(outcome="shed")
            JOURNAL.emit(
                "shed",
                reason="concurrency",
                method=method,
                in_flight=self.in_flight,
            )
            raise AdmissionRejectedError(
                f"concurrency cap reached ({self.in_flight} in flight, "
                f"cap {self.config.max_concurrent})",
                retry_after=self.bucket.seconds_until(self.cost_of(method)),
            )
        rungs = self._rungs(method)
        for rung in rungs:
            if self.bucket.try_take(self.cost_of(rung)):
                self.counters["admitted"] += 1
                tm.ADMISSION_ADMITTED.inc()
                if rung != method:
                    self.counters["degraded"] += 1
                    tm.ADMISSION_DEGRADED.inc()
                return rung, rung != method
        self.counters["rejected"] += 1
        self.counters["rejected_rate"] += 1
        tm.ADMISSION_SHEDS.labels(method).inc()
        tm.slo_record(outcome="shed")
        JOURNAL.emit("shed", reason="rate", method=method)
        cheapest = rungs[-1]
        raise AdmissionRejectedError(
            f"query load exceeds capacity; {method!r} (and every cheaper "
            f"rung) shed",
            retry_after=self.bucket.seconds_until(self.cost_of(cheapest)),
        )

    @contextmanager
    def slot(self):
        """Holds one concurrency seat for the duration of an evaluation."""
        with self._lock:
            self.in_flight += 1
        try:
            yield
        finally:
            with self._lock:
                self.in_flight -= 1

    # ------------------------------------------------------------------
    # circuit breaking
    # ------------------------------------------------------------------
    def breaker(self, backend: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding ``backend``."""
        with self._lock:
            if backend not in self._breakers:
                self._breakers[backend] = CircuitBreaker(
                    self.clock,
                    threshold=self.config.breaker_threshold,
                    probation_seconds=self.config.breaker_probation_seconds,
                    name=backend,
                )
            return self._breakers[backend]

    def breaker_states(self) -> Dict[str, str]:
        return {name: b.state for name, b in self._breakers.items()}

    def report(self) -> dict:
        """Operator-facing counters (merged into ``reliability_report``)."""
        with self._lock:
            out = dict(self.counters)
            out["in_flight"] = self.in_flight
            out["tokens"] = round(self.bucket.tokens, 6)
            out["breakers"] = self.breaker_states()
            return out
