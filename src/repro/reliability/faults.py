"""Deterministic fault injection at named sites.

Production components call :meth:`FaultInjector.hit` at their fault sites
("buffer.io", "fr.refine", "wal.append", ...).  With no rules armed a hit
is a counter increment and nothing else, so the instrumentation is safe to
leave in the serving path.  Tests arm rules that raise transient errors,
inject delays, or simulate a process crash at the *n*-th hit of a site —
all keyed off deterministic hit counts, never wall-clock or randomness.

Time is abstracted behind a tiny clock interface so that delay injection
and query deadlines compose deterministically: a :class:`VirtualClock`
only advances when something sleeps on it, which makes deadline tests
exact instead of racy.
"""

from __future__ import annotations

import errno
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.errors import InvalidParameterError, TransientIOError

__all__ = [
    "Clock",
    "MonotonicClock",
    "VirtualClock",
    "InjectedCrashError",
    "InjectedShortWrite",
    "FaultInjector",
]


class InjectedCrashError(BaseException):
    """Simulated process death at a fault site.

    Deliberately derives from :class:`BaseException` (like
    ``KeyboardInterrupt``): no amount of ``except Exception`` or
    ``except ReproError`` in the serving path may "survive" a crash —
    the only legitimate response is to restart and recover.
    """


class InjectedShortWrite(OSError):
    """A write that lands only a prefix of its payload before failing.

    Raised at a write fault site *before* the real write; the
    instrumented caller (``UpdateLog``) writes ``fraction`` of the
    payload itself and then treats the site as failed — leaving a torn
    line on disk exactly like a partial write on a filling disk would.
    """

    def __init__(self, site: str, fraction: float = 0.5):
        super().__init__(errno.ENOSPC, f"injected short write at {site!r}")
        self.fraction = float(fraction)


class Clock:
    """Minimal clock interface: ``now()`` seconds and ``sleep(seconds)``."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class MonotonicClock(Clock):
    """Real time: ``time.monotonic`` / ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """A clock that advances only when slept on — deterministic tests."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise InvalidParameterError(f"cannot sleep {seconds} seconds")
        self._now += seconds


@dataclass
class _FaultRule:
    """One armed behavior at a site, triggered by hit count."""

    kind: str  # "error" | "delay" | "crash"
    after: int  # skip this many hits before first trigger
    times: Optional[int]  # trigger at most this many times (None = forever)
    delay_seconds: float = 0.0
    exc_factory: Optional[Callable[[], BaseException]] = None
    fired: int = 0

    def should_fire(self, hit_index: int) -> bool:
        if hit_index <= self.after:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        return True


class FaultInjector:
    """Registry of fault rules plus per-site hit counters.

    ``clock`` defaults to a :class:`VirtualClock` so injected delays are
    deterministic; a server built *without* an injector uses real time.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock: Clock = clock if clock is not None else VirtualClock()
        self._rules: Dict[str, List[_FaultRule]] = {}
        self._hits: Counter = Counter()

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def inject_error(
        self,
        site: str,
        exc_factory: Optional[Callable[[], BaseException]] = None,
        times: Optional[int] = 1,
        after: int = 0,
    ) -> None:
        """Raise at ``site`` (default: a :class:`TransientIOError`)."""
        factory = exc_factory or (lambda: TransientIOError(f"injected I/O fault at {site!r}"))
        self._rules.setdefault(site, []).append(
            _FaultRule(kind="error", after=after, times=times, exc_factory=factory)
        )

    def inject_enospc(
        self, site: str, times: Optional[int] = 1, after: int = 0
    ) -> None:
        """Raise ``OSError(ENOSPC)`` at ``site`` — the disk is full."""
        self.inject_error(
            site,
            exc_factory=lambda: OSError(
                errno.ENOSPC, f"injected ENOSPC at {site!r}: no space left on device"
            ),
            times=times,
            after=after,
        )

    def inject_eio(self, site: str, times: Optional[int] = 1, after: int = 0) -> None:
        """Raise ``OSError(EIO)`` at ``site`` — the device failed the I/O."""
        self.inject_error(
            site,
            exc_factory=lambda: OSError(
                errno.EIO, f"injected EIO at {site!r}: input/output error"
            ),
            times=times,
            after=after,
        )

    def inject_short_write(
        self,
        site: str,
        fraction: float = 0.5,
        times: Optional[int] = 1,
        after: int = 0,
    ) -> None:
        """Let only ``fraction`` of the payload land at ``site``, then fail."""
        if not 0.0 <= fraction < 1.0:
            raise InvalidParameterError(
                f"short-write fraction must be in [0, 1), got {fraction}"
            )
        self.inject_error(
            site,
            exc_factory=lambda: InjectedShortWrite(site, fraction),
            times=times,
            after=after,
        )

    def inject_delay(
        self,
        site: str,
        seconds: float,
        times: Optional[int] = None,
        after: int = 0,
    ) -> None:
        """Sleep ``seconds`` on the injector clock at each triggering hit."""
        if seconds < 0:
            raise InvalidParameterError(f"delay must be >= 0, got {seconds}")
        self._rules.setdefault(site, []).append(
            _FaultRule(kind="delay", after=after, times=times, delay_seconds=seconds)
        )

    def inject_crash(self, site: str, after: int = 0, times: Optional[int] = 1) -> None:
        """Simulate process death at the ``after + 1``-th hit of ``site``."""
        self._rules.setdefault(site, []).append(
            _FaultRule(kind="crash", after=after, times=times)
        )

    def clear(self, site: Optional[str] = None) -> None:
        """Disarm rules (for one site, or all); hit counters are kept.

        Because counters survive, a rule re-armed later with ``after=N``
        would count the *stale* hits of the previous episode toward its
        trigger — call :meth:`reset_counters` between episodes (as the
        chaos scheduler does) when hit counts must start from zero.
        """
        if site is None:
            self._rules.clear()
        else:
            self._rules.pop(site, None)

    def reset_counters(self, site: Optional[str] = None) -> None:
        """Zero the hit counters (for one site, or all).

        Armed rules are untouched; their ``after=N`` offsets now count
        from a fresh zero.  Use together with :meth:`clear` to give each
        chaos episode an independent fault schedule on a shared injector.
        """
        if site is None:
            self._hits.clear()
        else:
            self._hits.pop(site, None)

    # ------------------------------------------------------------------
    # the instrumented side
    # ------------------------------------------------------------------
    def hit(self, site: str) -> None:
        """Record a pass through ``site`` and trigger any armed rules.

        Delays fire before errors/crashes so a single site can model a
        slow-then-failing device.
        """
        self._hits[site] += 1
        index = self._hits[site]
        rules = self._rules.get(site)
        if not rules:
            return
        raiser: Optional[_FaultRule] = None
        for rule in rules:
            if not rule.should_fire(index):
                continue
            rule.fired += 1
            if rule.kind == "delay":
                self.clock.sleep(rule.delay_seconds)
            elif raiser is None:
                raiser = rule
        if raiser is not None:
            if raiser.kind == "crash":
                raise InjectedCrashError(f"injected crash at {site!r} (hit {index})")
            raise raiser.exc_factory()

    def hits(self, site: str) -> int:
        return self._hits[site]
