"""Fault-tolerant serving: the reliability layer of the PDR server.

This package makes :class:`~repro.core.system.PDRServer` survive hostile
inputs and partial failures.  Six pillars:

* **Ingestion hardening** (:mod:`.validation`): every report is validated
  at the ``report()`` boundary and rejects are routed to a bounded
  dead-letter queue with per-reason counters instead of raising
  mid-mutation, so the maintained structures can never diverge from each
  other on bad input.
* **Query deadlines** (:mod:`.deadline`): a per-query time budget under
  which evaluation degrades ``fr -> pa -> dh-optimistic`` bounds, with
  retry-with-backoff for transient faults.
* **Checkpoint/replay recovery** (:mod:`.recovery`): periodic full
  checkpoints plus an append-only update log; ``PDRServer.recover()``
  restores state as checkpoint + log replay and audits the structural
  invariants afterwards.
* **Deterministic fault injection** (:mod:`.faults`): named fault sites
  at which tests inject I/O errors, delays and crash points.
* **Replication + failover** (:mod:`.replication`): a
  :class:`ReplicationGroup` ships the primary's WAL to N replicas,
  serves staleness-bounded reads from them, and promotes the
  most-caught-up replica (audited, epoch-fenced) when the primary's
  lease lapses.
* **Admission control** (:mod:`.admission`): a front-door token bucket
  with per-method cost classes, a concurrency cap and per-backend
  circuit breakers; overload degrades ``fr -> pa -> dh-optimistic`` and
  then sheds with ``retry_after`` instead of collapsing.
* **State integrity** (:mod:`.integrity`): every WAL record is
  checksum-framed and every checkpoint artifact digest-pinned by the
  manifest; :func:`verify_state_dir` scrubs a state directory
  (clean / torn-tail / corrupt), :func:`scrub_state_dir` quarantines the
  damage, and :func:`repair_state_dir` heals it from a caught-up replica
  (anti-entropy).  The seeded chaos simulator that exercises all of this
  end to end lives in :mod:`.chaos`.

:mod:`.recovery` is deliberately *not* imported here: it depends on
:mod:`repro.storage.snapshot`, which imports :mod:`repro.core.system` —
import it lazily (as ``PDRServer.recover`` does) to avoid the cycle.
:mod:`.chaos` is kept out for the same reason (it drives a full
``PDRServer`` stack); import it directly.
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    CircuitBreaker,
    TokenBucket,
)
from .deadline import DEGRADATION_LADDER, Deadline, evaluate_with_degradation, run_with_retries
from .faults import FaultInjector, InjectedCrashError, MonotonicClock, VirtualClock
from .integrity import (
    FileStatus,
    IntegrityReport,
    flip_byte,
    frame_record,
    parse_wal_line,
    repair_state_dir,
    scrub_state_dir,
    verify_state_dir,
)
from .replication import (
    FailoverCoordinator,
    Replica,
    ReplicationConfig,
    ReplicationGroup,
    ReplicationLink,
    ShippedRecord,
)
from .validation import (
    REJECT_REASONS,
    DeadLetterQueue,
    RejectedReport,
    ReliabilityConfig,
    ReportPolicy,
    ReportValidator,
    ResourceConfig,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "CircuitBreaker",
    "DEGRADATION_LADDER",
    "Deadline",
    "DeadLetterQueue",
    "evaluate_with_degradation",
    "FailoverCoordinator",
    "FaultInjector",
    "FileStatus",
    "flip_byte",
    "frame_record",
    "InjectedCrashError",
    "IntegrityReport",
    "MonotonicClock",
    "parse_wal_line",
    "repair_state_dir",
    "scrub_state_dir",
    "verify_state_dir",
    "REJECT_REASONS",
    "RejectedReport",
    "ReliabilityConfig",
    "Replica",
    "ReplicationConfig",
    "ReplicationGroup",
    "ReplicationLink",
    "ReportPolicy",
    "ReportValidator",
    "ResourceConfig",
    "ShippedRecord",
    "TokenBucket",
    "run_with_retries",
    "VirtualClock",
]
