"""Checkpoint/replay recovery: the durability layer of the PDR server.

State directory layout::

    server-config.json     system + reliability configuration (written once)
    wal-<seq>.jsonl        append-only update log segments (one per epoch);
                           each line is a checksum-framed record
                           ``lsn:crc:payload`` (see reliability.integrity)
    ckpt-<seq>.npz         full state checkpoint (atomic snapshot write)
    ckpt-<seq>.json        checkpoint sidecar {seq, lsn, tnow}; its presence
                           marks the .npz as complete
    MANIFEST.json          {"seq": n, "digests": {...}} — the newest durable
                           checkpoint plus per-file checksums of every
                           checkpoint artifact
    quarantine/            corrupt files moved aside by the scrubber

Every accepted update (report / retire / advance) is appended to the
current WAL segment *before* it is applied (write-ahead), tagged with a
monotonically increasing LSN.  A checkpoint captures the full maintained
state plus the LSN of the last applied record, then rotates the log to a
fresh segment.  Recovery = newest loadable checkpoint + replay of every
logged record with a higher LSN, which reproduces the exact float state
of an uncrashed run (replay re-executes the same numpy operations in the
same order on bit-identical starting arrays).

Crash safety at every step:

* a crash before the WAL append loses only the in-flight record — the
  caller never saw it acknowledged;
* a crash after the append but before the apply is healed by replay;
* a crash during a checkpoint leaves the manifest pointing at the
  previous checkpoint, whose WAL segments are still intact;
* a torn final WAL line (torn write) is detected and truncated on
  recovery;
* a record whose checksum fails *mid*-log is corruption, not a torn
  write: replay raises :class:`~repro.core.errors.CorruptionError` and
  the integrity layer (:mod:`.integrity`) quarantines the segment and
  repairs the LSN range from a caught-up replica.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import time
from typing import Callable, Iterator, List, Optional, Tuple

from ..core.errors import (
    AuditError,
    CorruptionError,
    IndexError_,
    RecoveryError,
    StorageError,
    WALWriteError,
)
from ..telemetry import instruments as tm
from .crashpoints import crashpoint
from .faults import FaultInjector, InjectedShortWrite
from .integrity import file_crc, frame_record, parse_wal_line
from .lockfile import acquire_state_dir_lock
from .validation import ReliabilityConfig, ReportPolicy, ResourceConfig

__all__ = [
    "UpdateLog",
    "ReliabilityManager",
    "recover_server",
    "audit_server",
    "records_from_lsn",
    "load_latest_checkpoint",
]

_WAL_RE = re.compile(r"^wal-(\d{8})\.jsonl$")
_CKPT_RE = re.compile(r"^ckpt-(\d{8})\.json$")


def _wal_path(state_dir: str, seq: int) -> str:
    return os.path.join(state_dir, f"wal-{seq:08d}.jsonl")


def _ckpt_npz_path(state_dir: str, seq: int) -> str:
    return os.path.join(state_dir, f"ckpt-{seq:08d}.npz")


def _ckpt_sidecar_path(state_dir: str, seq: int) -> str:
    return os.path.join(state_dir, f"ckpt-{seq:08d}.json")


def _manifest_path(state_dir: str) -> str:
    return os.path.join(state_dir, "MANIFEST.json")


def _server_config_path(state_dir: str) -> str:
    return os.path.join(state_dir, "server-config.json")


def _atomic_write_json(
    path: str, payload: dict, crash_site: Optional[str] = None
) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
        fh.flush()
        os.fsync(fh.fileno())
    if crash_site is not None:
        # the classic crash window: tmp durable but the rename not yet
        # issued — recovery must ignore the stray .tmp and keep serving
        # from whatever the path pointed at before
        crashpoint(crash_site)
    os.replace(tmp, path)


def _list_seqs(state_dir: str, pattern: re.Pattern) -> List[int]:
    seqs = []
    for name in os.listdir(state_dir):
        match = pattern.match(name)
        if match:
            seqs.append(int(match.group(1)))
    return sorted(seqs)


def _checkpoint_digests(state_dir: str) -> dict:
    """Per-file checksums of every checkpoint artifact currently present.

    Stored in the manifest so recovery (and the integrity scrubber) can
    reject a bit-rotted image instead of trusting whatever still parses.
    Entries for files that pruning later removes are simply ignored.
    """
    digests = {}
    for name in os.listdir(state_dir):
        if name.startswith("ckpt-") and (name.endswith(".npz") or name.endswith(".json")):
            digests[name] = file_crc(os.path.join(state_dir, name))
    return digests


class UpdateLog:
    """One append-only WAL segment of checksum-framed JSONL records.

    Each line is ``lsn:crc:payload`` (see
    :func:`~repro.reliability.integrity.frame_record`); legacy unframed
    lines written before framing existed are still read back, so an old
    state directory upgrades in place as new appends land.

    **The fsyncgate rule.**  Any write/flush/fsync failure permanently
    *poisons* this segment's descriptor: after a failed fsync the kernel
    may have dropped exactly the dirty pages whose writeback failed, so
    retrying fsync on the same descriptor can falsely report success.
    A poisoned log closes its descriptor (without another fsync), raises
    :class:`~repro.core.errors.WALWriteError` for the failed append and
    every later one, and never touches the file again — recovery means
    a *fresh* segment via
    :meth:`ReliabilityManager.reopen_wal`.  Fault sites: ``wal_write``
    fires before the write+flush, ``wal_fsync`` before the fsync; both
    accept injected ``OSError`` (ENOSPC / EIO / short writes).
    """

    def __init__(
        self, path: str, fsync: bool = True, faults: Optional[FaultInjector] = None
    ) -> None:
        self.path = path
        self.fsync = fsync
        self.faults = faults
        self.poisoned = False
        self.fsync_calls = 0  # issued on THIS descriptor; frozen once poisoned
        self._fh = open(path, "a", encoding="utf-8")

    def _poison(self, exc: BaseException) -> None:
        """Mark the descriptor dead and close it — without fsync (the
        dirty-page state it would have covered is already lost)."""
        self.poisoned = True
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - close on a failed fd
            pass
        raise WALWriteError(
            f"update log {self.path!r} poisoned by failed write/fsync: {exc}"
        ) from exc

    def _write_flush(self, data: str) -> None:
        if self.poisoned:
            raise WALWriteError(
                f"update log {self.path!r} is poisoned; open a fresh segment"
            )
        try:
            if self.faults is not None:
                self.faults.hit("wal_write")
            crashpoint("wal_write", payload=data, fh=self._fh)
            self._fh.write(data)
            self._fh.flush()
        except InjectedShortWrite as exc:
            # land a prefix of the payload first: the torn line a real
            # partial write would leave for recovery to repair
            try:
                self._fh.write(data[: max(1, int(len(data) * exc.fraction))])
                self._fh.flush()
            except OSError:
                pass
            self._poison(exc)
        except OSError as exc:
            self._poison(exc)

    def _fsync_once(self) -> None:
        try:
            if self.faults is not None:
                self.faults.hit("wal_fsync")
            crashpoint("wal_fsync")
            self.fsync_calls += 1
            os.fsync(self._fh.fileno())
        except OSError as exc:
            self._poison(exc)

    def append(self, record: dict) -> None:
        t0 = time.perf_counter()
        self._write_flush(frame_record(record))
        t1 = time.perf_counter()
        if self.fsync:
            self._fsync_once()
            tm.WAL_FSYNC_SECONDS.observe(time.perf_counter() - t1)
        tm.WAL_APPEND_SECONDS.observe(t1 - t0)
        tm.WAL_RECORDS.inc()

    def append_many(self, records) -> None:
        """Group commit: one write + flush + fsync for the whole batch.

        The on-disk bytes are identical to sequential :meth:`append` calls
        — each record is individually framed — so recovery and replication
        cannot tell the difference; only the syscall count changes.
        """
        if not records:
            return
        t0 = time.perf_counter()
        self._write_flush("".join(frame_record(record) for record in records))
        t1 = time.perf_counter()
        if self.fsync:
            self._fsync_once()
            tm.WAL_FSYNC_SECONDS.observe(time.perf_counter() - t1)
        tm.WAL_APPEND_SECONDS.observe(t1 - t0)
        tm.WAL_RECORDS.inc(len(records))

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    @staticmethod
    def read_records(path: str, repair: bool = False) -> List[dict]:
        """Parse a segment; a torn final line is dropped (and, with
        ``repair``, truncated from the file so later appends stay valid).
        A bad line anywhere *else* — including a record whose checksum
        does not match — means real corruption and raises
        :class:`~repro.core.errors.CorruptionError` naming the segment;
        it must be quarantined and repaired, never truncated mid-log."""
        records: List[dict] = []
        good_bytes = 0
        torn = False
        with open(path, "rb") as fh:
            data = fh.read()
        lines = data.splitlines(keepends=True)
        for i, line in enumerate(lines):
            try:
                text = line.decode("utf-8")
                if not text.endswith("\n"):
                    raise ValueError("unterminated line")
                records.append(parse_wal_line(text))
                good_bytes += len(line)
            except (UnicodeDecodeError, ValueError) as exc:
                if i == len(lines) - 1:
                    torn = True  # tolerated only as the very last line
                    break
                raise CorruptionError(
                    f"corrupt update log {path!r}: {exc} at line {i + 1} "
                    "before end of file",
                    path=path,
                    line=i + 1,
                ) from exc
        if torn and repair:
            with open(path, "rb+") as fh:
                fh.truncate(good_bytes)
        return records


class ReliabilityManager:
    """Owns the WAL and the checkpoint cycle for one server.

    Fault sites: ``wal.append`` fires before each record is written,
    ``checkpoint.write`` before the snapshot file is written and
    ``checkpoint.manifest`` before the manifest flip — the three distinct
    failure windows of the durability protocol.
    """

    def __init__(
        self,
        state_dir: str,
        config: ReliabilityConfig,
        seq: int,
        lsn: int,
        last_checkpoint_tick: Optional[int] = None,
    ) -> None:
        self.state_dir = state_dir
        self.config = config
        self.faults: Optional[FaultInjector] = config.faults
        self.seq = seq
        self.lsn = lsn
        self.last_checkpoint_tick = last_checkpoint_tick
        # Exclusive WAL ownership: held for this manager's whole life so a
        # second OS process can never append to the same segments.  The
        # kernel drops it if we are SIGKILLed.
        self._lock = acquire_state_dir_lock(state_dir)
        self._wal = UpdateLog(
            _wal_path(state_dir, seq), fsync=config.fsync, faults=config.faults
        )
        # Budget enforcement rides along only when configured (lazy import:
        # resources.py reaches back into this module for layout helpers).
        self.resources = None
        if config.resources is not None:
            from .resources import ResourceManager

            self.resources = ResourceManager(self, config.resources)
        # Called with each record *after* it is durably appended — the
        # WAL-shipping hook of the replication layer.  A record is only
        # shipped once it is on disk, so a replica can never get ahead of
        # what recovery would reconstruct.
        self.on_append: List[Callable[[dict], None]] = []

    # ------------------------------------------------------------------
    # construction paths
    # ------------------------------------------------------------------
    @classmethod
    def create_fresh(cls, server, config: ReliabilityConfig) -> "ReliabilityManager":
        """Start durability for a brand-new server in an empty directory."""
        state_dir = config.state_dir
        os.makedirs(state_dir, exist_ok=True)
        if os.path.exists(_manifest_path(state_dir)) or _list_seqs(state_dir, _WAL_RE):
            raise StorageError(
                f"state directory {state_dir!r} already holds server state; "
                "use PDRServer.recover() instead of constructing over it"
            )
        from ..storage.snapshot import config_to_dict

        _atomic_write_json(
            _server_config_path(state_dir),
            {
                "config": config_to_dict(server.config),
                "expected_objects": server.expected_objects,
                "tnow0": server.tnow,
                "reliability": {
                    "policy": dataclasses.asdict(config.policy),
                    "dead_letter_capacity": config.dead_letter_capacity,
                    "retries": config.retries,
                    "backoff_seconds": config.backoff_seconds,
                    "checkpoint_interval": config.checkpoint_interval,
                    "keep_checkpoints": config.keep_checkpoints,
                    "fsync": config.fsync,
                    "resources": (
                        config.resources.to_dict() if config.resources else None
                    ),
                },
            },
        )
        return cls(state_dir, config, seq=0, lsn=0)

    @classmethod
    def resume(
        cls, state_dir: str, config: ReliabilityConfig, lsn: int
    ) -> "ReliabilityManager":
        """Re-attach to an existing directory after recovery (torn WAL
        tails must already have been repaired by the replay scan)."""
        wal_seqs = _list_seqs(state_dir, _WAL_RE)
        seq = wal_seqs[-1] if wal_seqs else 0
        return cls(state_dir, config, seq=seq, lsn=lsn)

    # ------------------------------------------------------------------
    # write-ahead logging
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        if self.faults is not None:
            self.faults.hit("wal.append")
        crashpoint("wal.append")
        record["lsn"] = self.lsn + 1
        self._wal.append(record)
        self.lsn += 1
        tm.WAL_LSN.set(self.lsn)
        for callback in self.on_append:
            callback(record)

    def _append_many(self, records: List[dict]) -> None:
        """Durably append a batch under one fault-site hit and one fsync.

        LSNs are assigned sequentially exactly as repeated :meth:`_append`
        calls would, and each record still reaches every ``on_append``
        subscriber individually (replication ships records, not batches).
        """
        if not records:
            return
        if self.faults is not None:
            self.faults.hit("wal.append")
        crashpoint("wal.append")
        for i, record in enumerate(records):
            record["lsn"] = self.lsn + 1 + i
        self._wal.append_many(records)
        self.lsn += len(records)
        tm.WAL_LSN.set(self.lsn)
        for record in records:
            for callback in self.on_append:
                callback(record)

    def log_report(self, oid: int, x: float, y: float, vx: float, vy: float, tnow: int) -> None:
        self._append({"op": "report", "t": tnow, "oid": oid, "x": x, "y": y, "vx": vx, "vy": vy})

    def log_report_batch(self, reports, tnow: int) -> None:
        """Group-commit a wave of ``(oid, x, y, vx, vy)`` reports."""
        self._append_many(
            [
                {"op": "report", "t": tnow, "oid": oid, "x": x, "y": y, "vx": vx, "vy": vy}
                for oid, x, y, vx, vy in reports
            ]
        )

    def log_retire(self, oid: int, tnow: int) -> None:
        self._append({"op": "retire", "t": tnow, "oid": oid})

    def log_advance(self, tnow: int) -> None:
        self._append({"op": "advance", "t": tnow})

    def log_epoch(self, epoch: int, tnow: int) -> None:
        """Durably record a fencing-epoch bump (written at promotion)."""
        self._append({"op": "epoch", "t": tnow, "epoch": epoch})

    def records_from_lsn(self, lsn: int) -> Iterator[dict]:
        """Public replay cursor over this manager's WAL (see module fn)."""
        return records_from_lsn(self.state_dir, lsn)

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def maybe_checkpoint(self, server, tick: int) -> bool:
        interval = self.config.checkpoint_interval
        if interval <= 0:
            return False
        if tick % interval != 0 or tick == self.last_checkpoint_tick:
            return False
        self.checkpoint(server)
        return True

    def checkpoint(self, server) -> int:
        """Write a full checkpoint, flip the manifest, rotate the WAL."""
        from ..storage.snapshot import save_server

        started = time.perf_counter()
        if self.faults is not None:
            self.faults.hit("checkpoint.write")
            self.faults.hit("checkpoint_write")  # resource-fault alias (ENOSPC/EIO)
        crashpoint("checkpoint.write")
        new_seq = self.seq + 1
        save_server(server, _ckpt_npz_path(self.state_dir, new_seq), atomic=True)
        _atomic_write_json(
            _ckpt_sidecar_path(self.state_dir, new_seq),
            {"seq": new_seq, "lsn": self.lsn, "tnow": server.tnow},
            crash_site="checkpoint.sidecar",
        )
        if self.faults is not None:
            self.faults.hit("checkpoint.manifest")
        _atomic_write_json(
            _manifest_path(self.state_dir),
            {"seq": new_seq, "digests": _checkpoint_digests(self.state_dir)},
            crash_site="checkpoint.manifest",
        )
        self._wal.close()
        self.seq = new_seq
        self._wal = UpdateLog(
            _wal_path(self.state_dir, new_seq),
            fsync=self.config.fsync,
            faults=self.faults,
        )
        self.last_checkpoint_tick = server.tnow
        self._prune()
        tm.CHECKPOINTS.inc()
        tm.CHECKPOINT_SECONDS.observe(time.perf_counter() - started)
        return new_seq

    # ------------------------------------------------------------------
    # poisoned-descriptor recovery
    # ------------------------------------------------------------------
    @property
    def wal_poisoned(self) -> bool:
        """True once a write/flush/fsync failed on the current segment's
        descriptor; writes raise until :meth:`reopen_wal` succeeds."""
        return self._wal.poisoned

    def reopen_wal(self) -> None:
        """Leave a poisoned segment behind by opening a *fresh* one.

        The fsyncgate rule forbids touching the poisoned descriptor
        again, but the *file* is fair game through a new descriptor: its
        unacknowledged tail (torn lines, records past the acked LSN that
        a failed fsync may or may not have persisted) is truncated away
        so the LSN chain stays contiguous when the next acked record
        lands in the new segment.  Raises ``OSError`` while the disk is
        still refusing writes — the caller stays read-only and probes
        again later.  No-op on a healthy log.
        """
        if not self._wal.poisoned:
            return
        crashpoint("wal.reopen")
        _truncate_unacked(self._wal.path, self.lsn)
        new_seq = self.seq + 1
        self._wal = UpdateLog(
            _wal_path(self.state_dir, new_seq),
            fsync=self.config.fsync,
            faults=self.faults,
        )
        self.seq = new_seq

    def _prune(self) -> None:
        """Drop checkpoints beyond ``keep_checkpoints`` and WAL segments
        older than the oldest kept checkpoint (still replayable from it).

        Under a :class:`~repro.reliability.resources.ResourceManager` the
        interval rule is superseded by the retention rule, which also
        respects every replica's acknowledged LSN — the keep-N pruner
        would happily drop a tail a partitioned replica is still owed.
        """
        if self.resources is not None:
            crashpoint("wal.prune")
            self.resources.prune()
            return
        keep = max(1, self.config.keep_checkpoints)
        ckpt_seqs = _list_seqs(self.state_dir, _CKPT_RE)
        kept = ckpt_seqs[-keep:]
        for seq in ckpt_seqs[:-keep]:
            for path in (
                _ckpt_npz_path(self.state_dir, seq),
                _ckpt_sidecar_path(self.state_dir, seq),
            ):
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - best-effort
                    pass
        # mid-prune crash window: stale checkpoint artifacts already
        # unlinked, their covered WAL segments not yet — recovery must
        # shrug at the half-deleted generation
        crashpoint("wal.prune")
        if kept:
            for seq in _list_seqs(self.state_dir, _WAL_RE):
                if seq < kept[0]:
                    try:
                        os.unlink(_wal_path(self.state_dir, seq))
                    except OSError:  # pragma: no cover - best-effort
                        pass

    def close(self) -> None:
        self._wal.close()
        self._lock.release()


def _truncate_unacked(path: str, acked_lsn: int) -> None:
    """Cut a poisoned segment back to its acknowledged prefix.

    Operates through a fresh descriptor (the poisoned one is never
    reused).  Keeps every intact framed record with
    ``lsn <= acked_lsn``; the first torn, corrupt or higher-LSN line —
    exactly the bytes whose durability the failed fsync left unknown —
    and everything after it are dropped.  Nothing acknowledged is ever
    in that region: acks happen only after a successful append+fsync.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        return  # nothing on disk to repair
    good_bytes = 0
    for line in data.splitlines(keepends=True):
        try:
            text = line.decode("utf-8")
            if not text.endswith("\n"):
                raise ValueError("unterminated line")
            record = parse_wal_line(text)
            if int(record.get("lsn", acked_lsn + 1)) > acked_lsn:
                break
            good_bytes += len(line)
        except (UnicodeDecodeError, ValueError):
            break
    if good_bytes < len(data):
        with open(path, "rb+") as fh:
            fh.truncate(good_bytes)


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
def _iter_wal_records(state_dir: str, from_seq: int) -> Iterator[Tuple[int, dict]]:
    """All WAL records in LSN order from segment ``from_seq`` on; the
    final segment's torn tail (if any) is repaired in place."""
    seqs = [s for s in _list_seqs(state_dir, _WAL_RE) if s >= from_seq]
    for i, seq in enumerate(seqs):
        last_segment = i == len(seqs) - 1
        for record in UpdateLog.read_records(_wal_path(state_dir, seq), repair=last_segment):
            yield seq, record


def records_from_lsn(state_dir: str, lsn: int) -> Iterator[dict]:
    """Every WAL record with an LSN strictly greater than ``lsn``, in order.

    This is the public replay cursor the replication layer catches up
    with: a replica that has applied up to ``lsn`` asks for everything
    after it, across however many segments the log has rotated through.
    Raises :class:`RecoveryError` while iterating if the log no longer
    reaches back that far — the segments holding ``lsn + 1`` were pruned
    after a checkpoint — or if the surviving records are not contiguous;
    the caller must then bootstrap from a checkpoint image instead
    (:func:`load_latest_checkpoint`).
    """
    if lsn < 0:
        raise RecoveryError(f"replay cursor must be >= 0, got {lsn}")
    expected = lsn + 1
    for _seq, record in _iter_wal_records(state_dir, 0):
        record_lsn = int(record["lsn"])
        if record_lsn <= lsn:
            continue
        if record_lsn != expected:
            raise RecoveryError(
                f"update log in {state_dir!r} cannot replay from lsn {lsn}: "
                f"expected record {expected}, found {record_lsn} "
                f"(older segments pruned or log corrupt)"
            )
        expected += 1
        yield record


def load_latest_checkpoint(state_dir: str):
    """The newest loadable checkpoint image, or ``None``.

    Returns ``(SnapshotState, sidecar)`` where the sidecar dict carries
    ``{"seq", "lsn", "tnow"}`` — the replay cursor to resume from after
    installing the image.  This is the image-transfer half of replica
    catch-up; the other half is :func:`records_from_lsn`.
    """
    return _load_best_checkpoint(state_dir)


def _load_best_checkpoint(state_dir: str):
    """The newest loadable checkpoint at or below the manifest seq, or
    ``None``.  Returns ``(SnapshotState, sidecar_dict)``.

    Candidates are discovered through the anchored ``ckpt-NNNNNNNN.json``
    pattern, so stray ``*.tmp`` leftovers of a crash-during-rename (a
    zero-byte or half-written ``ckpt-*.npz.tmp`` / ``MANIFEST.json.tmp``)
    are never read — the scrubber deletes them.  When the manifest
    records per-file digests, a candidate whose image or sidecar fails
    its digest is skipped exactly like an unreadable one: bit rot falls
    back to the previous checkpoint instead of being replayed on top of.
    """
    from ..storage.snapshot import read_snapshot

    manifest_path = _manifest_path(state_dir)
    if not os.path.exists(manifest_path):
        return None
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
        manifest_seq = int(manifest["seq"])
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        raise RecoveryError(f"corrupt manifest in {state_dir!r}: {exc}") from exc
    digests = manifest.get("digests", {}) if isinstance(manifest, dict) else {}
    if not isinstance(digests, dict):
        digests = {}
    candidates = [s for s in _list_seqs(state_dir, _CKPT_RE) if s <= manifest_seq]
    for seq in reversed(candidates):
        try:
            if _digest_mismatch(state_dir, seq, digests):
                continue  # bit rot: fall back to the previous checkpoint
            with open(_ckpt_sidecar_path(state_dir, seq), "r", encoding="utf-8") as fh:
                sidecar = json.load(fh)
            state = read_snapshot(_ckpt_npz_path(state_dir, seq))
            return state, sidecar
        except (StorageError, OSError, ValueError, KeyError, json.JSONDecodeError):
            continue  # fall back to the previous checkpoint
    return None


def _digest_mismatch(state_dir: str, seq: int, digests: dict) -> bool:
    for path in (_ckpt_npz_path(state_dir, seq), _ckpt_sidecar_path(state_dir, seq)):
        name = os.path.basename(path)
        if name in digests and os.path.exists(path) and file_crc(path) != digests[name]:
            return True
    return False


def recover_server(
    state_dir: str,
    faults: Optional[FaultInjector] = None,
    audit: bool = True,
    expected_objects: Optional[int] = None,
):
    """Reconstruct a :class:`PDRServer` as checkpoint + WAL replay.

    The returned server has durability re-attached (subsequent updates
    append to the same WAL) and, with ``audit`` (the default), has passed
    the structural invariant audit.
    """
    from ..core.system import PDRServer

    config_path = _server_config_path(state_dir)
    if not os.path.exists(config_path):
        raise RecoveryError(f"{state_dir!r} holds no server state (no server-config.json)")
    # Take the exclusive lock before the replay scan: it repairs torn WAL
    # tails in place, which must never race a live writer in another
    # process.  Released below once the resumed manager (which holds its
    # own refcount on the same lock) has taken over.
    boot_lock = acquire_state_dir_lock(state_dir)
    try:
        try:
            with open(config_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
            from ..storage.snapshot import config_from_dict

            system_config = config_from_dict(meta["config"])
            rel_meta = meta["reliability"]
            rc = ReliabilityConfig(
                policy=ReportPolicy(**rel_meta["policy"]),
                dead_letter_capacity=int(rel_meta["dead_letter_capacity"]),
                retries=int(rel_meta["retries"]),
                backoff_seconds=float(rel_meta["backoff_seconds"]),
                state_dir=state_dir,
                checkpoint_interval=int(rel_meta["checkpoint_interval"]),
                keep_checkpoints=int(rel_meta["keep_checkpoints"]),
                fsync=bool(rel_meta["fsync"]),
                faults=faults,
                # absent from directories written before budgets existed
                resources=ResourceConfig.from_dict(rel_meta.get("resources")),
            )
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
            raise RecoveryError(
                f"corrupt server-config.json in {state_dir!r}: {exc}"
            ) from exc

        loaded = _load_best_checkpoint(state_dir)
        if loaded is not None:
            state, sidecar = loaded
            base_lsn = int(sidecar["lsn"])
            from_seq = int(sidecar["seq"])
            tnow = state.tnow
        else:
            state = None
            base_lsn = 0
            from_seq = 0
            tnow = int(meta.get("tnow0", 0))

        # Construct without a live manager (replay must not re-log), restore,
        # then replay the tail of the log.
        server = PDRServer(
            system_config,
            expected_objects=expected_objects or int(meta.get("expected_objects", 1) or 1),
            tnow=tnow,
            reliability=dataclasses.replace(rc, state_dir=None, faults=faults),
        )
        if state is not None:
            from ..storage.snapshot import restore_server_state

            restore_server_state(server, state)

        last_lsn = base_lsn
        for _seq, record in _iter_wal_records(state_dir, from_seq):
            lsn = int(record["lsn"])
            if lsn <= base_lsn:
                continue
            if lsn != last_lsn + 1:
                raise RecoveryError(
                    f"update log gap: expected lsn {last_lsn + 1}, found {lsn}"
                )
            server.apply_logged_record(record)
            last_lsn = lsn

        manager = ReliabilityManager.resume(state_dir, rc, lsn=last_lsn)
        server.attach_manager(manager)
        # The replay-time config carried state_dir=None so construction
        # would not open a second WAL; now that the resumed manager owns
        # durability, the server's visible config tells the truth again
        # (ReplicationGroup reads state_dir from it).
        server.reliability = rc
        if audit:
            try:
                audit_server(server)
            except AuditError:
                manager.close()  # don't leak the resumed WAL descriptor
                raise
        # The recovered server starts a fresh serving life: per-query counters
        # and the stage-seconds accumulators describe *this* incarnation, not
        # the one that crashed (snapshot restore may have carried them over).
        server.query_counters.clear()
        server.stage_seconds.clear()
        # Bump the recovery generation and persist it alongside the config so
        # operators can tell apart incarnations of the same state directory
        # (reports and metrics are tagged with it).
        generation = int(meta.get("generation", 0)) + 1
        meta["generation"] = generation
        _atomic_write_json(config_path, meta)
        server.recovery_generation = generation
        tm.RECOVERIES.inc()
        tm.RECOVERY_GENERATION.set(generation)
        return server
    finally:
        boot_lock.release()


# ----------------------------------------------------------------------
# structural invariant audit
# ----------------------------------------------------------------------
def audit_server(server, raise_on_violation: bool = True) -> List[str]:
    """Cross-check every maintained structure against the object table.

    Checks: TPR-tree structural validity (bounding-rectangle containment
    over the whole subtree, fanout, leaf-map), tree/table cardinality,
    clock alignment of every ring buffer, and histogram totals vs. the
    in-domain in-window object count at every timestamp of the window.
    """
    violations: List[str] = []
    try:
        server.tree.validate()
    except IndexError_ as exc:
        violations.append(f"tpr-tree: {exc}")
    if len(server.tree) != len(server.table):
        violations.append(
            f"tree holds {len(server.tree)} objects, table holds {len(server.table)}"
        )
    tnow = server.table.tnow
    if server.histogram.tnow != tnow:
        violations.append(
            f"histogram clock {server.histogram.tnow} != table clock {tnow}"
        )
    if server.pa.tnow != tnow:
        violations.append(f"PA clock {server.pa.tnow} != table clock {tnow}")
    horizon = server.config.horizon
    domain = server.config.domain
    for qt in range(tnow, tnow + horizon + 1):
        expected = 0
        for motion in server.table.motions():
            if not (motion.t_ref <= qt <= motion.t_ref + horizon):
                continue
            x, y = motion.position_at(qt)
            if domain.contains_point(x, y):
                expected += 1
        observed = server.histogram.total_at(qt)
        if observed != expected:
            violations.append(
                f"histogram total {observed} at t={qt} != {expected} live in-domain objects"
            )
    if violations and raise_on_violation:
        raise AuditError(
            f"recovery audit found {len(violations)} violation(s): "
            + "; ".join(violations),
            violations=violations,
        )
    return violations
