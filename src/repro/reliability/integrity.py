"""End-to-end state integrity: checksummed durability and anti-entropy repair.

The durability layer of :mod:`.recovery` detects *torn* writes (a crash
mid-append) but, before this module, trusted every byte that still parsed
as JSON — a single flipped bit in a WAL payload or a checkpoint array
silently poisons the density histograms and Chebyshev coefficients every
downstream answer depends on.  This module closes that gap end to end:

**Framed WAL records.**  Every record is written as one line

    ``<lsn>:<crc32-hex>:<payload-json>\\n``

where the checksum covers ``"<lsn>:<payload>"`` (a CRC32C-style 32-bit
cyclic redundancy check via :func:`zlib.crc32`), so damage to either the
frame header or the payload is caught on read.  Legacy *unframed* lines
(plain JSON objects, the pre-framing format) are still accepted — old
state directories replay unchanged and are upgraded line-by-line as new
appends land.

**Checkpoint digests.**  ``MANIFEST.json`` carries a per-file digest map
for every checkpoint artifact (``ckpt-*.npz`` and its sidecar), verified
before an image is trusted during recovery or replica bootstrap.

**Scrubbing** (:func:`verify_state_dir`).  Walks a state directory and
classifies every file as ``clean``, ``torn-tail`` (an interrupted final
append of the newest segment — safely truncatable), ``corrupt``
(checksum mismatch or mid-file damage — never truncatable) or
``stray-tmp`` (a ``*.tmp`` leftover of a crash-during-rename).  It also
checks the global LSN chain across segments for gaps.

**Quarantine** (:func:`scrub_state_dir`).  Repairs what is safe to
repair — deletes stray temp files, truncates a torn tail — and moves
corrupt files aside into ``quarantine/`` instead of deleting or
truncating mid-log, so no byte of evidence is lost.

**Anti-entropy repair** (:func:`repair_state_dir`).  Rebuilds the
quarantined LSN range from a caught-up replica's retained record history
(or, when the history does not reach back far enough, installs a fresh
checkpoint image of the replica's state), then re-verifies the whole
directory.  The result is a log that replays to bit-exact state — the
same guarantee crash recovery gives — with the damaged originals intact
in quarantine for forensics.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import IntegrityError, RepairError

__all__ = [
    "FileStatus",
    "IntegrityReport",
    "record_crc",
    "frame_record",
    "parse_wal_line",
    "file_crc",
    "flip_byte",
    "verify_state_dir",
    "scrub_state_dir",
    "quarantine_file",
    "repair_state_dir",
    "QUARANTINE_DIR",
]

QUARANTINE_DIR = "quarantine"


# ----------------------------------------------------------------------
# checksums and record framing
# ----------------------------------------------------------------------
def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def record_crc(lsn: int, payload: str) -> int:
    """Checksum of one framed record: covers the LSN *and* the payload."""
    return _crc(f"{lsn}:{payload}".encode("utf-8"))


def frame_record(record: dict) -> str:
    """One WAL line ``lsn:crc:payload\\n`` for a record carrying its LSN."""
    lsn = int(record["lsn"])
    payload = json.dumps(record, separators=(",", ":"))
    return f"{lsn}:{record_crc(lsn, payload):08x}:{payload}\n"


def parse_wal_line(text: str) -> dict:
    """Parse one WAL line, framed or legacy-unframed.

    Raises :class:`ValueError` on any damage — a malformed frame, a
    checksum mismatch, a header/payload LSN disagreement, or unparseable
    JSON — leaving torn-vs-corrupt classification to the caller, which
    knows whether the line is the final one of the newest segment.
    """
    if text.endswith("\n"):
        text = text[:-1]
    if text.startswith("{"):
        # legacy unframed record (pre-framing format): no checksum to verify
        return json.loads(text)
    head, sep1, rest = text.partition(":")
    crc_hex, sep2, payload = rest.partition(":")
    if not sep1 or not sep2:
        raise ValueError(f"not a framed record: {text[:40]!r}")
    lsn = int(head)
    if int(crc_hex, 16) != record_crc(lsn, payload):
        raise ValueError(f"checksum mismatch on lsn {lsn}")
    record = json.loads(payload)
    if int(record.get("lsn", -1)) != lsn:
        raise ValueError(
            f"frame header lsn {lsn} != payload lsn {record.get('lsn')!r}"
        )
    return record


def file_crc(path: str) -> str:
    """Hex digest of a whole file (checkpoint artifacts, manifest map)."""
    crc = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return f"{crc & 0xFFFFFFFF:08x}"


def flip_byte(path: str, offset: int, xor: int = 0x01, faults=None) -> int:
    """XOR one byte of ``path`` in place (the chaos bit-rot primitive).

    Hits the ``integrity.flip`` fault site when an injector is given, so
    chaos schedules can count (or veto) their injected corruptions.
    Returns the file offset actually flipped (clamped into range).
    """
    if xor % 256 == 0:
        raise IntegrityError("flip_byte xor must change the byte")
    if faults is not None:
        faults.hit("integrity.flip")
    size = os.path.getsize(path)
    if size == 0:
        raise IntegrityError(f"cannot flip a byte of empty file {path!r}")
    offset = max(0, min(int(offset), size - 1))
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ (xor % 256)]))
    return offset


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------
@dataclass
class FileStatus:
    """The scrubber's verdict on one file of a state directory."""

    name: str
    kind: str  # "wal" | "checkpoint" | "sidecar" | "manifest" | "config" | "tmp" | "other"
    state: str  # "clean" | "torn-tail" | "corrupt" | "stray-tmp"
    detail: str = ""
    lsn_first: Optional[int] = None
    lsn_last: Optional[int] = None
    framed_records: int = 0
    legacy_records: int = 0
    good_bytes: Optional[int] = None  # bytes before the torn tail, if any

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "state": self.state,
            "detail": self.detail,
            "lsn_first": self.lsn_first,
            "lsn_last": self.lsn_last,
            "framed_records": self.framed_records,
            "legacy_records": self.legacy_records,
        }


@dataclass
class IntegrityReport:
    """Everything :func:`verify_state_dir` learned about one directory."""

    state_dir: str
    files: List[FileStatus] = field(default_factory=list)
    gaps: List[Tuple[int, int]] = field(default_factory=list)  # (expected, found)
    actions: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No damage: every file clean and the LSN chain unbroken.

        Stray ``*.tmp`` files do not count as damage (recovery ignores
        them; the scrubber deletes them), but they are still listed.
        """
        return not self.damaged() and not self.gaps

    def damaged(self) -> List[FileStatus]:
        return [f for f in self.files if f.state in ("corrupt", "torn-tail")]

    def stray_tmp(self) -> List[FileStatus]:
        return [f for f in self.files if f.state == "stray-tmp"]

    def summary(self) -> str:
        n_wal = sum(1 for f in self.files if f.kind == "wal")
        n_ckpt = sum(1 for f in self.files if f.kind == "checkpoint")
        lines = [
            f"state dir {self.state_dir}: {n_wal} wal segment(s), "
            f"{n_ckpt} checkpoint image(s)"
        ]
        for f in self.files:
            if f.state != "clean":
                lines.append(f"  {f.state}: {f.name} — {f.detail}".rstrip(" —"))
        for expected, found in self.gaps:
            lines.append(f"  log-gap: expected lsn {expected}, found {found}")
        for action in self.actions:
            lines.append(f"  repaired: {action}")
        lines.append("verify: OK" if self.clean else "verify: FAILED")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "state_dir": self.state_dir,
            "clean": self.clean,
            "files": [f.to_dict() for f in self.files],
            "gaps": list(self.gaps),
            "actions": list(self.actions),
        }


@dataclass
class _SegmentScan:
    state: str
    detail: str
    records: List[dict]
    good_bytes: int
    framed: int
    legacy: int


def _scan_segment(path: str, last_segment: bool) -> _SegmentScan:
    """Classify one WAL segment without raising (the scrubber's reader)."""
    records: List[dict] = []
    good_bytes = 0
    framed = legacy = 0
    with open(path, "rb") as fh:
        data = fh.read()
    lines = data.splitlines(keepends=True)
    for i, line in enumerate(lines):
        try:
            text = line.decode("utf-8")
            if not text.endswith("\n"):
                raise ValueError("unterminated line")
            record = parse_wal_line(text)
        except (UnicodeDecodeError, ValueError) as exc:
            if last_segment and i == len(lines) - 1:
                return _SegmentScan(
                    "torn-tail", f"torn final record ({exc})",
                    records, good_bytes, framed, legacy,
                )
            return _SegmentScan(
                "corrupt", f"line {i + 1}: {exc}",
                records, good_bytes, framed, legacy,
            )
        records.append(record)
        good_bytes += len(line)
        if text.lstrip().startswith("{"):
            legacy += 1
        else:
            framed += 1
    return _SegmentScan("clean", "", records, good_bytes, framed, legacy)


def _manifest_digests(state_dir: str) -> Dict[str, str]:
    try:
        with open(os.path.join(state_dir, "MANIFEST.json"), encoding="utf-8") as fh:
            manifest = json.load(fh)
        digests = manifest.get("digests", {})
        return digests if isinstance(digests, dict) else {}
    except (OSError, ValueError, json.JSONDecodeError):
        return {}


def verify_state_dir(state_dir: str) -> IntegrityReport:
    """Walk a state directory and checksum-verify every durable artifact.

    Read-only: nothing is moved, truncated or deleted (that is
    :func:`scrub_state_dir`).  WAL segments are parsed frame-by-frame,
    checkpoint files are verified against the manifest's digests (or
    deep-loaded when the manifest predates digests), and the global LSN
    chain across surviving segments is checked for gaps.
    """
    if not os.path.isdir(state_dir):
        raise IntegrityError(f"{state_dir!r} is not a state directory")
    report = IntegrityReport(state_dir=state_dir)
    names = sorted(os.listdir(state_dir))
    digests = _manifest_digests(state_dir)

    wal_names = [n for n in names if n.startswith("wal-") and n.endswith(".jsonl")]
    chain: Optional[int] = None
    for name in wal_names:
        path = os.path.join(state_dir, name)
        scan = _scan_segment(path, last_segment=(name == wal_names[-1]))
        lsns = [int(r["lsn"]) for r in scan.records if "lsn" in r]
        status = FileStatus(
            name=name, kind="wal", state=scan.state, detail=scan.detail,
            lsn_first=lsns[0] if lsns else None,
            lsn_last=lsns[-1] if lsns else None,
            framed_records=scan.framed, legacy_records=scan.legacy,
            good_bytes=scan.good_bytes,
        )
        report.files.append(status)
        if scan.state == "corrupt":
            # the chain is broken here by definition; restart it after the
            # damage so one corrupt file does not also report as a gap
            chain = None
            continue
        for lsn in lsns:
            if chain is not None and lsn != chain + 1:
                report.gaps.append((chain + 1, lsn))
            chain = lsn

    for name in names:
        path = os.path.join(state_dir, name)
        if name in wal_names or name == QUARANTINE_DIR:
            continue
        if name.endswith(".tmp"):
            report.files.append(FileStatus(
                name=name, kind="tmp", state="stray-tmp",
                detail="leftover of a crash-during-rename; recovery ignores it",
            ))
            continue
        if name.startswith("ckpt-") and name.endswith(".npz"):
            report.files.append(_verify_checkpoint_file(state_dir, name, digests))
            continue
        if name.startswith("ckpt-") and name.endswith(".json"):
            report.files.append(_verify_sidecar(state_dir, name, digests))
            continue
        if name == "MANIFEST.json":
            state, detail = "clean", ""
            try:
                with open(path, encoding="utf-8") as fh:
                    int(json.load(fh)["seq"])
            except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
                state, detail = "corrupt", str(exc)
            report.files.append(FileStatus(name, "manifest", state, detail))
            continue
        if name == "server-config.json":
            state, detail = "clean", ""
            try:
                with open(path, encoding="utf-8") as fh:
                    json.load(fh)
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                state, detail = "corrupt", str(exc)
            report.files.append(FileStatus(name, "config", state, detail))
            continue
        report.files.append(FileStatus(name, "other", "clean"))
    return report


def _verify_checkpoint_file(state_dir: str, name: str, digests: Dict[str, str]) -> FileStatus:
    path = os.path.join(state_dir, name)
    if os.path.getsize(path) == 0:
        return FileStatus(name, "checkpoint", "corrupt", "zero-byte checkpoint")
    if name in digests:
        got = file_crc(path)
        if got != digests[name]:
            return FileStatus(
                name, "checkpoint", "corrupt",
                f"digest {got} != manifest digest {digests[name]}",
            )
        return FileStatus(name, "checkpoint", "clean")
    # no recorded digest (pre-digest manifest): fall back to a deep load
    from ..storage.snapshot import read_snapshot
    from ..core.errors import StorageError

    try:
        read_snapshot(path)
    except StorageError as exc:
        return FileStatus(name, "checkpoint", "corrupt", str(exc))
    return FileStatus(name, "checkpoint", "clean", "no manifest digest; deep-loaded")


def _verify_sidecar(state_dir: str, name: str, digests: Dict[str, str]) -> FileStatus:
    path = os.path.join(state_dir, name)
    if name in digests and file_crc(path) != digests[name]:
        return FileStatus(name, "sidecar", "corrupt", "digest mismatch with manifest")
    try:
        with open(path, encoding="utf-8") as fh:
            sidecar = json.load(fh)
        for key in ("seq", "lsn", "tnow"):
            int(sidecar[key])
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        return FileStatus(name, "sidecar", "corrupt", str(exc))
    return FileStatus(name, "sidecar", "clean")


# ----------------------------------------------------------------------
# quarantine and scrubbing
# ----------------------------------------------------------------------
def quarantine_file(state_dir: str, name: str) -> str:
    """Move one damaged file into ``quarantine/`` (never delete evidence)."""
    qdir = os.path.join(state_dir, QUARANTINE_DIR)
    os.makedirs(qdir, exist_ok=True)
    target = os.path.join(qdir, name)
    suffix = 0
    while os.path.exists(target):
        suffix += 1
        target = os.path.join(qdir, f"{name}.{suffix}")
    os.replace(os.path.join(state_dir, name), target)
    return target


def scrub_state_dir(state_dir: str) -> IntegrityReport:
    """Verify and repair what is *safely* repairable, quarantine the rest.

    * stray ``*.tmp`` files are deleted;
    * a torn tail of the newest segment is truncated (only ever the
      final, unacknowledged-to-nobody record);
    * corrupt files are moved into ``quarantine/`` — a corrupt WAL
      segment is **never** truncated mid-log, and a corrupt checkpoint
      artifact takes its twin (sidecar or image) with it so no
      half-checkpoint can be trusted later.

    Returns a fresh post-scrub report; its ``actions`` list what was
    done.  A directory left unclean (gaps after quarantine) needs
    :func:`repair_state_dir` with a replica source.
    """
    report = verify_state_dir(state_dir)
    actions: List[str] = []
    corrupt_ckpt_stems = set()
    for status in report.files:
        path = os.path.join(state_dir, status.name)
        if status.state == "stray-tmp":
            os.unlink(path)
            actions.append(f"deleted stray temp file {status.name}")
        elif status.state == "torn-tail":
            with open(path, "rb+") as fh:
                fh.truncate(status.good_bytes or 0)
            actions.append(f"truncated torn tail of {status.name}")
        elif status.state == "corrupt":
            if status.kind in ("checkpoint", "sidecar"):
                corrupt_ckpt_stems.add(status.name.rsplit(".", 1)[0])
            elif status.kind in ("wal", "manifest", "config"):
                quarantine_file(state_dir, status.name)
                actions.append(f"quarantined {status.name} ({status.detail})")
    for stem in sorted(corrupt_ckpt_stems):
        for ext in (".npz", ".json"):
            name = stem + ext
            if os.path.exists(os.path.join(state_dir, name)):
                quarantine_file(state_dir, name)
                actions.append(f"quarantined {name}")
    final = verify_state_dir(state_dir)
    final.actions = actions
    return final


# ----------------------------------------------------------------------
# anti-entropy repair
# ----------------------------------------------------------------------
def _missing_runs(present, lo: int, hi: int) -> List[Tuple[int, int]]:
    """Maximal contiguous runs of [lo, hi] absent from ``present``."""
    runs: List[Tuple[int, int]] = []
    start = None
    for lsn in range(lo, hi + 1):
        if lsn in present:
            if start is not None:
                runs.append((start, lsn - 1))
                start = None
        elif start is None:
            start = lsn
    if start is not None:
        runs.append((start, hi))
    return runs


def _write_segment(path: str, records: List[dict], fsync: bool) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(frame_record(record))
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)


def repair_state_dir(
    state_dir: str,
    source=None,
    target_lsn: Optional[int] = None,
    fsync: bool = True,
) -> IntegrityReport:
    """Scrub, then rebuild the log so it replays contiguously to the end.

    ``source`` is the anti-entropy peer — anything exposing
    ``applied_lsn``, ``records_in_range(lo, hi)`` (``None`` when its
    retained history does not cover the range) and ``server`` (for a
    checkpoint-image fallback); in practice a caught-up
    :class:`~repro.reliability.replication.Replica`.

    Protocol: quarantine the damage, load the newest digest-verified
    checkpoint as the base, collect every surviving record above it,
    re-fetch the missing LSN runs from ``source``, and rewrite the tail
    as one consolidated, framed segment.  When the source's history
    cannot cover a run, fall back to installing a fresh checkpoint image
    of the source's state (which subsumes the whole log).  Either way
    the directory must re-verify clean and cover every acknowledged LSN
    up to ``target_lsn`` — otherwise :class:`RepairError`, because
    completing would silently lose acknowledged writes.
    """
    from .recovery import _WAL_RE, _list_seqs, _wal_path, load_latest_checkpoint

    pre_seqs = _list_seqs(state_dir, _WAL_RE)
    report = scrub_state_dir(state_dir)
    actions = list(report.actions)

    loaded = load_latest_checkpoint(state_dir)
    if loaded is not None:
        _state, sidecar = loaded
        base_lsn, base_seq = int(sidecar["lsn"]), int(sidecar["seq"])
    else:
        base_lsn = base_seq = 0

    survivors: Dict[int, dict] = {}
    post_seqs = _list_seqs(state_dir, _WAL_RE)
    for seq in post_seqs:
        scan = _scan_segment(_wal_path(state_dir, seq), last_segment=True)
        for record in scan.records:
            lsn = int(record["lsn"])
            if lsn > base_lsn:
                survivors[lsn] = record

    target = max(
        target_lsn or 0,
        getattr(source, "applied_lsn", 0) or 0,
        max(survivors, default=base_lsn),
        base_lsn,
    )

    fetched: Dict[int, dict] = {}
    for lo, hi in _missing_runs(survivors, base_lsn + 1, target):
        records = source.records_in_range(lo, hi) if source is not None else None
        if records is None:
            return _image_repair(state_dir, source, target, pre_seqs, fsync, actions)
        for record in records:
            fetched[int(record["lsn"])] = record
        actions.append(f"re-fetched lsn {lo}..{hi} from replica history")

    merged = [dict(r) for _lsn, r in sorted({**survivors, **fetched}.items())]
    expected = list(range(base_lsn + 1, target + 1))
    if [int(r["lsn"]) for r in merged] != expected:
        raise RepairError(
            f"cannot rebuild a contiguous log over ({base_lsn}, {target}] "
            f"in {state_dir!r}: {len(merged)} of {len(expected)} records "
            "available across survivors, checkpoints and replica history"
        )
    seq_top = max(pre_seqs + [base_seq]) if (pre_seqs or base_seq) else 0
    _write_segment(_wal_path(state_dir, seq_top), merged, fsync)
    for seq in post_seqs:
        if seq != seq_top:
            os.unlink(_wal_path(state_dir, seq))
    actions.append(
        f"rebuilt wal-{seq_top:08d}.jsonl with {len(merged)} records "
        f"(lsn {base_lsn + 1}..{target})"
    )

    final = verify_state_dir(state_dir)
    final.actions = actions
    if not final.clean:
        raise RepairError(
            f"repair of {state_dir!r} did not converge:\n{final.summary()}"
        )
    return final


def _image_repair(
    state_dir: str, source, target: int, pre_seqs: List[int],
    fsync: bool, actions: List[str],
) -> IntegrityReport:
    """Install a fresh checkpoint image of the source's state.

    Used when record-level repair is impossible (the source's retained
    history does not reach back far enough).  The image carries the
    source's full maintained state at its ``applied_lsn``, which must
    cover every acknowledged write — the image *replaces* the log.
    """
    from ..storage.snapshot import save_server
    from .recovery import (
        _CKPT_RE,
        _atomic_write_json,
        _ckpt_npz_path,
        _ckpt_sidecar_path,
        _list_seqs,
        _manifest_path,
        _wal_path,
        _WAL_RE,
    )

    if source is None or source.applied_lsn < target:
        have = getattr(source, "applied_lsn", None)
        raise RepairError(
            f"acknowledged writes up to lsn {target} are unrecoverable: "
            f"repair source covers {'nothing' if source is None else f'lsn {have}'}"
        )
    seq = max(pre_seqs + _list_seqs(state_dir, _CKPT_RE) + [0]) + 1
    npz = _ckpt_npz_path(state_dir, seq)
    save_server(source.server, npz, atomic=True)
    sidecar = _ckpt_sidecar_path(state_dir, seq)
    _atomic_write_json(
        sidecar, {"seq": seq, "lsn": source.applied_lsn, "tnow": source.server.tnow}
    )
    _atomic_write_json(
        _manifest_path(state_dir),
        {"seq": seq, "digests": {
            os.path.basename(npz): file_crc(npz),
            os.path.basename(sidecar): file_crc(sidecar),
        }},
    )
    for old in _list_seqs(state_dir, _WAL_RE):
        os.unlink(_wal_path(state_dir, old))
    _write_segment(_wal_path(state_dir, seq), [], fsync)
    actions.append(
        f"installed checkpoint image ckpt-{seq:08d} from replica state "
        f"(lsn {source.applied_lsn})"
    )
    final = verify_state_dir(state_dir)
    final.actions = actions
    if not final.clean:
        raise RepairError(
            f"image repair of {state_dir!r} did not converge:\n{final.summary()}"
        )
    return final
