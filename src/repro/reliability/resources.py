"""Resource-exhaustion robustness: disk budgets, WAL retention, read-only mode.

The serving tier is a *continuously running* monitor — objects report
forever — so the state directory grows without bound unless something
prunes it, and a filling disk must degrade the server, not kill it.
This module owns that policy:

* :class:`DiskBudget` accounts the state directory's bytes against a
  **soft** and a **hard** watermark (both optional, both resizable at
  runtime — the resource chaos scheduler shrinks and restores them
  mid-campaign).
* :class:`ResourceManager` reacts to the budget on behalf of one
  :class:`~repro.reliability.recovery.ReliabilityManager`:

  - crossing the **soft** watermark checkpoints the server and prunes
    every WAL segment the retention rule releases;
  - crossing the **hard** watermark — or a poisoned WAL descriptor
    (see ``UpdateLog``'s fsyncgate rule) — flips the server to
    **read-only degraded mode**: queries keep serving, writes raise
    :class:`~repro.core.errors.ReadOnlyError` with a ``retry_after``
    hint (surfaced on the wire as the ``read_only`` error frame);
  - :meth:`ResourceManager.probe` is the way back out: reopen a fresh
    WAL segment past the poisoned one, prune, and leave read-only once
    the budget is below the hard watermark again.

* **Retention rule** (:func:`prunable_wal_segments`): a WAL segment may
  be deleted only when *every* record in it is covered by the newest
  **digest-verified, durable** checkpoint *and* by every replica's
  acknowledged (applied) LSN.  A replica that went away and comes back
  from beyond the pruned horizon still heals — ``records_from_lsn``
  raises, and catch-up falls back to the checkpoint-image bootstrap —
  but a *live* replica never loses the tail it is owed.  Checkpoints
  older than the newest verified one are dropped together with their
  segments (a checkpoint whose replay tail is gone is dead weight).

* **Memory watermark**: when the reclaimable query-path memory (the
  histogram's prefix/block-sum caches plus the slow-query exemplars)
  crosses ``memory_limit_bytes``, it is shed.  The caches rebuild on
  demand; correctness is untouched.

Everything is deterministic: usage is a pure function of the files on
disk, and all decisions are made at explicit call points (after writes,
at probes), never on timers.
"""

from __future__ import annotations

import os
import re
from typing import Callable, List, Optional, Tuple

from ..core.errors import WALWriteError
from ..telemetry import TELEMETRY
from ..telemetry import instruments as tm
from ..telemetry.journal import JOURNAL
from .validation import ResourceConfig

__all__ = [
    "DiskBudget",
    "ResourceManager",
    "prunable_wal_segments",
    "prune_retention",
    "state_dir_usage",
]

_WAL_RE = re.compile(r"^wal-(\d{8})\.jsonl$")
_CKPT_SIDECAR_RE = re.compile(r"^ckpt-(\d{8})\.json$")


def state_dir_usage(state_dir: str) -> Tuple[int, int]:
    """``(total_bytes, wal_segment_count)`` of the state directory.

    Counts regular files at the top level plus the quarantine directory;
    missing files raced away mid-scan count as zero.
    """
    total = 0
    segments = 0
    try:
        names = os.listdir(state_dir)
    except OSError:
        return 0, 0
    for name in names:
        path = os.path.join(state_dir, name)
        try:
            if os.path.isdir(path):
                for sub in os.listdir(path):
                    try:
                        total += os.path.getsize(os.path.join(path, sub))
                    except OSError:
                        pass
                continue
            total += os.path.getsize(path)
        except OSError:
            continue
        if _WAL_RE.match(name):
            segments += 1
    return total, segments


class DiskBudget:
    """Soft/hard byte watermarks over one state directory.

    Reads its limits from the shared :class:`ResourceConfig` on every
    evaluation, so resizing the config (operator action, chaos event)
    takes effect immediately — including on a manager incarnation
    created after a failover, which shares the same config object.
    """

    def __init__(self, config: ResourceConfig) -> None:
        self.config = config

    def state(self, usage_bytes: int) -> str:
        """``"ok"`` | ``"soft"`` | ``"hard"`` for a measured usage."""
        hard = self.config.hard_limit_bytes
        if hard is not None and usage_bytes >= hard:
            return "hard"
        soft = self.config.soft_limit_bytes
        if soft is not None and usage_bytes >= soft:
            return "soft"
        return "ok"


# ----------------------------------------------------------------------
# retention
# ----------------------------------------------------------------------
def _segment_last_lsn(path: str) -> Optional[int]:
    """Highest LSN in a segment, ``None`` when it holds no parseable
    record (empty, or nothing but a torn tail)."""
    from .recovery import UpdateLog

    try:
        records = UpdateLog.read_records(path)
    except Exception:
        # mid-log corruption: the scrubber's problem, never retention's
        return None
    last = None
    for record in records:
        if "lsn" in record:
            last = int(record["lsn"])
    return last


def _newest_verified_checkpoint(state_dir: str) -> Optional[Tuple[int, int]]:
    """``(seq, lsn)`` of the newest durable, digest-verified checkpoint.

    Durable means at or below the manifest seq with an intact sidecar;
    verified means the image and sidecar match their manifest digests.
    Returns ``None`` when no checkpoint qualifies — then nothing is
    prunable at all.
    """
    import json

    from .recovery import (
        _ckpt_sidecar_path,
        _digest_mismatch,
        _list_seqs,
        _manifest_path,
    )

    manifest_path = _manifest_path(state_dir)
    if not os.path.exists(manifest_path):
        return None
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
        manifest_seq = int(manifest["seq"])
        digests = manifest.get("digests", {})
        if not isinstance(digests, dict):
            digests = {}
    except (OSError, ValueError, KeyError, json.JSONDecodeError):
        return None
    candidates = [
        s for s in _list_seqs(state_dir, _CKPT_SIDECAR_RE) if s <= manifest_seq
    ]
    for seq in reversed(candidates):
        try:
            if _digest_mismatch(state_dir, seq, digests):
                continue
            with open(_ckpt_sidecar_path(state_dir, seq), encoding="utf-8") as fh:
                sidecar = json.load(fh)
            return seq, int(sidecar["lsn"])
        except (OSError, ValueError, KeyError):
            continue
    return None


def prunable_wal_segments(
    state_dir: str,
    replica_lsns: Optional[List[int]] = None,
    current_seq: Optional[int] = None,
) -> List[int]:
    """WAL segment seqs the retention rule releases, oldest first.

    A segment is released only when its highest LSN is covered by the
    newest digest-verified durable checkpoint **and** by every replica's
    acknowledged LSN; the currently open segment is never released.
    An empty segment older than the verified checkpoint carries nothing
    and is released unconditionally.
    """
    from .recovery import _list_seqs, _wal_path

    verified = _newest_verified_checkpoint(state_dir)
    if verified is None:
        return []
    ckpt_seq, ckpt_lsn = verified
    floor = ckpt_lsn
    for lsn in replica_lsns or []:
        floor = min(floor, int(lsn))
    out: List[int] = []
    for seq in _list_seqs(state_dir, _WAL_RE):
        if current_seq is not None and seq >= current_seq:
            continue
        if seq >= ckpt_seq:
            # rotated at (or after) the verified checkpoint: its records
            # are the replay tail that checkpoint needs
            continue
        last = _segment_last_lsn(_wal_path(state_dir, seq))
        if last is None or last <= floor:
            out.append(seq)
    return out


def prune_retention(
    state_dir: str,
    replica_lsns: Optional[List[int]] = None,
    current_seq: Optional[int] = None,
) -> Tuple[int, int]:
    """Apply the retention rule: drop released segments and the dead
    checkpoints older than the newest verified one.  Returns
    ``(files_removed, bytes_freed)``.

    Older checkpoints go *only* when every segment between them and the
    verified checkpoint was released — otherwise they remain a valid
    recovery fallback and keep their replay tail alive.
    """
    from .recovery import (
        _ckpt_npz_path,
        _ckpt_sidecar_path,
        _list_seqs,
        _wal_path,
    )

    released = prunable_wal_segments(state_dir, replica_lsns, current_seq)
    removed = 0
    freed = 0

    def _unlink(path: str) -> None:
        nonlocal removed, freed
        try:
            freed += os.path.getsize(path)
            os.unlink(path)
            removed += 1
        except OSError:  # best-effort, like the interval pruner
            pass

    for seq in released:
        _unlink(_wal_path(state_dir, seq))
    verified = _newest_verified_checkpoint(state_dir)
    if verified is not None:
        ckpt_seq = verified[0]
        surviving = set(_list_seqs(state_dir, _WAL_RE))
        for seq in _list_seqs(state_dir, _CKPT_SIDECAR_RE):
            if seq >= ckpt_seq:
                continue
            # an older checkpoint is dead once any of its replay tail
            # (segments seq..ckpt_seq-1) has been pruned away
            if any(s not in surviving for s in range(seq, ckpt_seq)):
                _unlink(_ckpt_npz_path(state_dir, seq))
                _unlink(_ckpt_sidecar_path(state_dir, seq))
    return removed, freed


# ----------------------------------------------------------------------
# the manager
# ----------------------------------------------------------------------
class ResourceManager:
    """Budget enforcement for one reliability manager (and its server).

    Owned by the :class:`~repro.reliability.recovery.ReliabilityManager`;
    the server calls :meth:`check` after successful writes and
    :meth:`probe` when trying to leave read-only mode.  The replication
    layer wires :attr:`replica_lsns` so retention never outruns a live
    replica's acknowledged position.
    """

    def __init__(self, manager, config: ResourceConfig) -> None:
        self.manager = manager
        self.config = config
        self.budget = DiskBudget(config)
        # provider of every live replica's applied LSN; None = standalone
        self.replica_lsns: Optional[Callable[[], List[int]]] = None
        self.events = {
            "soft_watermark": 0,
            "hard_watermark": 0,
            "readonly_enter": 0,
            "readonly_exit": 0,
            "prune": 0,
            "wal_poisoned": 0,
            "wal_reopened": 0,
            "memory_shed": 0,
        }
        self._checking = False

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _event(self, name: str) -> None:
        self.events[name] = self.events.get(name, 0) + 1
        tm.RESOURCE_EVENTS.labels(name).inc()
        JOURNAL.emit("resource." + name)

    def usage(self) -> int:
        total, segments = state_dir_usage(self.manager.state_dir)
        tm.STATE_DIR_BYTES.set(total)
        tm.WAL_SEGMENTS.set(segments)
        return total

    def _lsn_floor_inputs(self) -> Optional[List[int]]:
        return self.replica_lsns() if self.replica_lsns is not None else None

    def prune(self) -> Tuple[int, int]:
        """Run the retention rule now; returns ``(files, bytes)`` freed."""
        removed, freed = prune_retention(
            self.manager.state_dir,
            self._lsn_floor_inputs(),
            current_seq=self.manager.seq,
        )
        if removed:
            self._event("prune")
        return removed, freed

    # ------------------------------------------------------------------
    # the write-path hook
    # ------------------------------------------------------------------
    def check(self, server) -> str:
        """Evaluate the budget after a write; returns the budget state.

        Soft watermark: checkpoint, then prune (a checkpoint is what
        makes segments prunable).  Hard watermark — or a checkpoint that
        itself fails on the filling disk — enters read-only mode.
        Re-entrant calls (the checkpoint path writes too) are no-ops.
        """
        if self._checking:
            return "ok"
        usage = self.usage()
        state = self.budget.state(usage)
        if state == "ok":
            self._shed_memory_if_needed(server)
            return state
        if state == "soft" and not server.read_only:
            self._event("soft_watermark")
            self._checking = True
            try:
                self.manager.checkpoint(server)
                self.prune()
            except (OSError, WALWriteError) as exc:
                self._enter_readonly(server, f"checkpoint failed: {exc}")
                return "hard"
            finally:
                self._checking = False
            usage = self.usage()
            state = self.budget.state(usage)
        if state == "hard" and not server.read_only:
            self._event("hard_watermark")
            self._enter_readonly(
                server,
                f"state directory at {usage} bytes >= hard limit "
                f"{self.config.hard_limit_bytes}",
            )
        self._shed_memory_if_needed(server)
        return state

    def note_wal_failure(self, server, exc: BaseException) -> None:
        """A WAL write/flush/fsync failed: the segment fd is poisoned and
        the server degrades to read-only until a probe reopens a fresh
        segment (never the poisoned descriptor)."""
        self._event("wal_poisoned")
        self._enter_readonly(server, f"WAL poisoned: {exc}")

    # ------------------------------------------------------------------
    # the way back out
    # ------------------------------------------------------------------
    def probe(self, server) -> bool:
        """Try to leave read-only mode; returns True when writable again.

        Reopens a fresh WAL segment past a poisoned one (repairing the
        poisoned segment's unacknowledged tail first), prunes whatever
        retention releases, and exits read-only once the budget is below
        the hard watermark.  Never writes a checkpoint — a probe must
        not grow a disk that is still full.
        """
        if not server.read_only:
            return True
        if self.manager.wal_poisoned:
            try:
                self.manager.reopen_wal()
            except OSError:
                return False  # the disk has not recovered; stay degraded
            self._event("wal_reopened")
        self.prune()
        usage = self.usage()
        if self.budget.state(usage) == "hard":
            return False
        self._exit_readonly(server)
        return True

    def reconcile(self, server) -> None:
        """Converge ``read_only`` with the budget state, both directions.

        The chaos scheduler calls this after every event so read-only
        entry/exit is a monotone function of the budget trajectory; an
        operator can reach the same point through ``probe``.
        """
        if server.read_only:
            self.probe(server)
        else:
            usage = self.usage()
            if self.budget.state(usage) == "hard":
                self._event("hard_watermark")
                self._enter_readonly(
                    server,
                    f"state directory at {usage} bytes >= hard limit "
                    f"{self.config.hard_limit_bytes}",
                )

    # ------------------------------------------------------------------
    # read-only transitions
    # ------------------------------------------------------------------
    def _enter_readonly(self, server, reason: str) -> None:
        if server.read_only:
            return
        self._event("readonly_enter")
        server.enter_read_only(reason, retry_after=self.config.readonly_retry_after)

    def _exit_readonly(self, server) -> None:
        if not server.read_only:
            return
        self._event("readonly_exit")
        server.exit_read_only()

    # ------------------------------------------------------------------
    # memory watermark
    # ------------------------------------------------------------------
    def reclaimable_bytes(self, server) -> int:
        """Query-path memory the watermark may shed: the histogram's
        prefix/block-sum caches plus retained slow-query exemplars."""
        total = server.histogram.cache_memory_bytes()
        for entry in TELEMETRY.slow_queries.entries():
            total += 1024  # per-exemplar overhead estimate
            if entry.trace:
                total += len(str(entry.trace))
        return total

    def _shed_memory_if_needed(self, server) -> None:
        limit = self.config.memory_limit_bytes
        if limit is None:
            return
        if self.reclaimable_bytes(server) >= limit:
            self.shed_memory(server)

    def shed_memory(self, server) -> int:
        """Drop the reclaimable caches now; returns bytes freed."""
        freed = server.histogram.shed_caches()
        TELEMETRY.slow_queries.clear()
        self._event("memory_shed")
        return freed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def report(self) -> dict:
        total, segments = state_dir_usage(self.manager.state_dir)
        return {
            "state_dir_bytes": total,
            "wal_segments": segments,
            "soft_limit_bytes": self.config.soft_limit_bytes,
            "hard_limit_bytes": self.config.hard_limit_bytes,
            "budget_state": self.budget.state(total),
            "events": dict(self.events),
        }
