"""Metrics: accuracy ratios of Section 7.2 and cost accounting of Section 7.3."""

from .accuracy import AccuracyReport, accuracy, false_negative_ratio, false_positive_ratio
from .cost import CostAccumulator, UpdateCostTimer
from .instrument import TimedListener
from .raster import RasterMeasure

__all__ = [
    "RasterMeasure",
    "accuracy",
    "AccuracyReport",
    "false_positive_ratio",
    "false_negative_ratio",
    "CostAccumulator",
    "UpdateCostTimer",
    "TimedListener",
]
