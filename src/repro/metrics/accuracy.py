"""Accuracy metrics of Section 7.2.

With ``D`` the exact dense region and ``D'`` the region a method reports:

* false-positive ratio ``r_fp = area(D' \\ D) / area(D)`` — may exceed 1
  (a method can report arbitrarily much spurious area);
* false-negative ratio ``r_fn = area(D \\ D') / area(D)`` — at most 1.

Both are undefined for an empty exact answer; we report 0 when the method
also returns empty and ``inf`` for r_fp otherwise, which keeps sweep plots
well-behaved at extreme thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.regions import RegionSet

__all__ = ["AccuracyReport", "false_positive_ratio", "false_negative_ratio", "accuracy"]


def false_positive_ratio(exact: RegionSet, reported: RegionSet) -> float:
    """``area(reported \\ exact) / area(exact)``."""
    denom = exact.area()
    spurious = reported.difference_area(exact)
    if denom == 0.0:
        return 0.0 if spurious == 0.0 else float("inf")
    return spurious / denom


def false_negative_ratio(exact: RegionSet, reported: RegionSet) -> float:
    """``area(exact \\ reported) / area(exact)``."""
    denom = exact.area()
    if denom == 0.0:
        return 0.0
    return exact.difference_area(reported) / denom


@dataclass(frozen=True)
class AccuracyReport:
    """Both error ratios plus the raw areas behind them."""

    r_fp: float
    r_fn: float
    exact_area: float
    reported_area: float
    overlap_area: float

    @property
    def jaccard(self) -> float:
        """Intersection-over-union — a convenient single-number summary."""
        union = self.exact_area + self.reported_area - self.overlap_area
        if union == 0.0:
            return 1.0
        return self.overlap_area / union


def accuracy(exact: RegionSet, reported: RegionSet) -> AccuracyReport:
    """Full accuracy report for one query evaluation."""
    exact_area = exact.area()
    reported_area = reported.area()
    overlap = exact.intersection_area(reported)
    spurious = reported_area - overlap
    missed = exact_area - overlap
    if exact_area == 0.0:
        r_fp = 0.0 if spurious <= 0.0 else float("inf")
        r_fn = 0.0
    else:
        r_fp = spurious / exact_area
        r_fn = missed / exact_area
    return AccuracyReport(
        r_fp=max(r_fp, 0.0),
        r_fn=max(r_fn, 0.0),
        exact_area=exact_area,
        reported_area=reported_area,
        overlap_area=overlap,
    )
