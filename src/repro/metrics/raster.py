"""Raster-based region measurement for large answer sets.

The exact coordinate-compression algebra of :class:`~repro.core.regions.
RegionSet` is O(|edges|^2) cells and becomes expensive when answers contain
tens of thousands of rectangles (typical for FR/PA on large datasets).  The
experiment harness therefore measures accuracy on a fixed fine raster: both
the exact and the reported region are painted onto the same ``resolution x
resolution`` boolean grid and the ratios of Section 7.2 are computed from
cell counts.

With the default 2048-cell resolution over the 1000-mile domain a cell is
~0.5 miles on edge while the smallest reportable feature is ``l/2 >= 15``
miles, so discretisation shifts the ratios by well under a percentage point
(the test suite cross-checks raster and exact measures on small inputs).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InvalidParameterError
from ..core.geometry import Rect
from ..core.regions import RegionSet
from .accuracy import AccuracyReport

__all__ = ["RasterMeasure"]


class RasterMeasure:
    """Paints regions on a shared grid and measures boolean combinations."""

    def __init__(self, domain: Rect, resolution: int = 2048) -> None:
        if resolution < 1:
            raise InvalidParameterError(f"resolution must be >= 1, got {resolution}")
        if domain.is_empty():
            raise InvalidParameterError("domain must have positive area")
        self.domain = domain
        self.resolution = resolution
        self._dx = domain.width / resolution
        self._dy = domain.height / resolution
        self.cell_area = self._dx * self._dy

    def rasterize(self, region: RegionSet) -> np.ndarray:
        """Boolean occupancy of ``region`` (cells marked by centre membership)."""
        n = self.resolution
        mask = np.zeros((n, n), dtype=bool)
        x0, y0 = self.domain.x1, self.domain.y1
        for r in region:
            # A cell centre x0 + (i + 0.5) dx lies in [r.x1, r.x2) iff
            # i in [ceil((r.x1-x0)/dx - 0.5), ...); derive index ranges.
            ix1 = int(np.ceil((r.x1 - x0) / self._dx - 0.5))
            ix2 = int(np.ceil((r.x2 - x0) / self._dx - 0.5))
            iy1 = int(np.ceil((r.y1 - y0) / self._dy - 0.5))
            iy2 = int(np.ceil((r.y2 - y0) / self._dy - 0.5))
            ix1, ix2 = max(ix1, 0), min(ix2, n)
            iy1, iy2 = max(iy1, 0), min(iy2, n)
            if ix2 > ix1 and iy2 > iy1:
                mask[ix1:ix2, iy1:iy2] = True
        return mask

    def area(self, region: RegionSet) -> float:
        return float(self.rasterize(region).sum()) * self.cell_area

    def accuracy(self, exact: RegionSet, reported: RegionSet) -> AccuracyReport:
        """Section 7.2 ratios measured on the shared raster."""
        m_exact = self.rasterize(exact)
        m_reported = self.rasterize(reported)
        exact_cells = int(m_exact.sum())
        reported_cells = int(m_reported.sum())
        overlap_cells = int((m_exact & m_reported).sum())
        exact_area = exact_cells * self.cell_area
        reported_area = reported_cells * self.cell_area
        overlap_area = overlap_cells * self.cell_area
        spurious = reported_cells - overlap_cells
        missed = exact_cells - overlap_cells
        if exact_cells == 0:
            r_fp = 0.0 if spurious == 0 else float("inf")
            r_fn = 0.0
        else:
            r_fp = spurious / exact_cells
            r_fn = missed / exact_cells
        return AccuracyReport(
            r_fp=r_fp,
            r_fn=r_fn,
            exact_area=exact_area,
            reported_area=reported_area,
            overlap_area=overlap_area,
        )
