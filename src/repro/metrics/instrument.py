"""Instrumentation wrappers for update-cost measurement (Figure 9(b)).

A :class:`TimedListener` decorates any
:class:`~repro.motion.updates.UpdateListener` and accumulates the CPU spent
in its insert/delete hooks into an
:class:`~repro.metrics.cost.UpdateCostTimer`, so the harness can report the
per-update maintenance cost of the density histogram and the polynomial
approximation separately while both consume the same update stream.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..motion.updates import (
    DeleteUpdate,
    InsertUpdate,
    ReportPair,
    UpdateListener,
)
from .cost import UpdateCostTimer

__all__ = ["TimedListener"]


class TimedListener(UpdateListener):
    """Forwards the update stream to ``inner``, timing insert/delete hooks.

    The batch hooks forward as batches — routing them through the
    per-object defaults here would silently undo the batching of whatever
    sits inside the wrapper — and charge the timer once per contained
    update, so per-update averages stay comparable across paths.
    """

    def __init__(self, inner: UpdateListener, timer: UpdateCostTimer = None) -> None:
        self.inner = inner
        self.timer = timer if timer is not None else UpdateCostTimer()

    def on_insert(self, update: InsertUpdate) -> None:
        start = time.perf_counter()
        self.inner.on_insert(update)
        self.timer.record(time.perf_counter() - start)

    def on_delete(self, update: DeleteUpdate) -> None:
        start = time.perf_counter()
        self.inner.on_delete(update)
        self.timer.record(time.perf_counter() - start)

    def on_insert_batch(self, updates: Sequence[InsertUpdate]) -> None:
        start = time.perf_counter()
        self.inner.on_insert_batch(updates)
        self.timer.record(time.perf_counter() - start, updates=len(updates))

    def on_delete_batch(self, updates: Sequence[DeleteUpdate]) -> None:
        start = time.perf_counter()
        self.inner.on_delete_batch(updates)
        self.timer.record(time.perf_counter() - start, updates=len(updates))

    def on_report_batch(self, pairs: Sequence[ReportPair]) -> None:
        start = time.perf_counter()
        self.inner.on_report_batch(pairs)
        updates = sum(1 for d, _ in pairs if d is not None) + len(pairs)
        self.timer.record(time.perf_counter() - start, updates=updates)

    def on_advance(self, tnow: int) -> None:
        # Clock advances are bookkeeping, not per-update maintenance cost.
        self.inner.on_advance(tnow)
