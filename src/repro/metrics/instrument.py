"""Instrumentation wrappers for update-cost measurement (Figure 9(b)).

A :class:`TimedListener` decorates any
:class:`~repro.motion.updates.UpdateListener` and accumulates the CPU spent
in its insert/delete hooks into an
:class:`~repro.metrics.cost.UpdateCostTimer`, so the harness can report the
per-update maintenance cost of the density histogram and the polynomial
approximation separately while both consume the same update stream.
"""

from __future__ import annotations

import time

from ..motion.updates import DeleteUpdate, InsertUpdate, UpdateListener
from .cost import UpdateCostTimer

__all__ = ["TimedListener"]


class TimedListener(UpdateListener):
    """Forwards the update stream to ``inner``, timing insert/delete hooks."""

    def __init__(self, inner: UpdateListener, timer: UpdateCostTimer = None) -> None:
        self.inner = inner
        self.timer = timer if timer is not None else UpdateCostTimer()

    def on_insert(self, update: InsertUpdate) -> None:
        start = time.perf_counter()
        self.inner.on_insert(update)
        self.timer.record(time.perf_counter() - start)

    def on_delete(self, update: DeleteUpdate) -> None:
        start = time.perf_counter()
        self.inner.on_delete(update)
        self.timer.record(time.perf_counter() - start)

    def on_advance(self, tnow: int) -> None:
        # Clock advances are bookkeeping, not per-update maintenance cost.
        self.inner.on_advance(tnow)
