"""Cost aggregation helpers for the experiment harness.

The paper reports *average per-query* CPU cost, I/O cost and total cost over
a query workload, and *average per-update* maintenance cost.  These helpers
accumulate :class:`~repro.core.query.QueryStats` (or raw timings) and expose
the averages the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..core.query import QueryStats

__all__ = ["CostAccumulator", "UpdateCostTimer"]


@dataclass
class CostAccumulator:
    """Accumulates per-query statistics for one experimental configuration."""

    samples: List[QueryStats] = field(default_factory=list)

    def add(self, stats: QueryStats) -> None:
        self.samples.append(stats)

    def __len__(self) -> int:
        return len(self.samples)

    def _mean(self, values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_cpu_seconds(self) -> float:
        return self._mean([s.cpu_seconds for s in self.samples])

    @property
    def mean_io_count(self) -> float:
        return self._mean([float(s.io_count) for s in self.samples])

    @property
    def mean_io_seconds(self) -> float:
        return self._mean([s.io_seconds for s in self.samples])

    @property
    def mean_total_seconds(self) -> float:
        return self._mean([s.total_seconds for s in self.samples])

    @property
    def mean_candidate_cells(self) -> float:
        return self._mean([float(s.candidate_cells) for s in self.samples])


@dataclass
class UpdateCostTimer:
    """Accumulates per-update maintenance CPU (Figure 9(b))."""

    total_seconds: float = 0.0
    updates: int = 0

    def record(self, seconds: float, updates: int = 1) -> None:
        self.total_seconds += seconds
        self.updates += updates

    @property
    def mean_seconds_per_update(self) -> float:
        return self.total_seconds / self.updates if self.updates else 0.0

    @property
    def mean_millis_per_update(self) -> float:
        return 1000.0 * self.mean_seconds_per_update
