"""The B^x-tree: B+-tree indexing of moving objects (Jensen et al., VLDB 2004).

The paper's Section 2 notes that any index for linearly moving objects can
serve the refinement step; the B^x-tree is the main alternative to the
TPR-tree it cites.  The idea: partition time into phases of duration
``delta``; an object inserted at time ``t`` is assigned the *label
timestamp* ``tl = (floor(t / delta) + 1) * delta`` and stored in a plain
B+-tree under the key ``partition(tl) . zcode(position-at-tl)``.

A range query ``(R, tq)`` visits every live partition: the object's stored
position is its position at ``tl``, so it lies within ``R`` enlarged by
``v_max * |tq - tl|`` where ``v_max`` bounds object speed.  The enlarged
rectangle is decomposed into Z-curve runs, each run is a B+-tree range scan
(paying buffer I/O), and candidates are filtered exactly against their
actual motion.

This implementation mirrors the update/query interface of
:class:`~repro.index.tree.TPRTree`, so :class:`~repro.methods.fr.FRMethod`
accepts either index — the basis of the index ablation benchmark.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..core.errors import IndexError_, InvalidParameterError
from ..core.geometry import Rect
from ..motion.model import Motion
from ..motion.updates import DeleteUpdate, InsertUpdate, UpdateListener
from ..storage.buffer import BufferPool
from ..storage.pages import DEFAULT_PAGE_MODEL, PageModel
from .bplus import BPlusTree
from .zorder import ZGrid

__all__ = ["BxTree"]


class BxTree(UpdateListener):
    """A B^x-tree over a :class:`~repro.index.bplus.BPlusTree` backbone."""

    def __init__(
        self,
        domain: Rect,
        horizon: float,
        phase_length: Optional[int] = None,
        bits: int = 8,
        max_speed_hint: float = 0.0,
        page_model: PageModel = DEFAULT_PAGE_MODEL,
        buffer_pool: Optional[BufferPool] = None,
        tnow: int = 0,
        fanout_override: Optional[int] = None,
    ) -> None:
        if horizon <= 0:
            raise InvalidParameterError(f"horizon must be positive, got {horizon}")
        self.domain = domain
        self.horizon = horizon
        # The B^x-tree typically uses delta = U / n with small n; half the
        # horizon's update component is a reasonable default.
        self.phase_length = phase_length if phase_length is not None else max(
            1, int(horizon) // 4
        )
        if self.phase_length < 1:
            raise InvalidParameterError("phase_length must be >= 1")
        self.grid = ZGrid(domain, bits=bits)
        self._tnow = float(tnow)
        self._max_speed = float(max_speed_hint)
        fanout = (
            fanout_override if fanout_override is not None else page_model.leaf_fanout
        )
        self._btree = BPlusTree(fanout=fanout, buffer_pool=buffer_pool)
        self._key_of: Dict[int, int] = {}  # oid -> stored key
        self._partition_count: Dict[int, int] = {}  # partition -> live entries
        # Per-partition speed bound for query enlargement (the original
        # B^x-tree maintains per-partition velocity histograms; a scalar
        # max is the simplest sound variant).  Never decreased on delete.
        self._partition_speed: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # UpdateListener protocol
    # ------------------------------------------------------------------
    def on_insert(self, update: InsertUpdate) -> None:
        self._tnow = max(self._tnow, float(update.tnow))
        self.insert(update.motion)

    def on_delete(self, update: DeleteUpdate) -> None:
        self._tnow = max(self._tnow, float(update.tnow))
        self.delete(update.motion)

    def on_advance(self, tnow: int) -> None:
        self._tnow = max(self._tnow, float(tnow))

    # ------------------------------------------------------------------
    # key construction
    # ------------------------------------------------------------------
    def label_timestamp(self, t: float) -> int:
        """The phase-boundary label for a motion registered at ``t``."""
        return (int(math.floor(t / self.phase_length)) + 1) * self.phase_length

    def _partition(self, tl: int) -> int:
        return tl // self.phase_length

    def _key(self, motion: Motion) -> int:
        tl = self.label_timestamp(motion.t_ref)
        x, y = motion.position_at(tl)
        return self._partition(tl) * self.grid.code_count + self.grid.code_of(x, y)

    # ------------------------------------------------------------------
    # public API (mirrors TPRTree)
    # ------------------------------------------------------------------
    @property
    def buffer(self) -> Optional[BufferPool]:
        return self._btree.buffer

    def __len__(self) -> int:
        return len(self._key_of)

    @property
    def max_speed(self) -> float:
        return self._max_speed

    def insert(self, motion: Motion) -> None:
        if motion.oid in self._key_of:
            raise IndexError_(
                f"object {motion.oid} already indexed; delete its old motion first"
            )
        key = self._key(motion)
        self._btree.insert(key, motion)
        self._key_of[motion.oid] = key
        partition = key // self.grid.code_count
        self._partition_count[partition] = self._partition_count.get(partition, 0) + 1
        speed = motion.speed
        self._max_speed = max(self._max_speed, speed)
        if speed > self._partition_speed.get(partition, 0.0):
            self._partition_speed[partition] = speed

    def delete(self, motion: Motion) -> None:
        key = self._key_of.pop(motion.oid, None)
        if key is None:
            raise IndexError_(f"object {motion.oid} is not indexed")
        self._btree.delete(key, match=lambda m: m.oid == motion.oid)
        partition = key // self.grid.code_count
        remaining = self._partition_count[partition] - 1
        if remaining:
            self._partition_count[partition] = remaining
        else:
            del self._partition_count[partition]

    def range_query(self, rect: Rect, qt: float, charge_io: bool = True) -> List[Motion]:
        """Objects whose predicted position at ``qt`` lies in ``rect`` (closed).

        Visits every live partition with its speed-enlarged query window;
        results are filtered exactly, so the answer matches
        :meth:`TPRTree.range_query` on the same contents.
        """
        if qt < self._tnow:
            raise IndexError_(
                f"B^x-tree queries are only valid for t >= {self._tnow}, got {qt}"
            )
        results: List[Motion] = []
        seen = set()
        for partition in list(self._partition_count):
            tl = partition * self.phase_length
            speed_bound = self._partition_speed.get(partition, self._max_speed)
            margin = speed_bound * abs(qt - tl)
            enlarged = rect.expanded(margin)
            base = partition * self.grid.code_count
            for lo, hi in self.grid.rect_runs(enlarged):
                for _key, motion in self._btree.range_scan(
                    base + lo, base + hi, charge_io=charge_io
                ):
                    if motion.oid in seen:
                        continue
                    x, y = motion.position_at(qt)
                    if rect.x1 <= x <= rect.x2 and rect.y1 <= y <= rect.y2:
                        seen.add(motion.oid)
                        results.append(motion)
        return results

    def validate(self) -> None:
        """Invariants: backbone structure, key map and partition counters."""
        self._btree.validate()
        if len(self._btree) != len(self._key_of):
            raise IndexError_("B+-tree size disagrees with the key map")
        counts: Dict[int, int] = {}
        for oid, key in self._key_of.items():
            stored = self._btree.search(key)
            if not any(m.oid == oid for m in stored):
                raise IndexError_(f"object {oid} missing under its mapped key")
            partition = key // self.grid.code_count
            counts[partition] = counts.get(partition, 0) + 1
        if counts != self._partition_count:
            raise IndexError_("partition counters out of sync")
