"""Node-split heuristics for the TPR-tree.

The TPR-tree adapts R*-tree splitting to moving objects by evaluating split
candidates on *time-integrated* metrics: a candidate distribution is scored
by the sum of the two groups' integrals of bounding area over the tree's
horizon window.  We implement the axis-sweep form: on each axis, entries are
sorted by their centre position at the middle of the horizon window, every
legal prefix/suffix distribution is scored, and the cheapest one wins.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

from ..core.errors import IndexError_
from ..motion.model import Motion
from .node import Node
from .tpbr import TPBR

__all__ = ["bound_of_entries", "pick_split"]

Entry = Union[Motion, Node]


def bound_of_entries(entries: Sequence[Entry], t_ref: float) -> TPBR:
    """TPBR anchored at ``t_ref`` enclosing every entry."""
    bound = TPBR.empty(t_ref)
    for entry in entries:
        if isinstance(entry, Node):
            bound.extend_tpbr(entry.bound)
        else:
            bound.extend_motion(entry)
    return bound


def _center_at(entry: Entry, t: float) -> Tuple[float, float]:
    if isinstance(entry, Node):
        dt = t - entry.bound.t_ref
        cx = (entry.bound.x1 + entry.bound.vx1 * dt + entry.bound.x2 + entry.bound.vx2 * dt) / 2.0
        cy = (entry.bound.y1 + entry.bound.vy1 * dt + entry.bound.y2 + entry.bound.vy2 * dt) / 2.0
        return cx, cy
    return entry.position_at(t)


def pick_split(
    entries: Sequence[Entry],
    min_fill: int,
    t_from: float,
    t_to: float,
) -> Tuple[List[Entry], List[Entry]]:
    """Partition ``entries`` into two groups, each of size ``>= min_fill``.

    Scores every axis-sorted prefix/suffix distribution by the summed
    integral bounding area of the two groups over ``[t_from, t_to]`` and
    returns the cheapest.  Raises when the entry count cannot satisfy the
    fill factor on both sides.
    """
    n = len(entries)
    if n < 2 * min_fill:
        raise IndexError_(
            f"cannot split {n} entries with minimum fill {min_fill}"
        )
    t_mid = (t_from + t_to) / 2.0

    best_cost = (float("inf"), float("inf"))
    best: Tuple[List[Entry], List[Entry]] = ([], [])
    for axis in (0, 1):
        order = sorted(entries, key=lambda e: _center_at(e, t_mid)[axis])
        # Prefix bounds (incremental) and suffix bounds (precomputed) keep the
        # scoring loop O(n) bound-extensions per axis instead of O(n^2).
        suffix_bounds: List[TPBR] = [TPBR.empty(t_from) for _ in range(n + 1)]
        for i in range(n - 1, -1, -1):
            bound = suffix_bounds[i + 1].copy()
            entry = order[i]
            if isinstance(entry, Node):
                bound.extend_tpbr(entry.bound)
            else:
                bound.extend_motion(entry)
            suffix_bounds[i] = bound
        prefix = TPBR.empty(t_from)
        for i in range(n - 1):
            entry = order[i]
            if isinstance(entry, Node):
                prefix.extend_tpbr(entry.bound)
            else:
                prefix.extend_motion(entry)
            k = i + 1  # size of the first group
            if k < min_fill or n - k < min_fill:
                continue
            suffix = suffix_bounds[k]
            # Primary: summed integral area; secondary: summed integral
            # margin (breaks ties when entries are collinear and every
            # bounding area is zero).
            cost = (
                prefix.integral_area(t_from, t_to) + suffix.integral_area(t_from, t_to),
                prefix.integral_margin(t_from, t_to)
                + suffix.integral_margin(t_from, t_to),
            )
            if cost < best_cost:
                best_cost = cost
                best = (list(order[:k]), list(order[k:]))
    if not best[0]:
        raise IndexError_("split failed to find a legal distribution")
    return best
