"""A disk-page B+-tree over integer keys.

The substrate for the B^x-tree (:mod:`repro.index.bx`): a classic B+-tree
whose nodes are sized to disk pages (same :class:`~repro.storage.pages.
PageModel` accounting as the TPR-tree) and whose leaves are chained for
range scans.  Keys are non-negative integers (Z-order codes prefixed with a
partition label); duplicate keys are allowed — each leaf slot stores a
``(key, value)`` pair and deletion removes one matching pair.

Like the TPR-tree, only *queries* are charged against the buffer pool;
update I/O is excluded per Section 4 of the paper.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, List, Optional, Tuple

from ..core.errors import IndexError_, InvalidParameterError
from ..storage.buffer import BufferPool

__all__ = ["BPlusTree"]


class _Node:
    __slots__ = (
        "page_id", "is_leaf", "keys", "children", "values",
        "next_leaf", "prev_leaf", "parent",
    )

    def __init__(self, page_id: int, is_leaf: bool) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys: List[int] = []
        self.children: List["_Node"] = []  # internal only
        self.values: List[Any] = []  # leaf only, parallel to keys
        self.next_leaf: Optional["_Node"] = None
        self.prev_leaf: Optional["_Node"] = None
        self.parent: Optional["_Node"] = None


class BPlusTree:
    """Integer-keyed B+-tree with duplicate support and leaf chaining."""

    def __init__(
        self,
        fanout: int = 64,
        buffer_pool: Optional[BufferPool] = None,
    ) -> None:
        if fanout < 4:
            raise InvalidParameterError(f"fanout must be >= 4, got {fanout}")
        self.fanout = fanout
        self.buffer = buffer_pool
        self._next_page = 0
        self.root = self._new_node(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        h, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def _new_node(self, is_leaf: bool) -> _Node:
        node = _Node(self._next_page, is_leaf)
        self._next_page += 1
        return node

    def _touch(self, node: _Node, charge_io: bool) -> None:
        if charge_io and self.buffer is not None:
            self.buffer.access(node.page_id)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _find_leaf(self, key: int, charge_io: bool = False) -> _Node:
        node = self.root
        self._touch(node, charge_io)
        while not node.is_leaf:
            # Separator keys[i] splits children[i] (keys <= sep) from
            # children[i+1] (keys >= sep); descending with bisect_left lands
            # on the LEFTMOST leaf that can hold ``key``, which search,
            # range scans and deletes rely on when duplicates of a
            # separator straddle the boundary.
            idx = bisect_left(node.keys, key)
            node = node.children[idx]
            self._touch(node, charge_io)
        return node

    def search(self, key: int) -> List[Any]:
        """All values stored under ``key`` (duplicates in insertion order)."""
        leaf = self._find_leaf(key)
        out: List[Any] = []
        while leaf is not None:
            lo = bisect_left(leaf.keys, key)
            if lo == len(leaf.keys):
                leaf = leaf.next_leaf
                continue
            hi = bisect_right(leaf.keys, key)
            out.extend(leaf.values[lo:hi])
            if hi < len(leaf.keys):
                break
            leaf = leaf.next_leaf
            if leaf is not None and (not leaf.keys or leaf.keys[0] > key):
                break
        return out

    def range_scan(
        self, lo: int, hi: int, charge_io: bool = True
    ) -> List[Tuple[int, Any]]:
        """All ``(key, value)`` pairs with ``lo <= key <= hi`` in key order."""
        if hi < lo:
            return []
        leaf = self._find_leaf(lo, charge_io)
        out: List[Tuple[int, Any]] = []
        while leaf is not None:
            start = bisect_left(leaf.keys, lo)
            for idx in range(start, len(leaf.keys)):
                if leaf.keys[idx] > hi:
                    return out
                out.append((leaf.keys[idx], leaf.values[idx]))
            leaf = leaf.next_leaf
            if leaf is not None:
                self._touch(leaf, charge_io)
        return out

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key: int, value: Any) -> None:
        leaf = self._find_leaf(key)
        idx = bisect_right(leaf.keys, key)
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        self._size += 1
        if len(leaf.keys) > self.fanout:
            self._split(leaf)

    def _split(self, node: _Node) -> None:
        mid = len(node.keys) // 2
        sibling = self._new_node(node.is_leaf)
        if node.is_leaf:
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            sibling.next_leaf = node.next_leaf
            if sibling.next_leaf is not None:
                sibling.next_leaf.prev_leaf = sibling
            sibling.prev_leaf = node
            node.next_leaf = sibling
            sep = sibling.keys[0]
        else:
            # The middle key moves up; children split around it.
            sep = node.keys[mid]
            sibling.keys = node.keys[mid + 1 :]
            sibling.children = node.children[mid + 1 :]
            for child in sibling.children:
                child.parent = sibling
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
        parent = node.parent
        if parent is None:
            new_root = self._new_node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [node, sibling]
            node.parent = new_root
            sibling.parent = new_root
            self.root = new_root
            return
        idx = parent.children.index(node)
        parent.keys.insert(idx, sep)
        parent.children.insert(idx + 1, sibling)
        sibling.parent = parent
        if len(parent.children) > self.fanout:
            self._split(parent)

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, key: int, match: Optional[Callable[[Any], bool]] = None) -> Any:
        """Remove (and return) one value under ``key``.

        With ``match`` given, removes the first value satisfying it; raises
        :class:`~repro.core.errors.IndexError_` when nothing matches.
        Underflow is handled lazily (nodes are merged only when they empty
        completely), which keeps the structure valid — range scans rely on
        key order and leaf chaining, not on fill factors.
        """
        leaf = self._find_leaf(key)
        while leaf is not None:
            lo = bisect_left(leaf.keys, key)
            found_any = False
            for idx in range(lo, len(leaf.keys)):
                if leaf.keys[idx] != key:
                    break
                found_any = True
                if match is None or match(leaf.values[idx]):
                    value = leaf.values.pop(idx)
                    leaf.keys.pop(idx)
                    self._size -= 1
                    if not leaf.keys:
                        self._remove_empty(leaf)
                    return value
            if lo < len(leaf.keys) and not found_any:
                break
            leaf = leaf.next_leaf
            if leaf is not None and leaf.keys and leaf.keys[0] > key:
                break
        raise IndexError_(f"no matching entry under key {key}")

    def _remove_empty(self, node: _Node) -> None:
        parent = node.parent
        if parent is None:
            return  # empty root stays (tree may refill)
        if node.is_leaf:
            if node.prev_leaf is not None:
                node.prev_leaf.next_leaf = node.next_leaf
            if node.next_leaf is not None:
                node.next_leaf.prev_leaf = node.prev_leaf
        idx = parent.children.index(node)
        parent.children.pop(idx)
        if parent.keys:
            # Drop the separator adjacent to the removed child.
            parent.keys.pop(max(idx - 1, 0))
        if self.buffer is not None:
            self.buffer.invalidate(node.page_id)
        if not parent.children:
            if parent is self.root:
                # The tree emptied out completely: restart from a leaf root.
                if self.buffer is not None:
                    self.buffer.invalidate(parent.page_id)
                self.root = self._new_node(is_leaf=True)
            else:
                self._remove_empty(parent)
            return
        if parent is self.root and len(parent.children) == 1:
            self.root = parent.children[0]
            self.root.parent = None
            if self.buffer is not None:
                self.buffer.invalidate(parent.page_id)

    def _leftmost_leaf(self) -> _Node:
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
        return node

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Structural invariants: key order, chain coverage, parent links."""
        # Leaf chain yields all keys in nondecreasing order.
        keys: List[int] = []
        leaf = self._leftmost_leaf()
        while leaf is not None:
            if leaf.keys != sorted(leaf.keys):
                raise IndexError_("leaf keys out of order")
            keys.extend(leaf.keys)
            leaf = leaf.next_leaf
        if keys != sorted(keys):
            raise IndexError_("leaf chain out of global order")
        if len(keys) != self._size:
            raise IndexError_(f"size {self._size} != chained keys {len(keys)}")
        # Parent pointers and separator sanity.
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                if len(node.children) != len(node.keys) + 1:
                    raise IndexError_("separator/children count mismatch")
                for child in node.children:
                    if child.parent is not node:
                        raise IndexError_("bad parent pointer")
                    stack.append(child)
