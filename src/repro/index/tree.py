"""The TPR-tree: a time-parameterized R-tree over linearly moving points.

This is the index the paper assumes for the refinement step of the FR
method (Section 4): it stores predicted trajectories, supports insertion and
deletion driven by the location-update protocol, and answers timestamped
spatial range queries.  Query page accesses are routed through a simulated
:class:`~repro.storage.buffer.BufferPool` so the experiment harness can
charge I/O exactly as the paper does; update I/O is deliberately *not*
charged (Section 4: index maintenance is shared with other query types).

Implementation notes
--------------------
* Insertion descends by minimum enlargement of the *integral* bounding area
  over the horizon window ``[t_now, t_now + H]`` and splits overflowing
  nodes with the axis-sweep heuristic of :mod:`repro.index.split`.
* Deletion locates leaves through an object-id -> leaf map (a standard
  implementation shortcut that avoids float-equality MBR searches; I/O
  accounting is unaffected because only queries are charged).
* Underflowing nodes are condensed: the node is removed and its remaining
  entries reinserted, as in Guttman's R-tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.errors import IndexError_, InvalidParameterError
from ..core.geometry import Rect
from ..motion.model import Motion
from ..motion.updates import DeleteUpdate, InsertUpdate, UpdateListener
from ..storage.buffer import BufferPool
from ..storage.pages import DEFAULT_PAGE_MODEL, PageModel
from .node import Node
from .split import pick_split
from .tpbr import TPBR

__all__ = ["TPRTree"]


class TPRTree(UpdateListener):
    """Disk-page-shaped TPR-tree with simulated I/O accounting."""

    def __init__(
        self,
        horizon: float,
        page_model: PageModel = DEFAULT_PAGE_MODEL,
        buffer_pool: Optional[BufferPool] = None,
        tnow: int = 0,
        fanout_override: Optional[int] = None,
    ) -> None:
        if horizon <= 0:
            raise InvalidParameterError(f"horizon must be positive, got {horizon}")
        self.horizon = horizon
        self.page_model = page_model
        self.buffer = buffer_pool
        self._tnow = float(tnow)
        if fanout_override is not None:
            if fanout_override < 4:
                raise InvalidParameterError("fanout_override must be >= 4")
            self._leaf_fanout = fanout_override
            self._internal_fanout = fanout_override
        else:
            self._leaf_fanout = page_model.leaf_fanout
            self._internal_fanout = page_model.internal_fanout
        self._min_fill_leaf = max(2, self._leaf_fanout * 2 // 5)
        self._min_fill_internal = max(2, self._internal_fanout * 2 // 5)
        self._next_page = 0
        self._leaf_of: Dict[int, Node] = {}
        self.root = self._new_node(level=0)

    # ------------------------------------------------------------------
    # UpdateListener protocol
    # ------------------------------------------------------------------
    def on_insert(self, update: InsertUpdate) -> None:
        self._tnow = max(self._tnow, float(update.tnow))
        self.insert(update.motion)

    def on_delete(self, update: DeleteUpdate) -> None:
        self._tnow = max(self._tnow, float(update.tnow))
        self.delete(update.motion)

    def on_advance(self, tnow: int) -> None:
        self._tnow = max(self._tnow, float(tnow))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leaf_of)

    @property
    def height(self) -> int:
        return self.root.level + 1

    def node_count(self) -> int:
        return sum(1 for _ in self.root.subtree_nodes())

    def insert(self, motion: Motion) -> None:
        """Insert a motion; the object id must not already be present."""
        if motion.oid in self._leaf_of:
            raise IndexError_(
                f"object {motion.oid} already indexed; delete its old motion first"
            )
        leaf = self._choose_leaf(motion)
        leaf.add(motion)
        self._leaf_of[motion.oid] = leaf
        self._grow_ancestors(leaf, motion)
        if len(leaf.entries) > self._leaf_fanout:
            self._split_upwards(leaf)

    def delete(self, motion: Motion) -> None:
        """Remove the indexed motion of ``motion.oid``."""
        leaf = self._leaf_of.pop(motion.oid, None)
        if leaf is None:
            raise IndexError_(f"object {motion.oid} is not indexed")
        for i, entry in enumerate(leaf.entries):
            if entry.oid == motion.oid:
                leaf.entries.pop(i)
                break
        else:  # pragma: no cover - map/leaf inconsistency
            raise IndexError_(f"leaf map stale for object {motion.oid}")
        self._condense(leaf)

    def range_query(self, rect: Rect, qt: float, charge_io: bool = True) -> List[Motion]:
        """Objects whose predicted position at ``qt`` lies in ``rect`` (closed).

        Visited pages are charged against the buffer pool when ``charge_io``
        is set.  The returned containment is *closed* on every edge — callers
        needing half-open semantics re-filter (deliberate superset; see
        :meth:`TPBR.intersects_rect_at`).
        """
        if qt < self._tnow:
            raise IndexError_(
                f"TPR-tree bounds are only valid for t >= {self._tnow}, got {qt}"
            )
        results: List[Motion] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self._touch(node, charge_io)
            if node.is_leaf:
                for motion in node.entries:
                    x, y = motion.position_at(qt)
                    if rect.x1 <= x <= rect.x2 and rect.y1 <= y <= rect.y2:
                        results.append(motion)
            else:
                for child in node.entries:
                    if child.bound.intersects_rect_at(rect, qt):
                        stack.append(child)
        return results

    def all_motions(self) -> List[Motion]:
        return list(self.root.iter_subtree_motions())

    def validate(self) -> None:
        """Structural invariants; raises :class:`IndexError_` on violation.

        Checks parent pointers, fanout limits, leaf-map consistency, and the
        TPR-tree's bounding invariant: **every node's bound contains every
        motion in its subtree** at the current time and at the horizon end.
        (Parent bounds need not contain child *bounds* — bounds anchored at
        different times have different tightness; each is independently
        sound with respect to the objects beneath it, which is all query
        pruning relies on.)
        """
        seen_oids = set()
        t_checks = (self._tnow, self._tnow + self.horizon)
        for node in self.root.subtree_nodes():
            if node is not self.root and len(node.entries) == 0:
                raise IndexError_(f"empty non-root node {node.page_id}")
            limit = self._leaf_fanout if node.is_leaf else self._internal_fanout
            if len(node.entries) > limit:
                raise IndexError_(f"node {node.page_id} overflows fanout {limit}")
            for entry in node.entries:
                if isinstance(entry, Node):
                    if entry.parent is not node:
                        raise IndexError_(f"bad parent pointer under {node.page_id}")
                else:
                    if self._leaf_of.get(entry.oid) is not node:
                        raise IndexError_(f"leaf map stale for object {entry.oid}")
                    if entry.oid in seen_oids:
                        raise IndexError_(f"object {entry.oid} indexed twice")
                    seen_oids.add(entry.oid)
            for motion in node.iter_subtree_motions():
                for t in t_checks:
                    x, y = motion.position_at(t)
                    outer = node.bound.rect_at(t)
                    if not (
                        outer.x1 - 1e-6 <= x <= outer.x2 + 1e-6
                        and outer.y1 - 1e-6 <= y <= outer.y2 + 1e-6
                    ):
                        raise IndexError_(
                            f"object {motion.oid} escapes node {node.page_id} "
                            f"bound at t={t}"
                        )
        if seen_oids != set(self._leaf_of):
            raise IndexError_("leaf map does not match tree contents")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _new_node(self, level: int) -> Node:
        node = Node(self._next_page, level, t_ref=self._tnow)
        self._next_page += 1
        return node

    def _touch(self, node: Node, charge_io: bool) -> None:
        if charge_io and self.buffer is not None:
            self.buffer.access(node.page_id)

    def _window(self):
        return self._tnow, self._tnow + self.horizon

    def _choose_leaf(self, motion: Motion) -> Node:
        t_from, t_to = self._window()
        node = self.root
        while not node.is_leaf:
            best_child = None
            best_key = None
            for child in node.entries:
                base = child.bound.integral_area(t_from, t_to)
                grown = child.bound.enlarged_integral(motion, t_from, t_to)
                key = (grown - base, base)
                if best_key is None or key < best_key:
                    best_key = key
                    best_child = child
            node = best_child
        return node

    def _grow_ancestors(self, leaf: Node, motion: Motion) -> None:
        node = leaf.parent
        while node is not None:
            node.bound.extend_motion(motion)
            node = node.parent

    def _split_upwards(self, node: Node) -> None:
        t_from, t_to = self._window()
        while len(node.entries) > (
            self._leaf_fanout if node.is_leaf else self._internal_fanout
        ):
            min_fill = self._min_fill_leaf if node.is_leaf else self._min_fill_internal
            group_a, group_b = pick_split(node.entries, min_fill, t_from, t_to)
            sibling = self._new_node(node.level)
            node.entries = []
            node.bound = TPBR.empty(t_from)
            for entry in group_a:
                node.add(entry)
            for entry in group_b:
                sibling.add(entry)
            if node.is_leaf:
                for entry in sibling.entries:
                    self._leaf_of[entry.oid] = sibling
            parent = node.parent
            if parent is None:
                new_root = self._new_node(node.level + 1)
                new_root.add(node)
                new_root.add(sibling)
                self.root = new_root
                return
            parent.add(sibling)
            parent.retighten(t_from)
            self._retighten_ancestors(parent.parent)
            node = parent

    def _retighten_ancestors(self, node: Optional[Node]) -> None:
        t_from, _ = self._window()
        while node is not None:
            node.retighten(t_from)
            node = node.parent

    def _condense(self, node: Node) -> None:
        """Handle (possible) underflow at ``node`` after a removal."""
        t_from, _ = self._window()
        orphans: List[Motion] = []
        while node.parent is not None:
            min_fill = self._min_fill_leaf if node.is_leaf else self._min_fill_internal
            parent = node.parent
            if len(node.entries) < min_fill:
                parent.entries.remove(node)
                orphans.extend(node.iter_subtree_motions())
                for freed in node.subtree_nodes():
                    if self.buffer is not None:
                        self.buffer.invalidate(freed.page_id)
            else:
                node.retighten(t_from)
            node = parent
        node.retighten(t_from)  # node is now the root
        if not node.is_leaf and len(node.entries) == 1:
            self.root = node.entries[0]
            self.root.parent = None
            if self.buffer is not None:
                self.buffer.invalidate(node.page_id)
        for motion in orphans:
            self._leaf_of.pop(motion.oid, None)
            self.insert(motion)

