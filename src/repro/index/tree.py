"""The TPR-tree: a time-parameterized R-tree over linearly moving points.

This is the index the paper assumes for the refinement step of the FR
method (Section 4): it stores predicted trajectories, supports insertion and
deletion driven by the location-update protocol, and answers timestamped
spatial range queries.  Query page accesses are routed through a simulated
:class:`~repro.storage.buffer.BufferPool` so the experiment harness can
charge I/O exactly as the paper does; update I/O is deliberately *not*
charged (Section 4: index maintenance is shared with other query types).

Implementation notes
--------------------
* Insertion descends by minimum enlargement of the *integral* bounding area
  over the horizon window ``[t_now, t_now + H]`` and splits overflowing
  nodes with the axis-sweep heuristic of :mod:`repro.index.split`.
* Deletion locates leaves through an object-id -> leaf map (a standard
  implementation shortcut that avoids float-equality MBR searches; I/O
  accounting is unaffected because only queries are charged).
* Underflowing nodes are condensed: the node is removed and its remaining
  entries reinserted, as in Guttman's R-tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import IndexError_, InvalidParameterError
from ..core.geometry import Rect
from ..motion.model import Motion
from ..motion.updates import DeleteUpdate, InsertUpdate, UpdateListener
from ..storage.buffer import BufferPool
from ..storage.pages import DEFAULT_PAGE_MODEL, PageModel
from ..telemetry import instruments as tm
from .node import Node
from .split import pick_split
from .tpbr import TPBR
from .zorder import interleave

__all__ = ["TPRTree"]


class TPRTree(UpdateListener):
    """Disk-page-shaped TPR-tree with simulated I/O accounting."""

    def __init__(
        self,
        horizon: float,
        page_model: PageModel = DEFAULT_PAGE_MODEL,
        buffer_pool: Optional[BufferPool] = None,
        tnow: int = 0,
        fanout_override: Optional[int] = None,
    ) -> None:
        if horizon <= 0:
            raise InvalidParameterError(f"horizon must be positive, got {horizon}")
        self.horizon = horizon
        self.page_model = page_model
        self.buffer = buffer_pool
        self._tnow = float(tnow)
        if fanout_override is not None:
            if fanout_override < 4:
                raise InvalidParameterError("fanout_override must be >= 4")
            self._leaf_fanout = fanout_override
            self._internal_fanout = fanout_override
        else:
            self._leaf_fanout = page_model.leaf_fanout
            self._internal_fanout = page_model.internal_fanout
        self._min_fill_leaf = max(2, self._leaf_fanout * 2 // 5)
        self._min_fill_internal = max(2, self._internal_fanout * 2 // 5)
        self._next_page = 0
        self._leaf_of: Dict[int, Node] = {}
        # Structure epoch: bumped on any mutation of contents or shape.
        # Batched traversal caches per-node column arrays keyed by page id
        # and drops them wholesale when the epoch moves; result-reuse caches
        # upstream key on the epoch as well.
        self._epoch = 0
        self._node_cols: Dict[int, tuple] = {}
        self._node_cols_epoch = -1
        self.root = self._new_node(level=0)

    # ------------------------------------------------------------------
    # UpdateListener protocol
    # ------------------------------------------------------------------
    def on_insert(self, update: InsertUpdate) -> None:
        self._tnow = max(self._tnow, float(update.tnow))
        self.insert(update.motion)

    def on_delete(self, update: DeleteUpdate) -> None:
        self._tnow = max(self._tnow, float(update.tnow))
        self.delete(update.motion)

    def on_advance(self, tnow: int) -> None:
        self._tnow = max(self._tnow, float(tnow))

    def on_insert_batch(self, updates: Sequence[InsertUpdate]) -> None:
        """Insert a wave; the indexed *contents* are exactly the per-update
        result, but tree shape is an implementation detail (only
        :meth:`validate`'s invariants are contractual).

        A wave that outnumbers the current population is cheaper to absorb
        by rebuilding the whole tree with an STR bulk pack than by N
        choose-leaf descents; smaller waves are inserted incrementally in
        Z-order, so spatially adjacent insertions descend into the same
        subtrees back to back."""
        if not updates:
            return
        self._tnow = max(self._tnow, float(max(u.tnow for u in updates)))
        seen = set()
        for update in updates:
            oid = update.motion.oid
            if oid in self._leaf_of or oid in seen:
                raise IndexError_(
                    f"object {oid} already indexed; delete its old motion first"
                )
            seen.add(oid)
        if len(updates) > len(self._leaf_of):
            tm.TPR_REPACKS.labels("bulk_insert").inc()
            self._bulk_build(
                self.all_motions() + [u.motion for u in updates]
            )
        else:
            for update in self._zorder_sorted(updates):
                self.insert(update.motion)

    def on_delete_batch(self, updates: Sequence[DeleteUpdate]) -> None:
        """Delete a wave; when it covers at least half the population the
        survivors are simply repacked (condensing node-by-node would
        reinsert most of the tree anyway)."""
        if not updates:
            return
        self._tnow = max(self._tnow, float(max(u.tnow for u in updates)))
        if 2 * len(updates) >= len(self._leaf_of):
            doomed = set()
            for update in updates:
                oid = update.motion.oid
                if oid not in self._leaf_of or oid in doomed:
                    raise IndexError_(f"object {oid} is not indexed")
                doomed.add(oid)
            tm.TPR_REPACKS.labels("bulk_delete").inc()
            self._bulk_build(
                [m for m in self.all_motions() if m.oid not in doomed]
            )
        else:
            for update in updates:
                self.delete(update.motion)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leaf_of)

    @property
    def height(self) -> int:
        return self.root.level + 1

    def node_count(self) -> int:
        return sum(1 for _ in self.root.subtree_nodes())

    @property
    def epoch(self) -> int:
        """Monotone counter identifying the current tree contents/shape."""
        return self._epoch

    def insert(self, motion: Motion) -> None:
        """Insert a motion; the object id must not already be present."""
        if motion.oid in self._leaf_of:
            raise IndexError_(
                f"object {motion.oid} already indexed; delete its old motion first"
            )
        self._epoch += 1
        leaf = self._choose_leaf(motion)
        leaf.add(motion)
        self._leaf_of[motion.oid] = leaf
        self._grow_ancestors(leaf, motion)
        if len(leaf.entries) > self._leaf_fanout:
            self._split_upwards(leaf)

    def delete(self, motion: Motion) -> None:
        """Remove the indexed motion of ``motion.oid``."""
        leaf = self._leaf_of.pop(motion.oid, None)
        if leaf is None:
            raise IndexError_(f"object {motion.oid} is not indexed")
        self._epoch += 1
        for i, entry in enumerate(leaf.entries):
            if entry.oid == motion.oid:
                leaf.entries.pop(i)
                break
        else:  # pragma: no cover - map/leaf inconsistency
            raise IndexError_(f"leaf map stale for object {motion.oid}")
        self._condense(leaf)

    def range_query(self, rect: Rect, qt: float, charge_io: bool = True) -> List[Motion]:
        """Objects whose predicted position at ``qt`` lies in ``rect`` (closed).

        Visited pages are charged against the buffer pool when ``charge_io``
        is set.  The returned containment is *closed* on every edge — callers
        needing half-open semantics re-filter (deliberate superset; see
        :meth:`TPBR.intersects_rect_at`).
        """
        if qt < self._tnow:
            raise IndexError_(
                f"TPR-tree bounds are only valid for t >= {self._tnow}, got {qt}"
            )
        results: List[Motion] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self._touch(node, charge_io)
            if node.is_leaf:
                for motion in node.entries:
                    x, y = motion.position_at(qt)
                    if rect.x1 <= x <= rect.x2 and rect.y1 <= y <= rect.y2:
                        results.append(motion)
            else:
                for child in node.entries:
                    if child.bound.intersects_rect_at(rect, qt):
                        stack.append(child)
        return results

    def range_positions_batch(
        self, rects: Sequence[Rect], qts, charge_io: bool = True
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Batched :meth:`range_query` returning position arrays per rect.

        ``qts`` is a scalar timestamp or one timestamp per rect.  All rects
        are answered in a single shared traversal: each visited page is
        touched (and charged) once for the whole batch, and every node
        carries the subset of rects whose query window still intersects its
        bound — per-rect membership masks instead of N independent walks.

        Per-rect results are identical to ``range_query(rect, qt)``, in the
        same visit order: a stack DFS restricted to the subset of nodes one
        rect intersects visits them in the same order as that rect's own
        stack DFS (same child push order), and the leaf containment test is
        the same closed comparison on elementwise-identical extrapolated
        positions.
        """
        return self._batch_traverse(rects, qts, charge_io, want_motions=False)

    def range_query_batch(
        self, rects: Sequence[Rect], qts, charge_io: bool = True
    ) -> List[List[Motion]]:
        """Batched :meth:`range_query` returning motion lists per rect."""
        return self._batch_traverse(rects, qts, charge_io, want_motions=True)

    def _batch_traverse(
        self, rects: Sequence[Rect], qts, charge_io: bool, want_motions: bool
    ):
        n_rects = len(rects)
        if n_rects == 0:
            return []
        qts_arr = np.broadcast_to(np.asarray(qts, dtype=float), (n_rects,))
        if float(qts_arr.min()) < self._tnow:
            raise IndexError_(
                f"TPR-tree bounds are only valid for t >= {self._tnow}, "
                f"got {float(qts_arr.min())}"
            )
        rb = np.array([(r.x1, r.y1, r.x2, r.y2) for r in rects], dtype=float)
        if want_motions:
            out: List[list] = [[] for _ in range(n_rects)]
        else:
            out = [[] for _ in range(n_rects)]
        stack: List[tuple] = [(self.root, np.arange(n_rects))]
        while stack:
            node, active = stack.pop()
            self._touch(node, charge_io)
            if node.is_leaf:
                if not node.entries:
                    continue
                x0, y0, vx, vy, t_ref = self._leaf_cols(node)
                for qt in np.unique(qts_arr[active]):
                    sel = active[qts_arr[active] == qt]
                    dt = qt - t_ref
                    px = x0 + dt * vx
                    py = y0 + dt * vy
                    # Closed containment, one broadcast per (leaf, timestamp).
                    inside = (
                        (rb[sel, 0][:, None] <= px[None, :])
                        & (px[None, :] <= rb[sel, 2][:, None])
                        & (rb[sel, 1][:, None] <= py[None, :])
                        & (py[None, :] <= rb[sel, 3][:, None])
                    )
                    for row, r in enumerate(sel):
                        idx = np.flatnonzero(inside[row])
                        if idx.size == 0:
                            continue
                        if want_motions:
                            entries = node.entries
                            out[r].extend(entries[i] for i in idx)
                        else:
                            out[r].append((px[idx], py[idx]))
            else:
                bx1, by1, bx2, by2, bvx1, bvy1, bvx2, bvy2, bt = self._child_cols(
                    node
                )
                dt = qts_arr[active][None, :] - bt[:, None]
                x_lo = bx1[:, None] + bvx1[:, None] * dt
                x_hi = bx2[:, None] + bvx2[:, None] * dt
                y_lo = by1[:, None] + bvy1[:, None] * dt
                y_hi = by2[:, None] + bvy2[:, None] * dt
                overlap = ~(
                    (x_hi < rb[active, 0][None, :])
                    | (rb[active, 2][None, :] < x_lo)
                    | (y_hi < rb[active, 1][None, :])
                    | (rb[active, 3][None, :] < y_lo)
                )
                for c, child in enumerate(node.entries):
                    sub = active[overlap[c]]
                    if sub.size:
                        stack.append((child, sub))
        if want_motions:
            return out
        merged: List[Tuple[np.ndarray, np.ndarray]] = []
        for parts in out:
            if parts:
                merged.append(
                    (
                        np.concatenate([p[0] for p in parts]),
                        np.concatenate([p[1] for p in parts]),
                    )
                )
            else:
                merged.append(
                    (np.empty(0, dtype=float), np.empty(0, dtype=float))
                )
        return merged

    def _cols_cache(self) -> Dict[int, tuple]:
        if self._node_cols_epoch != self._epoch:
            self._node_cols = {}
            self._node_cols_epoch = self._epoch
        return self._node_cols

    def _leaf_cols(self, node: Node) -> tuple:
        """Column arrays (x, y, vx, vy, t_ref) of a leaf's entries, cached
        per structure epoch."""
        cache = self._cols_cache()
        cols = cache.get(node.page_id)
        if cols is None:
            entries = node.entries
            cols = (
                np.array([m.x for m in entries], dtype=float),
                np.array([m.y for m in entries], dtype=float),
                np.array([m.vx for m in entries], dtype=float),
                np.array([m.vy for m in entries], dtype=float),
                np.array([m.t_ref for m in entries], dtype=float),
            )
            cache[node.page_id] = cols
        return cols

    def _child_cols(self, node: Node) -> tuple:
        """Column arrays of an internal node's child TPBRs, cached per epoch."""
        cache = self._cols_cache()
        cols = cache.get(node.page_id)
        if cols is None:
            bounds = [c.bound for c in node.entries]
            cols = (
                np.array([b.x1 for b in bounds], dtype=float),
                np.array([b.y1 for b in bounds], dtype=float),
                np.array([b.x2 for b in bounds], dtype=float),
                np.array([b.y2 for b in bounds], dtype=float),
                np.array([b.vx1 for b in bounds], dtype=float),
                np.array([b.vy1 for b in bounds], dtype=float),
                np.array([b.vx2 for b in bounds], dtype=float),
                np.array([b.vy2 for b in bounds], dtype=float),
                np.array([b.t_ref for b in bounds], dtype=float),
            )
            cache[node.page_id] = cols
        return cols

    def all_motions(self) -> List[Motion]:
        return list(self.root.iter_subtree_motions())

    def validate(self) -> None:
        """Structural invariants; raises :class:`IndexError_` on violation.

        Checks parent pointers, fanout limits, leaf-map consistency, and the
        TPR-tree's bounding invariant: **every node's bound contains every
        motion in its subtree** at the current time and at the horizon end.
        (Parent bounds need not contain child *bounds* — bounds anchored at
        different times have different tightness; each is independently
        sound with respect to the objects beneath it, which is all query
        pruning relies on.)
        """
        seen_oids = set()
        t_checks = (self._tnow, self._tnow + self.horizon)
        for node in self.root.subtree_nodes():
            if node is not self.root and len(node.entries) == 0:
                raise IndexError_(f"empty non-root node {node.page_id}")
            limit = self._leaf_fanout if node.is_leaf else self._internal_fanout
            if len(node.entries) > limit:
                raise IndexError_(f"node {node.page_id} overflows fanout {limit}")
            for entry in node.entries:
                if isinstance(entry, Node):
                    if entry.parent is not node:
                        raise IndexError_(f"bad parent pointer under {node.page_id}")
                else:
                    if self._leaf_of.get(entry.oid) is not node:
                        raise IndexError_(f"leaf map stale for object {entry.oid}")
                    if entry.oid in seen_oids:
                        raise IndexError_(f"object {entry.oid} indexed twice")
                    seen_oids.add(entry.oid)
            for motion in node.iter_subtree_motions():
                for t in t_checks:
                    x, y = motion.position_at(t)
                    outer = node.bound.rect_at(t)
                    if not (
                        outer.x1 - 1e-6 <= x <= outer.x2 + 1e-6
                        and outer.y1 - 1e-6 <= y <= outer.y2 + 1e-6
                    ):
                        raise IndexError_(
                            f"object {motion.oid} escapes node {node.page_id} "
                            f"bound at t={t}"
                        )
        if seen_oids != set(self._leaf_of):
            raise IndexError_("leaf map does not match tree contents")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _zorder_sorted(self, updates: Sequence[InsertUpdate]) -> List[InsertUpdate]:
        """The wave ordered by Morton code of current position.

        The quantisation grid spans the wave's own bounding box (the tree
        has no domain of its own), which is all locality needs; ties keep
        arrival order (stable sort)."""
        if len(updates) < 2:
            return list(updates)
        pos = np.array([u.motion.position_at(self._tnow) for u in updates])
        lo = pos.min(axis=0)
        span = pos.max(axis=0) - lo
        span[span == 0.0] = 1.0
        cells = np.clip(((pos - lo) / span * 1024.0).astype(np.int64), 0, 1023)
        codes = interleave(cells[:, 0], cells[:, 1])
        order = np.argsort(codes, kind="stable")
        return [updates[i] for i in order]

    def _bulk_build(self, motions: List[Motion]) -> None:
        """Rebuild the whole tree by Sort-Tile-Recursive packing.

        Leaves are packed from vertical slabs of the x-sorted wave, each
        slab y-sorted (classic STR); upper levels chunk children in slab
        order.  Bounds are grown through the same :meth:`Node.add` path as
        incremental insertion, so :meth:`validate`'s containment invariant
        holds by construction.  All previous pages are invalidated — a
        rebuild rewrites the file in the simulated-I/O model.
        """
        self._epoch += 1
        if self.buffer is not None:
            for node in self.root.subtree_nodes():
                self.buffer.invalidate(node.page_id)
        self._leaf_of = {}
        if not motions:
            self.root = self._new_node(level=0)
            return
        t_ref = np.array([m.t_ref for m in motions], dtype=float)
        dt = self._tnow - t_ref
        px = np.array([m.x for m in motions]) + dt * np.array(
            [m.vx for m in motions]
        )
        py = np.array([m.y for m in motions]) + dt * np.array(
            [m.vy for m in motions]
        )
        per_leaf = self._leaf_fanout
        n = len(motions)
        n_leaves = -(-n // per_leaf)
        n_slabs = int(np.ceil(np.sqrt(n_leaves)))
        slab_pts = -(-n // n_slabs)
        order_x = np.argsort(px, kind="stable")
        nodes: List[Node] = []
        for s in range(0, n, slab_pts):
            slab = order_x[s : s + slab_pts]
            slab = slab[np.argsort(py[slab], kind="stable")]
            for c in range(0, len(slab), per_leaf):
                leaf = self._new_node(level=0)
                for i in slab[c : c + per_leaf]:
                    motion = motions[i]
                    leaf.add(motion)
                    self._leaf_of[motion.oid] = leaf
                nodes.append(leaf)
        level = 1
        while len(nodes) > 1:
            parents = []
            for c in range(0, len(nodes), self._internal_fanout):
                parent = self._new_node(level)
                for child in nodes[c : c + self._internal_fanout]:
                    parent.add(child)
                parents.append(parent)
            nodes = parents
            level += 1
        self.root = nodes[0]
        self.root.parent = None

    def _new_node(self, level: int) -> Node:
        node = Node(self._next_page, level, t_ref=self._tnow)
        self._next_page += 1
        return node

    def _touch(self, node: Node, charge_io: bool) -> None:
        if charge_io and self.buffer is not None:
            self.buffer.access(node.page_id)

    def _window(self):
        return self._tnow, self._tnow + self.horizon

    def _choose_leaf(self, motion: Motion) -> Node:
        t_from, t_to = self._window()
        node = self.root
        while not node.is_leaf:
            best_child = None
            best_key = None
            for child in node.entries:
                base = child.bound.integral_area(t_from, t_to)
                grown = child.bound.enlarged_integral(motion, t_from, t_to)
                key = (grown - base, base)
                if best_key is None or key < best_key:
                    best_key = key
                    best_child = child
            node = best_child
        return node

    def _grow_ancestors(self, leaf: Node, motion: Motion) -> None:
        node = leaf.parent
        while node is not None:
            node.bound.extend_motion(motion)
            node = node.parent

    def _split_upwards(self, node: Node) -> None:
        t_from, t_to = self._window()
        while len(node.entries) > (
            self._leaf_fanout if node.is_leaf else self._internal_fanout
        ):
            min_fill = self._min_fill_leaf if node.is_leaf else self._min_fill_internal
            group_a, group_b = pick_split(node.entries, min_fill, t_from, t_to)
            sibling = self._new_node(node.level)
            node.entries = []
            node.bound = TPBR.empty(t_from)
            for entry in group_a:
                node.add(entry)
            for entry in group_b:
                sibling.add(entry)
            if node.is_leaf:
                for entry in sibling.entries:
                    self._leaf_of[entry.oid] = sibling
            parent = node.parent
            if parent is None:
                new_root = self._new_node(node.level + 1)
                new_root.add(node)
                new_root.add(sibling)
                self.root = new_root
                return
            parent.add(sibling)
            parent.retighten(t_from)
            self._retighten_ancestors(parent.parent)
            node = parent

    def _retighten_ancestors(self, node: Optional[Node]) -> None:
        t_from, _ = self._window()
        while node is not None:
            node.retighten(t_from)
            node = node.parent

    def _condense(self, node: Node) -> None:
        """Handle (possible) underflow at ``node`` after a removal."""
        t_from, _ = self._window()
        orphans: List[Motion] = []
        while node.parent is not None:
            min_fill = self._min_fill_leaf if node.is_leaf else self._min_fill_internal
            parent = node.parent
            if len(node.entries) < min_fill:
                parent.entries.remove(node)
                orphans.extend(node.iter_subtree_motions())
                for freed in node.subtree_nodes():
                    if self.buffer is not None:
                        self.buffer.invalidate(freed.page_id)
            else:
                node.retighten(t_from)
            node = parent
        node.retighten(t_from)  # node is now the root
        if not node.is_leaf and len(node.entries) == 1:
            self.root = node.entries[0]
            self.root.parent = None
            if self.buffer is not None:
                self.buffer.invalidate(node.page_id)
        for motion in orphans:
            self._leaf_of.pop(motion.oid, None)
            self.insert(motion)

