"""Time-parameterized bounding rectangles (TPBRs).

The TPR-tree (Saltenis et al., SIGMOD 2000) bounds a set of linearly moving
points with a rectangle whose edges themselves move linearly: the low edge
with the minimum velocity of the enclosed objects, the high edge with the
maximum.  A TPBR anchored at reference time ``t_ref`` therefore contains
every enclosed trajectory for all ``t >= t_ref``, growing monotonically.

The insertion heuristics of the TPR-tree minimise the *integral* of bounding
area over the time horizon ``[t_now, t_now + H]`` rather than the area at a
single instant; :meth:`TPBR.integral_area` evaluates that integral in closed
form (the area is a quadratic polynomial of time).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import IndexError_
from ..core.geometry import Rect
from ..motion.model import Motion

__all__ = ["TPBR"]


@dataclass
class TPBR:
    """A moving bounding rectangle anchored at ``t_ref``.

    ``(x1, y1, x2, y2)`` are the spatial bounds at ``t_ref``; ``(vx1, vy1)``
    and ``(vx2, vy2)`` are the velocities of the low and high edges.
    """

    t_ref: float
    x1: float
    y1: float
    x2: float
    y2: float
    vx1: float
    vy1: float
    vx2: float
    vy2: float

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_motion(motion: Motion, t_ref: float) -> "TPBR":
        """Degenerate TPBR exactly tracking one object.

        The object's position is extrapolated (forwards or backwards) to the
        anchor time; because the edge velocities equal the object velocity,
        the bound is exact for every ``t``.
        """
        x, y = motion.position_at(t_ref)
        return TPBR(t_ref, x, y, x, y, motion.vx, motion.vy, motion.vx, motion.vy)

    @staticmethod
    def empty(t_ref: float) -> "TPBR":
        """An empty bound; extending it adopts the first operand's extent."""
        inf = float("inf")
        return TPBR(t_ref, inf, inf, -inf, -inf, inf, inf, -inf, -inf)

    def is_empty(self) -> bool:
        return self.x1 > self.x2 or self.y1 > self.y2

    def copy(self) -> "TPBR":
        return TPBR(
            self.t_ref, self.x1, self.y1, self.x2, self.y2,
            self.vx1, self.vy1, self.vx2, self.vy2,
        )

    # ------------------------------------------------------------------
    # evaluation in time
    # ------------------------------------------------------------------
    def rect_at(self, t: float) -> Rect:
        """The spatial bounds at time ``t >= t_ref``."""
        dt = t - self.t_ref
        if dt < 0:
            raise IndexError_(
                f"TPBR anchored at {self.t_ref} queried at earlier time {t}"
            )
        return Rect(
            self.x1 + self.vx1 * dt,
            self.y1 + self.vy1 * dt,
            self.x2 + self.vx2 * dt,
            self.y2 + self.vy2 * dt,
        )

    def area_at(self, t: float) -> float:
        dt = t - self.t_ref
        w = (self.x2 - self.x1) + (self.vx2 - self.vx1) * dt
        h = (self.y2 - self.y1) + (self.vy2 - self.vy1) * dt
        return max(w, 0.0) * max(h, 0.0)

    def integral_area(self, t_from: float, t_to: float) -> float:
        """Closed-form integral of :meth:`area_at` over ``[t_from, t_to]``.

        With ``s = t - t_ref``, width ``w(s) = w0 + a s`` and height
        ``h(s) = h0 + b s`` the integrand is a quadratic whose antiderivative
        is ``w0 h0 s + (w0 b + h0 a) s^2/2 + a b s^3/3``.  The tree only ever
        integrates over ``t >= t_ref`` where both factors are nonnegative.
        """
        if t_to < t_from:
            raise IndexError_(f"empty integration range [{t_from}, {t_to}]")
        w0 = self.x2 - self.x1
        h0 = self.y2 - self.y1
        a = self.vx2 - self.vx1
        b = self.vy2 - self.vy1

        def antiderivative(s: float) -> float:
            return w0 * h0 * s + (w0 * b + h0 * a) * s * s / 2.0 + a * b * s ** 3 / 3.0

        s1 = t_from - self.t_ref
        s2 = t_to - self.t_ref
        return antiderivative(s2) - antiderivative(s1)

    def integral_margin(self, t_from: float, t_to: float) -> float:
        """Integral of the half-perimeter ``w(t) + h(t)`` over the window.

        Used as the tie-breaker between split distributions whose bounding
        *areas* are degenerate (e.g. collinear entries), mirroring the
        R*-tree's margin metric.
        """
        if t_to < t_from:
            raise IndexError_(f"empty integration range [{t_from}, {t_to}]")
        w0 = (self.x2 - self.x1) + (self.y2 - self.y1)
        slope = (self.vx2 - self.vx1) + (self.vy2 - self.vy1)
        s1 = t_from - self.t_ref
        s2 = t_to - self.t_ref
        return w0 * (s2 - s1) + slope * (s2 * s2 - s1 * s1) / 2.0

    def intersects_rect_at(self, rect: Rect, t: float) -> bool:
        """Closed-interval overlap test between the bound at ``t`` and ``rect``.

        Deliberately *closed* (inclusive) so it can never prune an object on a
        boundary; exact half-open membership is re-checked on the retrieved
        objects by the caller.
        """
        dt = t - self.t_ref
        x_lo = self.x1 + self.vx1 * dt
        x_hi = self.x2 + self.vx2 * dt
        y_lo = self.y1 + self.vy1 * dt
        y_hi = self.y2 + self.vy2 * dt
        return not (
            x_hi < rect.x1 or rect.x2 < x_lo or y_hi < rect.y1 or rect.y2 < y_lo
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def extend_motion(self, motion: Motion) -> None:
        """Grow (in place) to enclose ``motion`` for every ``t >= t_ref``."""
        x, y = motion.position_at(self.t_ref)
        self.x1 = min(self.x1, x)
        self.y1 = min(self.y1, y)
        self.x2 = max(self.x2, x)
        self.y2 = max(self.y2, y)
        self.vx1 = min(self.vx1, motion.vx)
        self.vy1 = min(self.vy1, motion.vy)
        self.vx2 = max(self.vx2, motion.vx)
        self.vy2 = max(self.vy2, motion.vy)

    def extend_tpbr(self, other: "TPBR") -> None:
        """Grow (in place) to enclose ``other`` for every ``t >= t_ref``.

        ``other`` is re-anchored at this bound's reference time; because edge
        positions are linear, re-anchoring preserves the enclosure guarantee
        as long as both anchors precede the times of interest.
        """
        if other.is_empty():
            return
        dt = self.t_ref - other.t_ref
        ox1 = other.x1 + other.vx1 * dt
        oy1 = other.y1 + other.vy1 * dt
        ox2 = other.x2 + other.vx2 * dt
        oy2 = other.y2 + other.vy2 * dt
        self.x1 = min(self.x1, ox1)
        self.y1 = min(self.y1, oy1)
        self.x2 = max(self.x2, ox2)
        self.y2 = max(self.y2, oy2)
        self.vx1 = min(self.vx1, other.vx1)
        self.vy1 = min(self.vy1, other.vy1)
        self.vx2 = max(self.vx2, other.vx2)
        self.vy2 = max(self.vy2, other.vy2)

    def enlarged_integral(
        self, motion: Motion, t_from: float, t_to: float
    ) -> float:
        """Integral area after hypothetically adding ``motion`` (no mutation)."""
        grown = self.copy()
        grown.extend_motion(motion)
        return grown.integral_area(t_from, t_to)
