"""Moving-object indexes: the TPR-tree and the B^x-tree (over a B+-tree)."""

from .bplus import BPlusTree
from .bx import BxTree
from .tpbr import TPBR
from .tree import TPRTree

__all__ = ["TPBR", "TPRTree", "BPlusTree", "BxTree"]
