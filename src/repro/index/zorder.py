"""Z-order (Morton) space-filling curve utilities.

The B^x-tree linearises 2-D positions into B+-tree keys with a Z-order
curve over a ``2^bits x 2^bits`` quantisation grid.  Besides encoding and
decoding, a range query needs the set of curve *runs* (maximal intervals of
consecutive codes) covering a rectangle of grid cells; we enumerate the
covered cells and merge consecutive codes, which is exact and efficient for
the query-rectangle sizes PDR refinement produces.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.errors import InvalidParameterError
from ..core.geometry import Rect

__all__ = ["interleave", "deinterleave", "ZGrid"]

_B = [0x5555555555555555, 0x3333333333333333, 0x0F0F0F0F0F0F0F0F, 0x00FF00FF00FF00FF, 0x0000FFFF0000FFFF]
_S = [1, 2, 4, 8, 16]


def _part1by1(x: np.ndarray) -> np.ndarray:
    """Spread the low 32 bits of ``x`` into even bit positions."""
    x = x.astype(np.uint64)
    x = (x | (x << np.uint64(_S[4]))) & np.uint64(_B[4])
    x = (x | (x << np.uint64(_S[3]))) & np.uint64(_B[3])
    x = (x | (x << np.uint64(_S[2]))) & np.uint64(_B[2])
    x = (x | (x << np.uint64(_S[1]))) & np.uint64(_B[1])
    x = (x | (x << np.uint64(_S[0]))) & np.uint64(_B[0])
    return x


def _compact1by1(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by1`."""
    x = x.astype(np.uint64) & np.uint64(_B[0])
    x = (x | (x >> np.uint64(_S[0]))) & np.uint64(_B[1])
    x = (x | (x >> np.uint64(_S[1]))) & np.uint64(_B[2])
    x = (x | (x >> np.uint64(_S[2]))) & np.uint64(_B[3])
    x = (x | (x >> np.uint64(_S[3]))) & np.uint64(_B[4])
    x = (x | (x >> np.uint64(_S[4]))) & np.uint64(0xFFFFFFFF)
    return x


def interleave(ix, iy):
    """Morton code(s) of integer cell coordinates (x bits even, y bits odd)."""
    ix = np.asarray(ix, dtype=np.uint64)
    iy = np.asarray(iy, dtype=np.uint64)
    return _part1by1(ix) | (_part1by1(iy) << np.uint64(1))


def deinterleave(code):
    """Inverse of :func:`interleave`; returns ``(ix, iy)``."""
    code = np.asarray(code, dtype=np.uint64)
    return _compact1by1(code), _compact1by1(code >> np.uint64(1))


class ZGrid:
    """Quantisation of a world rectangle onto a ``2^bits``-per-side Z-grid."""

    def __init__(self, domain: Rect, bits: int = 8) -> None:
        if not (1 <= bits <= 16):
            raise InvalidParameterError(f"bits must be in [1, 16], got {bits}")
        if domain.is_empty():
            raise InvalidParameterError("domain must have positive area")
        self.domain = domain
        self.bits = bits
        self.side = 1 << bits
        self._cw = domain.width / self.side
        self._ch = domain.height / self.side

    @property
    def code_count(self) -> int:
        return self.side * self.side

    def cell_of(self, x: float, y: float) -> Tuple[int, int]:
        """Grid cell of a point; out-of-domain points clamp to the border."""
        ix = int((x - self.domain.x1) / self._cw)
        iy = int((y - self.domain.y1) / self._ch)
        return (
            min(max(ix, 0), self.side - 1),
            min(max(iy, 0), self.side - 1),
        )

    def code_of(self, x: float, y: float) -> int:
        ix, iy = self.cell_of(x, y)
        return int(interleave(ix, iy))

    def rect_runs(self, rect: Rect) -> List[Tuple[int, int]]:
        """Maximal runs ``(lo, hi)`` of Z-codes covering ``rect`` (clamped).

        Every point of ``rect ∩ domain`` quantises to a code inside one of
        the returned inclusive runs; codes outside the runs map to cells
        disjoint from ``rect``.
        """
        clipped = rect.intersection(self.domain)
        if clipped.is_empty():
            # A degenerate query still touches the cell it sits on.
            clipped = rect
        ix1, iy1 = self.cell_of(clipped.x1, clipped.y1)
        # High edges: half-open rectangles include points just below x2/y2.
        ix2, iy2 = self.cell_of(
            min(clipped.x2, self.domain.x2) - self._cw * 1e-9,
            min(clipped.y2, self.domain.y2) - self._ch * 1e-9,
        )
        ix2 = max(ix2, ix1)
        iy2 = max(iy2, iy1)
        xs = np.arange(ix1, ix2 + 1, dtype=np.uint64)
        ys = np.arange(iy1, iy2 + 1, dtype=np.uint64)
        gx, gy = np.meshgrid(xs, ys, indexing="ij")
        codes = np.sort(interleave(gx.ravel(), gy.ravel()).astype(np.int64))
        runs: List[Tuple[int, int]] = []
        start = prev = int(codes[0])
        for code in codes[1:]:
            code = int(code)
            if code == prev + 1:
                prev = code
                continue
            runs.append((start, prev))
            start = prev = code
        runs.append((start, prev))
        return runs
