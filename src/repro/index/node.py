"""TPR-tree nodes.

A node corresponds to one disk page (see :mod:`repro.storage.pages`).  Leaf
nodes hold :class:`~repro.motion.model.Motion` entries; internal nodes hold
child nodes.  Every node carries a :class:`~repro.index.tpbr.TPBR` bounding
all entries for every time at or after the bound's anchor.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..core.errors import IndexError_
from ..motion.model import Motion
from .tpbr import TPBR

__all__ = ["Node"]


class Node:
    """One TPR-tree node / disk page."""

    __slots__ = ("page_id", "level", "entries", "parent", "bound")

    def __init__(self, page_id: int, level: int, t_ref: float) -> None:
        self.page_id = page_id
        self.level = level  # 0 = leaf
        self.entries: List[Union[Motion, "Node"]] = []
        self.parent: Optional["Node"] = None
        self.bound: TPBR = TPBR.empty(t_ref)

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, entry: Union[Motion, "Node"]) -> None:
        """Append an entry and grow the bound; sets child parent pointers."""
        self.entries.append(entry)
        if isinstance(entry, Node):
            if self.is_leaf:
                raise IndexError_("cannot add a child node to a leaf")
            entry.parent = self
            if self.bound.is_empty():
                self.bound = TPBR.empty(self.bound.t_ref)
            self.bound.extend_tpbr(entry.bound)
        else:
            if not self.is_leaf:
                raise IndexError_("cannot add a motion to an internal node")
            self.bound.extend_motion(entry)

    def retighten(self, t_ref: float) -> None:
        """Recompute the bound from scratch, anchored at ``t_ref``.

        Called after deletions (bounds may shrink) and periodically on
        updates; this is the TPR-tree's "tightening" step.
        """
        bound = TPBR.empty(t_ref)
        if self.is_leaf:
            for motion in self.entries:
                bound.extend_motion(motion)
        else:
            for child in self.entries:
                bound.extend_tpbr(child.bound)
        self.bound = bound

    def iter_subtree_motions(self):
        """Yield every motion stored at or below this node."""
        if self.is_leaf:
            yield from self.entries
        else:
            for child in self.entries:
                yield from child.iter_subtree_motions()

    def subtree_nodes(self):
        """Yield every node of the subtree rooted here (preorder)."""
        yield self
        if not self.is_leaf:
            for child in self.entries:
                yield from child.subtree_nodes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else f"internal(level={self.level})"
        return f"Node(page={self.page_id}, {kind}, entries={len(self.entries)})"
