"""Chebyshev machinery behind the PA method: expansions, deltas, bounds, B&B."""

from .bnb import BnBResult, dense_boxes
from .bounds import bound_expansion
from .cheb1d import chebyshev_values, interval_bounds, weighted_integrals
from .cheb2d import approximate_function, coefficient_count, evaluate, evaluate_grid
from .contours import contour_segments, contour_segments_from_grid
from .delta import delta_coefficients, delta_coefficients_batch
from .grid import ChebSurface, GridSpec

__all__ = [
    "chebyshev_values",
    "interval_bounds",
    "weighted_integrals",
    "evaluate",
    "evaluate_grid",
    "approximate_function",
    "coefficient_count",
    "delta_coefficients",
    "delta_coefficients_batch",
    "bound_expansion",
    "dense_boxes",
    "BnBResult",
    "GridSpec",
    "ChebSurface",
    "contour_segments",
    "contour_segments_from_grid",
]
