"""Branch-and-bound dense-region extraction (Section 6.3).

Starting from the whole normalized square of every polynomial tile, compute
a sound bracket ``[lower, upper]`` of the approximated density over each
box:

* ``lower >= rho``  — the whole box is dense, emit it;
* ``upper  < rho``  — the box is nowhere dense, prune it;
* otherwise split into four quadrants and recurse, until the box edge drops
  below the resolution ``min_edge`` — then classify by the density at the
  box centre (the paper's ``m_d``-grid fallback).

The search is level-synchronous and fully vectorised: every surviving box of
a level — across *all* tiles — is bounded in one numpy pass, and only the
``(k+1)(k+2)/2`` coefficients the total-degree truncation retains enter the
interval arithmetic.  That keeps the PA query cost dependent only on the
coefficient count and the geometry of the density surface, never on the
number of moving objects (the property behind Figure 10(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..core.errors import InvalidParameterError
from .cheb2d import chebyshev_values

__all__ = ["BnBResult", "dense_boxes", "dense_boxes_grid"]

_TWO_PI = 2.0 * np.pi


def _empty_boxes() -> np.ndarray:
    return np.empty((0, 4))


def _empty_tiles() -> np.ndarray:
    return np.empty((0, 2), dtype=np.int64)


@dataclass
class BnBResult:
    """Dense boxes in normalized coordinates plus search statistics.

    ``boxes`` is an ``(M, 4)`` array of ``(x1, y1, x2, y2)`` in each tile's
    normalized frame; ``tiles`` is the matching ``(M, 2)`` array of tile
    indices (all zeros for single-polynomial searches).
    """

    boxes: np.ndarray = field(default_factory=_empty_boxes)
    tiles: np.ndarray = field(default_factory=_empty_tiles)
    nodes_visited: int = 0
    accepted_by_bound: int = 0
    pruned_by_bound: int = 0
    resolved_at_leaf: int = 0

    def __len__(self) -> int:
        return len(self.boxes)

    def box_tuples(self) -> List[Tuple[float, float, float, float]]:
        """Boxes as python tuples (test/debug convenience)."""
        return [tuple(map(float, row)) for row in self.boxes]


def _chebyshev_interval_bounds(
    k: int, z1: np.ndarray, z2: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact bounds of ``T_i`` over ``[z1, z2]`` for every i, vectorised.

    ``z1``/``z2`` have shape ``(M,)``; the result has shape ``(k+1, M)``.
    With ``theta = arccos x`` (decreasing), the angular interval of degree
    ``i`` is ``[i*arccos(z2), i*arccos(z1)]``; the cosine extrema are read
    off by checking whether the interval crosses a multiple of ``2*pi``
    (maximum +1) or an odd multiple of ``pi`` (minimum -1).
    """
    theta_lo = np.arccos(np.clip(z2, -1.0, 1.0))  # smaller angle
    theta_hi = np.arccos(np.clip(z1, -1.0, 1.0))
    i = np.arange(k + 1, dtype=float)[:, None]
    phi1 = i * theta_lo[None, :]
    phi2 = i * theta_hi[None, :]
    c1 = np.cos(phi1)
    c2 = np.cos(phi2)
    hi = np.maximum(c1, c2)
    lo = np.minimum(c1, c2)
    has_max = np.floor(phi2 / _TWO_PI) >= np.ceil(phi1 / _TWO_PI)
    has_min = np.floor((phi2 - np.pi) / _TWO_PI) >= np.ceil((phi1 - np.pi) / _TWO_PI)
    hi = np.where(has_max, 1.0, hi)
    lo = np.where(has_min, -1.0, lo)
    # Degree 0 is constant 1 regardless of the interval.
    lo[0] = 1.0
    hi[0] = 1.0
    return lo, hi




class _GridSearcher:
    """Shared state for one :func:`dense_boxes_grid` run."""

    def __init__(self, coeff_grid: np.ndarray) -> None:
        k = coeff_grid.shape[2] - 1
        self.k = k
        self.coeff_grid = coeff_grid
        # Flat list of the retained (i, j) coefficient indices (i + j <= k);
        # only these enter the interval arithmetic.
        ii, jj = np.meshgrid(np.arange(k + 1), np.arange(k + 1), indexing="ij")
        keep = (ii + jj) <= k
        self.ii = ii[keep]
        self.jj = jj[keep]
        # (g, g, P) view of the retained coefficients.
        self.flat_coeffs = coeff_grid[:, :, self.ii, self.jj]
        # Sign-split per-tile coefficient matrices, flattened to (g*g, P):
        # a sound sum bound is pos @ t_lo + neg @ t_hi (lower) and its
        # mirror (upper), which lets :meth:`bound` run as two matmuls over
        # the deduped (tile, geometry) combinations.
        self.g = coeff_grid.shape[0]
        flat2d = np.ascontiguousarray(self.flat_coeffs.reshape(self.g * self.g, -1))
        self.pos_coeffs = np.maximum(flat2d, 0.0)
        self.neg_coeffs = np.minimum(flat2d, 0.0)

    def bound(
        self,
        ti: np.ndarray,
        tj: np.ndarray,
        x1: np.ndarray,
        x2: np.ndarray,
        y1: np.ndarray,
        y2: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sound (lower, upper) brackets for ``M`` boxes; shapes ``(M,)``.

        The level-synchronous frontier is dyadic: thousands of boxes share a
        handful of distinct normalized intervals per level (the same
        subdivision pattern repeats across tiles), so the trig and the
        interval products run once per *distinct* box geometry, and the
        coefficient contraction runs as two BLAS matmuls over the distinct
        (tile, geometry) pairs — never once per box.
        """
        ux, inv_x = np.unique(x1 + 1j * x2, return_inverse=True)
        uy, inv_y = np.unique(y1 + 1j * y2, return_inverse=True)
        lx, hx = _chebyshev_interval_bounds(self.k, ux.real, ux.imag)
        ly, hy = _chebyshev_interval_bounds(self.k, uy.real, uy.imag)
        code = inv_x * uy.size + inv_y
        ucode, geo = np.unique(code, return_inverse=True)
        gx = ucode // uy.size
        gy = ucode % uy.size
        lxp, hxp = lx[self.ii][:, gx], hx[self.ii][:, gx]  # (P, U)
        lyp, hyp = ly[self.jj][:, gy], hy[self.jj][:, gy]
        p1 = lxp * lyp
        p2 = lxp * hyp
        p3 = hxp * lyp
        p4 = hxp * hyp
        t_lo = np.minimum(np.minimum(p1, p2), np.minimum(p3, p4))
        t_hi = np.maximum(np.maximum(p1, p2), np.maximum(p3, p4))
        tcode = ti * self.g + tj
        utile, inv_t = np.unique(tcode, return_inverse=True)
        if utile.size * ucode.size <= 8 * ti.size:
            # Dense regime (most levels): bound every (tile, geometry)
            # combination by matmul, then gather each box's entry.
            pos = self.pos_coeffs[utile]  # (T, P)
            neg = self.neg_coeffs[utile]
            lo_combo = pos @ t_lo + neg @ t_hi  # (T, U)
            hi_combo = pos @ t_hi + neg @ t_lo
            return lo_combo[inv_t, geo], hi_combo[inv_t, geo]
        # Sparse regime (nearly every box has a private geometry): expand
        # the deduped products back per box and contract elementwise.
        t_lo_b, t_hi_b = t_lo[:, geo], t_hi[:, geo]  # (P, M)
        pos = self.pos_coeffs[tcode].T  # (P, M)
        neg = self.neg_coeffs[tcode].T
        return (
            (pos * t_lo_b + neg * t_hi_b).sum(axis=0),
            (pos * t_hi_b + neg * t_lo_b).sum(axis=0),
        )

    def evaluate_centers(
        self, ti: np.ndarray, tj: np.ndarray, cx: np.ndarray, cy: np.ndarray
    ) -> np.ndarray:
        # Leaf centres are dyadic too — evaluate each distinct ordinate once.
        ux, inv_x = np.unique(cx, return_inverse=True)
        uy, inv_y = np.unique(cy, return_inverse=True)
        tx = chebyshev_values(self.k, ux)[:, inv_x]  # (k+1, M)
        ty = chebyshev_values(self.k, uy)[:, inv_y]
        a = self.flat_coeffs[ti, tj].T  # (P, M)
        return (a * tx[self.ii] * ty[self.jj]).sum(axis=0)


def dense_boxes_grid(coeff_grid: np.ndarray, rho: float, min_edge: float) -> BnBResult:
    """Branch-and-bound over a ``(g, g, k+1, k+1)`` grid of polynomials.

    Each tile is searched in its own normalized ``[-1, 1]^2`` frame; all
    tiles advance level-by-level together so every numpy pass covers the
    whole frontier.  Returns normalized boxes tagged with their tile.
    """
    if min_edge <= 0:
        raise InvalidParameterError(f"min_edge must be positive, got {min_edge}")
    if coeff_grid.ndim != 4 or coeff_grid.shape[0] != coeff_grid.shape[1]:
        raise InvalidParameterError(
            f"expected (g, g, k+1, k+1) coefficients, got shape {coeff_grid.shape}"
        )
    g = coeff_grid.shape[0]
    searcher = _GridSearcher(coeff_grid)
    result = BnBResult()
    out_boxes: List[np.ndarray] = []
    out_tiles: List[np.ndarray] = []

    # Frontier arrays: tile indices and normalized box bounds.
    ti, tj = np.meshgrid(np.arange(g), np.arange(g), indexing="ij")
    ti = ti.ravel()
    tj = tj.ravel()
    n0 = g * g
    bx1 = np.full(n0, -1.0)
    by1 = np.full(n0, -1.0)
    bx2 = np.ones(n0)
    by2 = np.ones(n0)

    def emit(mask: np.ndarray) -> None:
        if mask.any():
            out_boxes.append(np.stack([bx1[mask], by1[mask], bx2[mask], by2[mask]], 1))
            out_tiles.append(np.stack([ti[mask], tj[mask]], 1))

    while ti.size:
        result.nodes_visited += ti.size
        lo, hi = searcher.bound(ti, tj, bx1, bx2, by1, by2)
        accept = lo >= rho
        prune = ~accept & (hi < rho)
        undecided = ~accept & ~prune
        result.accepted_by_bound += int(accept.sum())
        result.pruned_by_bound += int(prune.sum())
        emit(accept)

        ti, tj = ti[undecided], tj[undecided]
        bx1, by1 = bx1[undecided], by1[undecided]
        bx2, by2 = bx2[undecided], by2[undecided]
        if ti.size == 0:
            break

        small_x = (bx2 - bx1) <= min_edge
        small_y = (by2 - by1) <= min_edge
        leaf = small_x & small_y
        if leaf.any():
            result.resolved_at_leaf += int(leaf.sum())
            cx = (bx1[leaf] + bx2[leaf]) / 2.0
            cy = (by1[leaf] + by2[leaf]) / 2.0
            values = searcher.evaluate_centers(ti[leaf], tj[leaf], cx, cy)
            dense_leaf = leaf.copy()
            dense_leaf[leaf] = values >= rho
            emit(dense_leaf)

        split = ~leaf
        ti, tj = ti[split], tj[split]
        bx1, by1, bx2, by2 = bx1[split], by1[split], bx2[split], by2[split]
        split_x = (bx2 - bx1) > min_edge
        split_y = (by2 - by1) > min_edge
        if ti.size == 0:
            break

        mx = (bx1 + bx2) / 2.0
        my = (by1 + by2) / 2.0
        # Children: low/high halves per axis; an axis at the resolution
        # floor contributes a single (full-extent) slab instead of two.
        child = {"ti": [], "tj": [], "x1": [], "x2": [], "y1": [], "y2": []}
        x_halves = [
            (np.ones_like(split_x, dtype=bool), bx1, np.where(split_x, mx, bx2)),
            (split_x, mx, bx2),
        ]
        y_halves = [
            (np.ones_like(split_y, dtype=bool), by1, np.where(split_y, my, by2)),
            (split_y, my, by2),
        ]
        for use_x, x_lo, x_hi in x_halves:
            for use_y, y_lo, y_hi in y_halves:
                use = use_x & use_y
                if not use.any():
                    continue
                child["ti"].append(ti[use])
                child["tj"].append(tj[use])
                child["x1"].append(x_lo[use])
                child["x2"].append(x_hi[use])
                child["y1"].append(y_lo[use])
                child["y2"].append(y_hi[use])
        ti = np.concatenate(child["ti"])
        tj = np.concatenate(child["tj"])
        bx1 = np.concatenate(child["x1"])
        bx2 = np.concatenate(child["x2"])
        by1 = np.concatenate(child["y1"])
        by2 = np.concatenate(child["y2"])

    if out_boxes:
        result.boxes = np.concatenate(out_boxes)
        result.tiles = np.concatenate(out_tiles)
    return result


def dense_boxes(coeffs: np.ndarray, rho: float, min_edge: float) -> BnBResult:
    """Boxes of ``[-1, 1]^2`` where a single expansion is ``>= rho``.

    Thin wrapper over :func:`dense_boxes_grid` with a 1x1 tile grid.
    """
    grid = coeffs[None, None, :, :]
    return dense_boxes_grid(grid, rho, min_edge)
