"""One-dimensional Chebyshev building blocks.

``T_k(x) = cos(k arccos x)`` on ``[-1, 1]`` (Definition 8).  The PA method
needs three operations on these basis functions:

* evaluating ``T_0..T_k`` at many points (the three-term recurrence);
* the closed-form weighted integrals ``∫ T_i(x)/sqrt(1-x^2) dx`` over a
  sub-interval, which drive the per-update delta coefficients (Lemma 4);
* tight lower/upper bounds of ``T_i`` over a sub-interval ``[z1, z2]``,
  which drive the branch-and-bound query evaluation (Section 6.3).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..core.errors import InvalidParameterError

__all__ = [
    "chebyshev_values",
    "weighted_integrals",
    "interval_bounds",
    "interval_bounds_all",
]

_TWO_PI = 2.0 * math.pi


def chebyshev_values(k: int, x: np.ndarray) -> np.ndarray:
    """``T_0..T_k`` evaluated at ``x``; shape ``(k+1, len(x))``.

    Uses the three-term recurrence ``T_n = 2 x T_{n-1} - T_{n-2}``, which is
    numerically stable on ``[-1, 1]``.
    """
    if k < 0:
        raise InvalidParameterError(f"degree must be >= 0, got {k}")
    x = np.asarray(x, dtype=float)
    out = np.empty((k + 1,) + x.shape, dtype=float)
    out[0] = 1.0
    if k >= 1:
        out[1] = x
    for n in range(2, k + 1):
        out[n] = 2.0 * x * out[n - 1] - out[n - 2]
    return out


def weighted_integrals(k: int, z1: float, z2: float) -> np.ndarray:
    """``∫_{z1}^{z2} T_i(x) / sqrt(1 - x^2) dx`` for ``i = 0..k``.

    Uses the antiderivatives from the paper's Lemma 4:
    ``-arccos(x)`` for ``i = 0`` and ``-sin(i arccos x)/i`` for ``i > 0``.
    Inputs are clipped to ``[-1, 1]``; an empty interval yields zeros.
    """
    if k < 0:
        raise InvalidParameterError(f"degree must be >= 0, got {k}")
    z1 = min(max(z1, -1.0), 1.0)
    z2 = min(max(z2, -1.0), 1.0)
    out = np.zeros(k + 1, dtype=float)
    if z2 <= z1:
        return out
    theta1 = math.acos(z1)  # larger angle (z1 <= z2 -> theta1 >= theta2)
    theta2 = math.acos(z2)
    out[0] = theta1 - theta2
    if k >= 1:
        i = np.arange(1, k + 1, dtype=float)
        out[1:] = (np.sin(i * theta1) - np.sin(i * theta2)) / i
    return out


def plain_integrals(k: int, z1: float, z2: float) -> np.ndarray:
    """``∫_{z1}^{z2} T_i(x) dx`` (unweighted) for ``i = 0..k``.

    Uses the classical antiderivatives ``∫T_0 = x``, ``∫T_1 = x^2/2`` and
    ``∫T_n = T_{n+1}/(2(n+1)) - T_{n-1}/(2(n-1))`` for ``n >= 2``.  These
    drive the closed-form selectivity estimator (integrating the density
    surface over a query rectangle).
    """
    if k < 0:
        raise InvalidParameterError(f"degree must be >= 0, got {k}")
    z1 = min(max(z1, -1.0), 1.0)
    z2 = min(max(z2, -1.0), 1.0)
    out = np.zeros(k + 1, dtype=float)
    if z2 <= z1:
        return out
    ends = np.array([z1, z2])
    t = chebyshev_values(k + 1, ends)  # (k+2, 2)
    out[0] = z2 - z1
    if k >= 1:
        out[1] = (z2 * z2 - z1 * z1) / 2.0
    for n in range(2, k + 1):
        anti = t[n + 1] / (2.0 * (n + 1)) - t[n - 1] / (2.0 * (n - 1))
        out[n] = anti[1] - anti[0]
    return out


def _cos_range(phi1: float, phi2: float) -> Tuple[float, float]:
    """Exact (lo, hi) of ``cos`` over ``[phi1, phi2]`` with ``phi1 <= phi2``."""
    lo = min(math.cos(phi1), math.cos(phi2))
    hi = max(math.cos(phi1), math.cos(phi2))
    # cos attains +1 at multiples of 2*pi and -1 at odd multiples of pi.
    if math.floor(phi2 / _TWO_PI) >= math.ceil(phi1 / _TWO_PI):
        hi = 1.0
    if math.floor((phi2 - math.pi) / _TWO_PI) >= math.ceil((phi1 - math.pi) / _TWO_PI):
        lo = -1.0
    return lo, hi


def interval_bounds(i: int, z1: float, z2: float) -> Tuple[float, float]:
    """Exact ``(lower, upper)`` of ``T_i`` over ``[z1, z2] ⊆ [-1, 1]``.

    ``T_i(x) = cos(i θ)`` with ``θ = arccos x`` decreasing in ``x``, so the
    angular interval is ``[i·arccos(z2), i·arccos(z1)]``.
    """
    if i < 0:
        raise InvalidParameterError(f"degree must be >= 0, got {i}")
    if z2 < z1:
        raise InvalidParameterError(f"empty interval [{z1}, {z2}]")
    z1 = min(max(z1, -1.0), 1.0)
    z2 = min(max(z2, -1.0), 1.0)
    if i == 0:
        return (1.0, 1.0)
    phi1 = i * math.acos(z2)
    phi2 = i * math.acos(z1)
    return _cos_range(phi1, phi2)


def interval_bounds_all(k: int, z1: float, z2: float) -> Tuple[np.ndarray, np.ndarray]:
    """``interval_bounds`` for every degree ``0..k``; returns (lows, highs)."""
    lows = np.empty(k + 1, dtype=float)
    highs = np.empty(k + 1, dtype=float)
    for i in range(k + 1):
        lows[i], highs[i] = interval_bounds(i, z1, z2)
    return lows, highs
