"""Density contour extraction from an approximated surface.

Section 6 notes that the Chebyshev representation makes it easy to "compute
contour lines for the approximated distribution in explicit form, which
provide a clear overview of the distribution of moving objects".  We realise
that feature with a marching-squares pass over a sampled grid of the
surface: for each grid square, the iso-line of level ``rho`` is approximated
by linear interpolation along the square's edges.

The output is a list of line segments in world coordinates — enough for the
examples to draw ASCII/vector overviews of where density crosses the query
threshold.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.errors import InvalidParameterError
from ..core.geometry import Rect

__all__ = ["contour_segments", "contour_segments_from_grid"]

Segment = Tuple[Tuple[float, float], Tuple[float, float]]

# Marching-squares edge table: case index -> list of (edge_a, edge_b) pairs.
# Edges: 0 = bottom, 1 = right, 2 = top, 3 = left.  Ambiguous saddle cases
# (5, 10) are resolved by the standard two-segment convention.
_CASES = {
    0: [],
    1: [(3, 0)],
    2: [(0, 1)],
    3: [(3, 1)],
    4: [(1, 2)],
    5: [(3, 2), (0, 1)],
    6: [(0, 2)],
    7: [(3, 2)],
    8: [(2, 3)],
    9: [(2, 0)],
    10: [(2, 1), (0, 3)],
    11: [(2, 1)],
    12: [(1, 3)],
    13: [(1, 0)],
    14: [(0, 3)],
    15: [],
}


def _edge_point(
    edge: int,
    x0: float,
    y0: float,
    dx: float,
    dy: float,
    v00: float,
    v10: float,
    v11: float,
    v01: float,
    level: float,
) -> Tuple[float, float]:
    """Interpolated crossing point of ``level`` on the given square edge."""

    def frac(a: float, b: float) -> float:
        if a == b:
            return 0.5
        t = (level - a) / (b - a)
        return min(max(t, 0.0), 1.0)

    if edge == 0:  # bottom: (x0,y0) -> (x0+dx,y0)
        return (x0 + dx * frac(v00, v10), y0)
    if edge == 1:  # right: (x0+dx,y0) -> (x0+dx,y0+dy)
        return (x0 + dx, y0 + dy * frac(v10, v11))
    if edge == 2:  # top: (x0,y0+dy) -> (x0+dx,y0+dy)
        return (x0 + dx * frac(v01, v11), y0 + dy)
    # left: (x0,y0) -> (x0,y0+dy)
    return (x0, y0 + dy * frac(v00, v01))


def contour_segments_from_grid(
    values: np.ndarray, domain: Rect, level: float
) -> List[Segment]:
    """Marching squares over pre-sampled ``values[ix, iy]`` (cell centres)."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 2 or min(values.shape) < 2:
        raise InvalidParameterError("contour extraction needs at least a 2x2 grid")
    nx, ny = values.shape
    dx = domain.width / nx
    dy = domain.height / ny
    # Sample points are cell centres.
    x_of = lambda ix: domain.x1 + (ix + 0.5) * dx  # noqa: E731 - tiny local helper
    y_of = lambda iy: domain.y1 + (iy + 0.5) * dy  # noqa: E731
    segments: List[Segment] = []
    for ix in range(nx - 1):
        for iy in range(ny - 1):
            v00 = values[ix, iy]
            v10 = values[ix + 1, iy]
            v11 = values[ix + 1, iy + 1]
            v01 = values[ix, iy + 1]
            case = (
                (1 if v00 >= level else 0)
                | (2 if v10 >= level else 0)
                | (4 if v11 >= level else 0)
                | (8 if v01 >= level else 0)
            )
            for edge_a, edge_b in _CASES[case]:
                pa = _edge_point(
                    edge_a, x_of(ix), y_of(iy), dx, dy, v00, v10, v11, v01, level
                )
                pb = _edge_point(
                    edge_b, x_of(ix), y_of(iy), dx, dy, v00, v10, v11, v01, level
                )
                segments.append((pa, pb))
    return segments


def contour_segments(surface, level: float, resolution: int = 128) -> List[Segment]:
    """Contour of a :class:`~repro.chebyshev.grid.ChebSurface` at ``level``."""
    values = surface.density_grid(resolution)
    return contour_segments_from_grid(values, surface.spec.domain, level)
