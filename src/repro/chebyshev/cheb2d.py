"""Two-dimensional Chebyshev expansions of total degree ``k``.

A density surface over ``[-1, 1]^2`` is approximated as

    f_hat(x, y) = sum_{i + j <= k} a_ij T_i(x) T_j(y)

with coefficients ``a_ij = (c_ij / pi^2) * ∬ f T_i T_j w dx dy`` where
``w = 1/sqrt((1-x^2)(1-y^2))`` and ``c_ij`` is 4 when both indices are
positive, 2 when exactly one is zero, and 1 when both are zero (Theorem 1).

Coefficients are stored in a dense ``(k+1, k+1)`` array whose upper
anti-triangle (``i + j > k``) is identically zero; that keeps evaluation a
single einsum while honouring the paper's total-degree truncation and its
``(k+1)(k+2)/2`` coefficient count.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InvalidParameterError
from .cheb1d import chebyshev_values

__all__ = [
    "normalization_factors",
    "total_degree_mask",
    "coefficient_count",
    "evaluate",
    "evaluate_grid",
    "approximate_function",
]


def normalization_factors(k: int) -> np.ndarray:
    """The ``c_ij`` matrix of Theorem 1, shape ``(k+1, k+1)``."""
    if k < 0:
        raise InvalidParameterError(f"degree must be >= 0, got {k}")
    c = np.full((k + 1, k + 1), 4.0)
    c[0, :] = 2.0
    c[:, 0] = 2.0
    c[0, 0] = 1.0
    return c


def total_degree_mask(k: int) -> np.ndarray:
    """Boolean mask of the retained coefficients (``i + j <= k``)."""
    idx = np.arange(k + 1)
    return (idx[:, None] + idx[None, :]) <= k


def coefficient_count(k: int) -> int:
    """Number of retained coefficients, ``(k+1)(k+2)/2``."""
    return (k + 1) * (k + 2) // 2


def evaluate(coeffs: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Evaluate the expansion at paired points ``(x[i], y[i])``."""
    k = coeffs.shape[0] - 1
    tx = chebyshev_values(k, np.asarray(x, dtype=float))
    ty = chebyshev_values(k, np.asarray(y, dtype=float))
    return np.einsum("ij,i...,j...->...", coeffs, tx, ty)


def evaluate_grid(coeffs: np.ndarray, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Evaluate on the tensor grid ``xs x ys``; shape ``(len(xs), len(ys))``."""
    k = coeffs.shape[0] - 1
    tx = chebyshev_values(k, np.asarray(xs, dtype=float))
    ty = chebyshev_values(k, np.asarray(ys, dtype=float))
    return np.einsum("ij,ia,jb->ab", coeffs, tx, ty)


def approximate_function(func, k: int, quad_points: int = 64) -> np.ndarray:
    """Chebyshev coefficients of an arbitrary ``f(x, y)`` by Gauss-Chebyshev quadrature.

    Intended for tests and offline analysis (the PA method never needs it at
    run time: its increments have closed forms).  Uses the Chebyshev-Gauss
    rule, exact for polynomial integrands up to degree ``2*quad_points - 1``.
    """
    if quad_points <= k:
        raise InvalidParameterError(
            f"need more quadrature points ({quad_points}) than degree ({k})"
        )
    # Chebyshev-Gauss nodes and (uniform) weights pi/n.
    n = quad_points
    theta = (np.arange(n) + 0.5) * np.pi / n
    nodes = np.cos(theta)
    tvals = chebyshev_values(k, nodes)  # (k+1, n)
    fx = np.asarray(
        [[func(xi, yj) for yj in nodes] for xi in nodes], dtype=float
    )  # (n, n)
    # a_ij = (c/pi^2) * (pi/n)^2 * sum_pq f(x_p, y_q) T_i(x_p) T_j(y_q)
    raw = np.einsum("pq,ip,jq->ij", fx, tvals, tvals) * (np.pi / n) ** 2
    coeffs = normalization_factors(k) / np.pi**2 * raw
    coeffs[~total_degree_mask(k)] = 0.0
    return coeffs
