"""Closed-form delta coefficients for indicator-square density increments.

When an object (predicted at normalized position inside a polynomial cell)
is inserted, every point whose l-square contains it gains ``1/l^2`` density;
the set of such points is an axis-aligned square, clipped to the cell.  The
density change is therefore ``delta(x, y) = height * 1[(x, y) in R]`` for a
rectangle ``R = [x1, x2] x [y1, y2]`` in normalized coordinates, and its
Chebyshev coefficients factor into 1-D weighted integrals (Lemma 4):

    a_ij^delta = (c_ij / pi^2) * height * A_i(x1, x2) * A_j(y1, y2)

with ``A_i`` from :func:`repro.chebyshev.cheb1d.weighted_integrals`.
Linearity of the coefficient functional (Lemma 3) lets the maintainer simply
add these to (insert) or subtract them from (delete) the running
coefficients.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InvalidParameterError
from .cheb1d import weighted_integrals
from .cheb2d import normalization_factors, total_degree_mask

__all__ = ["delta_coefficients", "delta_coefficients_batch"]


def delta_coefficients(
    k: int, x1: float, x2: float, y1: float, y2: float, height: float
) -> np.ndarray:
    """Coefficients of ``height * 1[[x1,x2] x [y1,y2]]``; shape ``(k+1, k+1)``.

    Rectangle bounds are in normalized coordinates and are clipped to
    ``[-1, 1]``; an empty rectangle yields all zeros.  Entries with
    ``i + j > k`` are zero per the total-degree truncation.
    """
    ax = weighted_integrals(k, x1, x2)
    ay = weighted_integrals(k, y1, y2)
    coeffs = normalization_factors(k) / np.pi**2 * height * np.outer(ax, ay)
    coeffs[~total_degree_mask(k)] = 0.0
    return coeffs


def delta_coefficients_batch(
    k: int,
    x1: np.ndarray,
    x2: np.ndarray,
    y1: np.ndarray,
    y2: np.ndarray,
    height: float,
) -> np.ndarray:
    """Vectorised :func:`delta_coefficients` over ``M`` rectangles.

    Returns shape ``(M, k+1, k+1)``.  Used by the PA maintainer, which
    processes one rectangle per (timestamp, overlapped cell) pair of an
    object update in a single numpy pass.
    """
    x1 = np.clip(np.asarray(x1, dtype=float), -1.0, 1.0)
    x2 = np.clip(np.asarray(x2, dtype=float), -1.0, 1.0)
    y1 = np.clip(np.asarray(y1, dtype=float), -1.0, 1.0)
    y2 = np.clip(np.asarray(y2, dtype=float), -1.0, 1.0)
    if not (x1.shape == x2.shape == y1.shape == y2.shape):
        raise InvalidParameterError("rectangle bound arrays must share a shape")
    m = x1.shape[0]
    if m == 0:
        return np.zeros((0, k + 1, k + 1))

    def axis_integrals(z1: np.ndarray, z2: np.ndarray) -> np.ndarray:
        """``A_i`` for every rectangle; shape ``(k+1, M)``."""
        empty = z2 <= z1
        theta1 = np.arccos(z1)  # the larger angle
        theta2 = np.arccos(z2)
        out = np.empty((k + 1, m), dtype=float)
        out[0] = theta1 - theta2
        if k >= 1:
            i = np.arange(1, k + 1, dtype=float)[:, None]
            out[1:] = (np.sin(i * theta1[None, :]) - np.sin(i * theta2[None, :])) / i
        out[:, empty] = 0.0
        return out

    ax = axis_integrals(x1, x2)  # (k+1, M)
    ay = axis_integrals(y1, y2)
    c = normalization_factors(k)
    coeffs = (height / np.pi**2) * np.einsum("ij,im,jm->mij", c, ax, ay)
    coeffs[:, ~total_degree_mask(k)] = 0.0
    return coeffs
