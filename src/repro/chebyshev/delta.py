"""Closed-form delta coefficients for indicator-square density increments.

When an object (predicted at normalized position inside a polynomial cell)
is inserted, every point whose l-square contains it gains ``1/l^2`` density;
the set of such points is an axis-aligned square, clipped to the cell.  The
density change is therefore ``delta(x, y) = height * 1[(x, y) in R]`` for a
rectangle ``R = [x1, x2] x [y1, y2]`` in normalized coordinates, and its
Chebyshev coefficients factor into 1-D weighted integrals (Lemma 4):

    a_ij^delta = (c_ij / pi^2) * height * A_i(x1, x2) * A_j(y1, y2)

with ``A_i`` from :func:`repro.chebyshev.cheb1d.weighted_integrals`.
Linearity of the coefficient functional (Lemma 3) lets the maintainer simply
add these to (insert) or subtract them from (delete) the running
coefficients.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InvalidParameterError
from .cheb1d import weighted_integrals
from .cheb2d import normalization_factors, total_degree_mask

__all__ = ["delta_coefficients", "delta_coefficients_batch"]


def delta_coefficients(
    k: int, x1: float, x2: float, y1: float, y2: float, height: float
) -> np.ndarray:
    """Coefficients of ``height * 1[[x1,x2] x [y1,y2]]``; shape ``(k+1, k+1)``.

    Rectangle bounds are in normalized coordinates and are clipped to
    ``[-1, 1]``; an empty rectangle yields all zeros.  Entries with
    ``i + j > k`` are zero per the total-degree truncation.
    """
    ax = weighted_integrals(k, x1, x2)
    ay = weighted_integrals(k, y1, y2)
    coeffs = normalization_factors(k) / np.pi**2 * height * np.outer(ax, ay)
    coeffs[~total_degree_mask(k)] = 0.0
    return coeffs


def delta_coefficients_batch(
    k: int,
    x1: np.ndarray,
    x2: np.ndarray,
    y1: np.ndarray,
    y2: np.ndarray,
    height,
) -> np.ndarray:
    """Vectorised :func:`delta_coefficients` over ``M`` rectangles.

    Returns shape ``(M, k+1, k+1)``.  Used by the PA maintainer, which
    processes one rectangle per (timestamp, overlapped cell) pair of an
    object update in a single numpy pass.

    ``height`` may be a scalar shared by every rectangle or an ``(M,)``
    array of per-rectangle heights — the batched ingest path mixes
    deletions (negative heights) and insertions in one call; the
    per-element arithmetic is identical either way, so a mixed batch is
    bit-identical to per-sign calls.
    """
    x1 = np.clip(np.asarray(x1, dtype=float), -1.0, 1.0)
    x2 = np.clip(np.asarray(x2, dtype=float), -1.0, 1.0)
    y1 = np.clip(np.asarray(y1, dtype=float), -1.0, 1.0)
    y2 = np.clip(np.asarray(y2, dtype=float), -1.0, 1.0)
    if not (x1.shape == x2.shape == y1.shape == y2.shape):
        raise InvalidParameterError("rectangle bound arrays must share a shape")
    m = x1.shape[0]
    if m == 0:
        return np.zeros((0, k + 1, k + 1))

    def axis_integrals(z1: np.ndarray, z2: np.ndarray) -> np.ndarray:
        """``A_i`` for every rectangle; shape ``(k+1, M)``.

        ``sin(i * arccos(z))`` comes from the Chebyshev recurrence
        ``s_i = 2 z s_{i-1} - s_{i-2}`` seeded with ``sqrt(1 - z^2)`` —
        for the small ``k`` in play this agrees with direct ``np.sin``
        to a few ulps while skipping ~k transcendental evaluations per
        bound.
        """
        empty = z2 <= z1
        theta1 = np.arccos(z1)  # the larger angle
        theta2 = np.arccos(z2)
        out = np.empty((k + 1, m), dtype=float)
        out[0] = theta1 - theta2
        if k >= 1:
            cur1 = np.sqrt(1.0 - z1 * z1)  # sin(theta1); theta in [0, pi]
            cur2 = np.sqrt(1.0 - z2 * z2)
            prev1 = np.zeros_like(cur1)
            prev2 = np.zeros_like(cur2)
            out[1] = cur1 - cur2
            for i in range(2, k + 1):
                cur1, prev1 = 2.0 * z1 * cur1 - prev1, cur1
                cur2, prev2 = 2.0 * z2 * cur2 - prev2, cur2
                out[i] = (cur1 - cur2) / i
        out[:, empty] = 0.0
        return out

    ax = axis_integrals(x1, x2)  # (k+1, M)
    ay = axis_integrals(y1, y2)
    c = normalization_factors(k)
    scale = np.asarray(height, dtype=float) / np.pi**2
    if scale.ndim == 1:
        if scale.shape[0] != m:
            raise InvalidParameterError(
                f"height array has {scale.shape[0]} entries for {m} rectangles"
            )
        scale = scale[:, None, None]
    coeffs = scale * np.einsum("ij,im,jm->mij", c, ax, ay)
    coeffs[:, ~total_degree_mask(k)] = 0.0
    return coeffs
