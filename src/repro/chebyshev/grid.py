"""Multi-polynomial density surfaces (Section 6.4).

A single global polynomial cannot track a highly skewed density surface, so
the PA method tiles the domain with a ``g x g`` macro grid and keeps an
independent total-degree-``k`` Chebyshev expansion per tile, each over its
own normalized ``[-1, 1]^2`` frame.  :class:`GridSpec` owns the coordinate
mapping; :class:`ChebSurface` wraps the ``(g, g, k+1, k+1)`` coefficient
block of one timestamp and provides evaluation and branch-and-bound region
extraction in world coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.errors import InvalidParameterError
from ..core.geometry import Rect
from ..core.regions import RegionSet
from .bnb import BnBResult, dense_boxes_grid
from .cheb2d import coefficient_count, evaluate, evaluate_grid
from .delta import delta_coefficients

__all__ = ["GridSpec", "ChebSurface"]


@dataclass(frozen=True)
class GridSpec:
    """Geometry of the ``g x g`` polynomial tiling of ``domain``."""

    domain: Rect
    g: int
    k: int

    def __post_init__(self) -> None:
        if self.g < 1:
            raise InvalidParameterError(f"grid factor g must be >= 1, got {self.g}")
        if self.k < 0:
            raise InvalidParameterError(f"degree k must be >= 0, got {self.k}")
        if self.domain.is_empty():
            raise InvalidParameterError("domain must have positive area")

    @property
    def cell_width(self) -> float:
        return self.domain.width / self.g

    @property
    def cell_height(self) -> float:
        return self.domain.height / self.g

    def cell_rect(self, i: int, j: int) -> Rect:
        x1 = self.domain.x1 + i * self.cell_width
        y1 = self.domain.y1 + j * self.cell_height
        return Rect(x1, y1, x1 + self.cell_width, y1 + self.cell_height)

    def cell_of(self, x: float, y: float) -> Tuple[int, int]:
        i = int((x - self.domain.x1) / self.cell_width)
        j = int((y - self.domain.y1) / self.cell_height)
        return (min(max(i, 0), self.g - 1), min(max(j, 0), self.g - 1))

    def to_normalized_x(self, i: int, x) -> np.ndarray:
        """World x -> normalized coordinate within column ``i``."""
        x1 = self.domain.x1 + i * self.cell_width
        return 2.0 * (np.asarray(x, dtype=float) - x1) / self.cell_width - 1.0

    def to_normalized_y(self, j: int, y) -> np.ndarray:
        y1 = self.domain.y1 + j * self.cell_height
        return 2.0 * (np.asarray(y, dtype=float) - y1) / self.cell_height - 1.0

    def from_normalized(self, i: int, j: int, nx: float, ny: float) -> Tuple[float, float]:
        x1 = self.domain.x1 + i * self.cell_width
        y1 = self.domain.y1 + j * self.cell_height
        return (
            x1 + (nx + 1.0) / 2.0 * self.cell_width,
            y1 + (ny + 1.0) / 2.0 * self.cell_height,
        )

    def coefficients_memory_bytes(self, horizon: int) -> int:
        """The paper's storage figure: ``H g^2 (k+1)(k+2)/2`` 8-byte floats."""
        return (horizon + 1) * self.g * self.g * coefficient_count(self.k) * 8

    def zero_coefficients(self) -> np.ndarray:
        return np.zeros((self.g, self.g, self.k + 1, self.k + 1))


class ChebSurface:
    """One timestamp's approximated density surface.

    ``coeffs`` has shape ``(g, g, k+1, k+1)``; the surface may share storage
    with a maintainer's ring buffer (mutations through :meth:`add_rect`
    write straight through, which is what the tests exploit).
    """

    def __init__(self, spec: GridSpec, coeffs: np.ndarray) -> None:
        expected = (spec.g, spec.g, spec.k + 1, spec.k + 1)
        if coeffs.shape != expected:
            raise InvalidParameterError(
                f"coefficient block has shape {coeffs.shape}, expected {expected}"
            )
        self.spec = spec
        self.coeffs = coeffs
        # Cached tile dimensions (hot in density_grid / dense_regions).
        self.cell_width_ = spec.cell_width
        self.cell_height_ = spec.cell_height

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def density_at(self, x: float, y: float) -> float:
        """Approximated density at a world point."""
        i, j = self.spec.cell_of(x, y)
        nx = self.spec.to_normalized_x(i, np.array([x]))
        ny = self.spec.to_normalized_y(j, np.array([y]))
        return float(evaluate(self.coeffs[i, j], nx, ny)[0])

    def density_grid(self, resolution: int) -> np.ndarray:
        """Sample the surface on a ``resolution x resolution`` world grid.

        Sample points are cell centres of the uniform grid over the domain;
        returns values indexed ``[ix, iy]``.
        """
        if resolution < 1:
            raise InvalidParameterError("resolution must be >= 1")
        xs = self.spec.domain.x1 + (np.arange(resolution) + 0.5) * (
            self.spec.domain.width / resolution
        )
        ys = self.spec.domain.y1 + (np.arange(resolution) + 0.5) * (
            self.spec.domain.height / resolution
        )
        col = np.clip(
            ((xs - self.spec.domain.x1) / self.cell_width_).astype(int), 0, self.spec.g - 1
        )
        row = np.clip(
            ((ys - self.spec.domain.y1) / self.cell_height_).astype(int), 0, self.spec.g - 1
        )
        out = np.empty((resolution, resolution))
        for i in range(self.spec.g):
            xi = np.nonzero(col == i)[0]
            if xi.size == 0:
                continue
            nx = self.spec.to_normalized_x(i, xs[xi])
            for j in range(self.spec.g):
                yj = np.nonzero(row == j)[0]
                if yj.size == 0:
                    continue
                ny = self.spec.to_normalized_y(j, ys[yj])
                block = evaluate_grid(self.coeffs[i, j], nx, ny)
                out[np.ix_(xi, yj)] = block
        return out

    # ------------------------------------------------------------------
    # direct increments (tests / offline loading)
    # ------------------------------------------------------------------
    def add_rect(self, rect: Rect, height: float) -> None:
        """Add ``height * 1[rect]`` to the surface (closed-form, per tile)."""
        clipped = rect.intersection(self.spec.domain)
        if clipped.is_empty():
            return
        i0, j0 = self.spec.cell_of(clipped.x1, clipped.y1)
        # The high corner may sit exactly on a tile boundary; nudge inward.
        eps_x = self.spec.cell_width * 1e-12
        eps_y = self.spec.cell_height * 1e-12
        i1, j1 = self.spec.cell_of(clipped.x2 - eps_x, clipped.y2 - eps_y)
        for i in range(i0, i1 + 1):
            for j in range(j0, j1 + 1):
                tile = self.spec.cell_rect(i, j)
                overlap = clipped.intersection(tile)
                if overlap.is_empty():
                    continue
                nx1 = float(self.spec.to_normalized_x(i, overlap.x1))
                nx2 = float(self.spec.to_normalized_x(i, overlap.x2))
                ny1 = float(self.spec.to_normalized_y(j, overlap.y1))
                ny2 = float(self.spec.to_normalized_y(j, overlap.y2))
                self.coeffs[i, j] += delta_coefficients(
                    self.spec.k, nx1, nx2, ny1, ny2, height
                )

    def add_object(self, x: float, y: float, l: float) -> None:
        """Convenience: the density increment of one object (see Eq. 2)."""
        half = l / 2.0
        self.add_rect(Rect(x - half, y - half, x + half, y + half), 1.0 / (l * l))

    def remove_object(self, x: float, y: float, l: float) -> None:
        half = l / 2.0
        self.add_rect(Rect(x - half, y - half, x + half, y + half), -1.0 / (l * l))

    # ------------------------------------------------------------------
    # dense-region extraction
    # ------------------------------------------------------------------
    def dense_regions(self, rho: float, md: int = 512) -> Tuple[RegionSet, BnBResult]:
        """World dense regions by per-tile branch-and-bound.

        ``md`` is the paper's global evaluation-grid resolution ``m_d``; the
        per-tile recursion floor is therefore ``2 g / m_d`` in normalized
        units (never coarser than a whole tile).
        """
        if md < self.spec.g:
            raise InvalidParameterError(
                f"m_d ({md}) must be at least the polynomial grid factor g ({self.spec.g})"
            )
        min_edge = 2.0 * self.spec.g / md
        totals = dense_boxes_grid(self.coeffs, rho, min_edge)
        if len(totals) == 0:
            return RegionSet(), totals
        # Vectorised normalized -> world conversion for all boxes at once.
        cw, ch = self.cell_width_, self.cell_height_
        tx1 = self.spec.domain.x1 + totals.tiles[:, 0] * cw
        ty1 = self.spec.domain.y1 + totals.tiles[:, 1] * ch
        wx1 = tx1 + (totals.boxes[:, 0] + 1.0) / 2.0 * cw
        wy1 = ty1 + (totals.boxes[:, 1] + 1.0) / 2.0 * ch
        wx2 = tx1 + (totals.boxes[:, 2] + 1.0) / 2.0 * cw
        wy2 = ty1 + (totals.boxes[:, 3] + 1.0) / 2.0 * ch
        # B&B emissions partition the dense area (siblings tile their
        # parent, tiles tile the domain), so the set is disjoint by
        # construction and downstream area() is a plain sum.
        bounds = np.stack([wx1, wy1, wx2, wy2], axis=1)
        return RegionSet.from_bounds(bounds, disjoint=True), totals
