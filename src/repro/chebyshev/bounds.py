"""Interval bounds of a 2-D Chebyshev expansion (Section 6.3).

To decide whether a subregion can contain dense points, the PA method bounds
``f_hat(x, y) = sum a_ij T_i(x) T_j(y)`` over a normalized box
``[x1, x2] x [y1, y2]``: each term is bounded by interval arithmetic from
the exact 1-D bounds of ``T_i`` (cosine extrema, see
:func:`repro.chebyshev.cheb1d.interval_bounds`), and the term bounds are
summed.  The result brackets the true range — possibly loosely, never
incorrectly — which is exactly what branch-and-bound needs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .cheb1d import interval_bounds_all

__all__ = ["bound_expansion"]


def bound_expansion(
    coeffs: np.ndarray, x1: float, x2: float, y1: float, y2: float
) -> Tuple[float, float]:
    """``(lower, upper)`` bracket of the expansion over the box.

    The bracket is sound: ``lower <= f_hat(x, y) <= upper`` for every point
    of the box.  Cost is ``O(k^2)`` after two ``O(k)`` 1-D bound passes.
    """
    k = coeffs.shape[0] - 1
    lx, hx = interval_bounds_all(k, x1, x2)
    ly, hy = interval_bounds_all(k, y1, y2)
    # Interval product [lx, hx] * [ly, hy]: extrema among the four corners.
    p1 = lx[:, None] * ly[None, :]
    p2 = lx[:, None] * hy[None, :]
    p3 = hx[:, None] * ly[None, :]
    p4 = hx[:, None] * hy[None, :]
    t_lo = np.minimum(np.minimum(p1, p2), np.minimum(p3, p4))
    t_hi = np.maximum(np.maximum(p1, p2), np.maximum(p3, p4))
    # Multiply by the (signed) coefficient: swap bounds where negative.
    pos = coeffs >= 0
    term_lo = np.where(pos, coeffs * t_lo, coeffs * t_hi)
    term_hi = np.where(pos, coeffs * t_hi, coeffs * t_lo)
    return float(term_lo.sum()), float(term_hi.sum())
