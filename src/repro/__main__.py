"""``python -m repro`` — the CLI entry point as a runnable module.

Being spawnable as ``[sys.executable, "-m", "repro", ...]`` is what lets
the supervisor (:mod:`repro.serving.supervisor`) and the process-level
kill matrix (:mod:`repro.reliability.prochaos`) run the server as a real
child OS process without guessing at console-script install paths.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
