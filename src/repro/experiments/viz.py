"""ASCII rendering of object snapshots and dense regions (Figure 7).

The paper's Figure 7 shows (a) a snapshot of the CH10K objects, (b) the
dense regions found by FR and (c) those found by PA, demonstrating that both
methods produce arbitrarily shaped regions and that they agree.  We render
the same three panels as character grids, which is enough to eyeball the
agreement in a terminal and to diff region shapes in tests.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..core.errors import InvalidParameterError
from ..core.geometry import Rect
from ..core.regions import RegionSet

__all__ = ["render_points", "render_region", "side_by_side"]

_DENSITY_RAMP = " .:-=+*#%@"


def render_points(
    positions: Sequence[Tuple[float, float]],
    domain: Rect,
    width: int = 60,
    height: int = 30,
) -> str:
    """Character density map of a point snapshot."""
    if width < 1 or height < 1:
        raise InvalidParameterError("render size must be positive")
    grid = np.zeros((height, width), dtype=int)
    for x, y in positions:
        if not domain.contains_point(x, y):
            continue
        cx = min(int((x - domain.x1) / domain.width * width), width - 1)
        cy = min(int((y - domain.y1) / domain.height * height), height - 1)
        grid[height - 1 - cy, cx] += 1
    peak = max(int(grid.max()), 1)
    lines: List[str] = []
    for row in grid:
        chars = []
        for count in row:
            level = int(count / peak * (len(_DENSITY_RAMP) - 1) + 0.999) if count else 0
            level = min(level, len(_DENSITY_RAMP) - 1)
            chars.append(_DENSITY_RAMP[level])
        lines.append("".join(chars))
    return "\n".join(lines)


def render_region(
    region: RegionSet,
    domain: Rect,
    width: int = 60,
    height: int = 30,
    fill: str = "#",
) -> str:
    """Character mask of a region (cell marked when its centre is covered)."""
    if width < 1 or height < 1:
        raise InvalidParameterError("render size must be positive")
    dx = domain.width / width
    dy = domain.height / height
    mask = np.zeros((height, width), dtype=bool)
    for r in region:
        ix1 = max(int(np.ceil((r.x1 - domain.x1) / dx - 0.5)), 0)
        ix2 = min(int(np.ceil((r.x2 - domain.x1) / dx - 0.5)), width)
        iy1 = max(int(np.ceil((r.y1 - domain.y1) / dy - 0.5)), 0)
        iy2 = min(int(np.ceil((r.y2 - domain.y1) / dy - 0.5)), height)
        if ix2 > ix1 and iy2 > iy1:
            mask[iy1:iy2, ix1:ix2] = True
    lines = []
    for row in mask[::-1]:
        lines.append("".join(fill if covered else "." for covered in row))
    return "\n".join(lines)


def side_by_side(panels: Iterable[Tuple[str, str]], gap: int = 3) -> str:
    """Join labelled multi-line panels horizontally."""
    panels = list(panels)
    blocks = []
    for label, text in panels:
        lines = text.splitlines()
        width = max([len(label)] + [len(ln) for ln in lines])
        blocks.append([label.ljust(width)] + [ln.ljust(width) for ln in lines])
    height = max(len(b) for b in blocks)
    sep = " " * gap
    out_lines = []
    for i in range(height):
        out_lines.append(sep.join(b[i] if i < len(b) else " " * len(b[0]) for b in blocks))
    return "\n".join(out_lines)
