"""Plain-text table rendering for experiment output.

Each figure runner returns a list of row dicts; :func:`format_table` lays
them out with aligned columns so the bench output reads like the paper's
tables.  Nothing here affects measurements.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        cells.append([format_value(row.get(c, "")) for c in columns])
    widths = [max(len(r[i]) for r in cells) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
