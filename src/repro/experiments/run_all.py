"""Run the whole evaluation and print every table/figure.

Usage::

    REPRO_SCALE=default python -m repro.experiments.run_all

The output is what EXPERIMENTS.md records: Table 1 (setup), Figure 7
(qualitative example), Figures 8(a-d) (accuracy), 9(a-b) (CPU) and
10(a-b) (total cost and scalability).
"""

from __future__ import annotations

import sys
import time

from .config import active_profile
from .datasets import get_world, medium_world_spec
from .fig7_example import run_fig7
from .fig8_accuracy import run_fig8ab, run_fig8cd
from .fig9_cpu import run_fig9a, run_fig9b
from .fig10_cost import run_fig10a, run_fig10b
from .plots import ascii_chart
from .report import format_table
from .table1 import run_table1


def _chart_by_l(rows, y_keys, l, title, log_y=False):
    """Chart helper: one series per y key, filtered to one l value."""
    sub = [r for r in rows if r.get("l", l) == l]
    xs = [r["varrho"] for r in sub]
    series = {key: [r[key] for r in sub] for key in y_keys}
    return ascii_chart(xs, series, title=title, x_label="varrho", log_y=log_y)


def main(argv=None) -> int:
    profile = active_profile()
    out = sys.stdout
    started = time.perf_counter()
    print(f"# PDR reproduction — full evaluation (profile: {profile.name})", file=out)

    print(format_table(run_table1(profile), title="\n## Table 1 — setup"), file=out)

    fig7 = run_fig7(profile)
    print("\n## Figure 7 — example (small dataset)", file=out)
    print(fig7.combined(), file=out)
    print(
        f"FR: {fig7.fr_rects} rects, area {fig7.fr_area:,.0f}; "
        f"PA: {fig7.pa_rects} rects, area {fig7.pa_area:,.0f}; "
        f"Jaccard(FR, PA) = {fig7.jaccard:.3f}",
        file=out,
    )

    world = get_world(medium_world_spec(profile), profile.raster_resolution)
    rows8 = run_fig8ab(profile, world)
    print(
        format_table(
            rows8,
            columns=["l", "varrho", "r_fp_pa_pct", "r_fp_dh_optimistic_pct"],
            title="\n## Figure 8(a) — false-positive ratio (%) vs threshold",
        ),
        file=out,
    )
    print(
        format_table(
            rows8,
            columns=["l", "varrho", "r_fn_pa_pct", "r_fn_dh_pessimistic_pct"],
            title="\n## Figure 8(b) — false-negative ratio (%) vs threshold",
        ),
        file=out,
    )
    print(file=out)
    print(
        _chart_by_l(
            rows8,
            ["r_fp_pa_pct", "r_fp_dh_optimistic_pct"],
            l=30.0,
            title="Figure 8(a) as a chart (l=30): r_fp %",
        ),
        file=out,
    )
    rows8cd = run_fig8cd(profile, world)
    print(
        format_table(
            rows8cd,
            title="\n## Figure 8(c,d) — error ratio (%) vs memory (l=30, varrho=2)",
        ),
        file=out,
    )
    print(
        format_table(run_fig9a(profile, world), title="\n## Figure 9(a) — query CPU"),
        file=out,
    )
    print(
        format_table(
            run_fig9b(profile, world), title="\n## Figure 9(b) — per-update CPU"
        ),
        file=out,
    )
    rows10a = run_fig10a(profile, world)
    print(
        format_table(
            rows10a,
            title="\n## Figure 10(a) — total query cost vs threshold",
        ),
        file=out,
    )
    print(file=out)
    print(
        _chart_by_l(
            rows10a,
            ["fr_total_s", "pa_total_s"],
            l=30.0,
            title="Figure 10(a) as a chart (l=30): total cost, seconds",
            log_y=True,
        ),
        file=out,
    )
    rows10b = run_fig10b(profile)
    print(
        format_table(
            rows10b,
            title="\n## Figure 10(b) — total query cost vs dataset size",
        ),
        file=out,
    )
    print(file=out)
    print(
        ascii_chart(
            [r["n_objects"] for r in rows10b],
            {
                "fr_cpu_s": [r["fr_cpu_s"] for r in rows10b],
                "pa_total_s": [r["pa_total_s"] for r in rows10b],
            },
            title="Figure 10(b) as a chart: work vs dataset size",
            x_label="objects",
            log_y=True,
        ),
        file=out,
    )
    print(f"\n(total wall time: {time.perf_counter() - started:.0f}s)", file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
