"""Experiment harness reproducing every table and figure of Section 7."""
