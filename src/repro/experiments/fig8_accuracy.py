"""Figure 8 — accuracy of PA vs the DH filter step (medium dataset).

* 8(a): false-positive ratio vs the relative threshold, PA vs optimistic DH,
  for neighborhood edges l = 30 and l = 60;
* 8(b): false-negative ratio vs the relative threshold, PA vs pessimistic DH;
* 8(c): false-positive ratio vs memory budget (PA sweeps polynomial count and
  degree, DH sweeps histogram resolution), at l = 30, varrho = 2;
* 8(d): the same sweep for the false-negative ratio.

Expected shapes (paper): PA stays below ~10 % error while DH reaches
~100-200 %; both error ratios *grow* with the threshold (the denominator
``area(D)`` shrinks); error falls with memory for both methods but PA
dominates DH even at a fraction of the memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..histogram.answers import dh_optimistic, dh_pessimistic
from .config import EDGE_SWEEP, VARRHO_SWEEP, ScaleProfile, active_profile
from .datasets import World, get_world, medium_world_spec

__all__ = ["run_fig8ab", "run_fig8cd"]


def _medium_world(profile: ScaleProfile, world: Optional[World]) -> World:
    if world is not None:
        return world
    return get_world(medium_world_spec(profile), profile.raster_resolution)


def run_fig8ab(
    profile: Optional[ScaleProfile] = None, world: Optional[World] = None
) -> List[Dict]:
    """Rows for Figures 8(a) and 8(b): error ratios vs threshold and l."""
    profile = profile or active_profile()
    world = _medium_world(profile, world)
    server = world.server
    qts = world.query_times(profile.n_queries)
    rows: List[Dict] = []
    for l in EDGE_SWEEP:
        for varrho in VARRHO_SWEEP:
            acc = {"pa_fp": 0.0, "pa_fn": 0.0, "dh_opt_fp": 0.0, "dh_pess_fn": 0.0}
            for qt in qts:
                query = server.make_query(qt=qt, l=l, varrho=varrho)
                exact = world.exact_answer(query).regions
                pa = world.pa_for(l).query(query).regions
                opt = dh_optimistic(server.histogram, query).regions
                pess = dh_pessimistic(server.histogram, query).regions
                a_pa = world.raster.accuracy(exact, pa)
                a_opt = world.raster.accuracy(exact, opt)
                a_pess = world.raster.accuracy(exact, pess)
                acc["pa_fp"] += a_pa.r_fp
                acc["pa_fn"] += a_pa.r_fn
                acc["dh_opt_fp"] += a_opt.r_fp
                acc["dh_pess_fn"] += a_pess.r_fn
            n = len(qts)
            rows.append(
                {
                    "l": l,
                    "varrho": varrho,
                    "r_fp_pa_pct": 100.0 * acc["pa_fp"] / n,
                    "r_fp_dh_optimistic_pct": 100.0 * acc["dh_opt_fp"] / n,
                    "r_fn_pa_pct": 100.0 * acc["pa_fn"] / n,
                    "r_fn_dh_pessimistic_pct": 100.0 * acc["dh_pess_fn"] / n,
                }
            )
    return rows


def run_fig8cd(
    profile: Optional[ScaleProfile] = None,
    world: Optional[World] = None,
    varrho: float = 2.0,
    l: float = 30.0,
) -> List[Dict]:
    """Rows for Figures 8(c) and 8(d): error ratios vs memory budget."""
    profile = profile or active_profile()
    world = _medium_world(profile, world)
    server = world.server
    qts = world.query_times(profile.n_queries)

    # PA sweep: every maintained polynomial variant at this l.
    pa_points = []
    spec = world.spec
    pa_points.append((spec.polynomial_grid, spec.polynomial_degree, server.pa))
    for (g, k, vl), pa in world.extra_pa.items():
        if abs(vl - l) < 1e-9:
            pa_points.append((g, k, pa))
    # DH sweep: every maintained histogram resolution.
    dh_points = [(spec.histogram_cells, server.histogram)]
    for m, hist in world.extra_histograms.items():
        dh_points.append((m, hist))

    rows: List[Dict] = []
    for g, k, pa in sorted(pa_points, key=lambda p: p[2].memory_bytes()):
        fp = fn = 0.0
        for qt in qts:
            query = server.make_query(qt=qt, l=l, varrho=varrho)
            exact = world.exact_answer(query).regions
            report = world.raster.accuracy(exact, pa.query(query).regions)
            fp += report.r_fp
            fn += report.r_fn
        n = len(qts)
        rows.append(
            {
                "method": "PA",
                "config": f"g={g} k={k}",
                "memory_mb": pa.memory_bytes() / 1e6,
                "r_fp_pct": 100.0 * fp / n,
                "r_fn_pct": 100.0 * fn / n,
            }
        )
    for m, hist in sorted(dh_points, key=lambda p: p[1].memory_bytes()):
        fp = fn = 0.0
        for qt in qts:
            query = server.make_query(qt=qt, l=l, varrho=varrho)
            exact = world.exact_answer(query).regions
            opt = dh_optimistic(hist, query).regions
            pess = dh_pessimistic(hist, query).regions
            fp += world.raster.accuracy(exact, opt).r_fp
            fn += world.raster.accuracy(exact, pess).r_fn
        n = len(qts)
        rows.append(
            {
                "method": "DH",
                "config": f"m={m}",
                "memory_mb": hist.memory_bytes() / 1e6,
                "r_fp_pct": 100.0 * fp / n,  # optimistic DH
                "r_fn_pct": 100.0 * fn / n,  # pessimistic DH
            }
        )
    return rows
