"""ASCII line charts for the experiment report.

The paper communicates its evaluation through line plots; a terminal-only
reproduction still benefits from *seeing* the trends, not just the tables.
:func:`ascii_chart` renders one or more named series over a shared x axis
as a fixed-size character grid with a log-scale option (several figures
span orders of magnitude).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..core.errors import InvalidParameterError

__all__ = ["ascii_chart"]

_MARKERS = "*o+x@#%&"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"


def ascii_chart(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
    title: Optional[str] = None,
    x_label: str = "",
) -> str:
    """Render ``series`` (name -> y values over ``xs``) as an ASCII chart."""
    if not series:
        raise InvalidParameterError("need at least one series")
    if width < 10 or height < 4:
        raise InvalidParameterError("chart too small to render")
    n = len(xs)
    for name, ys in series.items():
        if len(ys) != n:
            raise InvalidParameterError(
                f"series {name!r} has {len(ys)} points, x axis has {n}"
            )
    if n < 2:
        raise InvalidParameterError("need at least two x points")

    def transform(v: float) -> float:
        if not log_y:
            return v
        return math.log10(max(v, 1e-12))

    all_vals = [transform(v) for ys in series.values() for v in ys]
    lo, hi = min(all_vals), max(all_vals)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi - x_lo < 1e-12:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        # Plot line segments between consecutive points.
        points = []
        for x, y in zip(xs, ys):
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((transform(y) - lo) / (hi - lo) * (height - 1))
            points.append((col, height - 1 - row))
        for (c1, r1), (c2, r2) in zip(points, points[1:]):
            steps = max(abs(c2 - c1), abs(r2 - r1), 1)
            for s in range(steps + 1):
                c = round(c1 + (c2 - c1) * s / steps)
                r = round(r1 + (r2 - r1) * s / steps)
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for c, r in points:
            grid[r][c] = marker

    y_top = _format_tick(10 ** hi if log_y else hi)
    y_bot = _format_tick(10 ** lo if log_y else lo)
    gutter = max(len(y_top), len(y_bot)) + 1
    lines: List[str] = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        label = y_top if r == 0 else (y_bot if r == height - 1 else "")
        lines.append(label.rjust(gutter) + " |" + "".join(row))
    axis = " " * gutter + " +" + "-" * width
    lines.append(axis)
    x_left = _format_tick(float(x_lo))
    x_right = _format_tick(float(x_hi))
    footer = (
        " " * gutter + "  " + x_left
        + x_right.rjust(width - len(x_left))
    )
    lines.append(footer)
    legend = "   ".join(
        f"{_MARKERS[idx % len(_MARKERS)]} {name}" for idx, name in enumerate(series)
    )
    scale = " (log y)" if log_y else ""
    lines.append(" " * gutter + "  " + legend + (f"   [{x_label}]" if x_label else "") + scale)
    return "\n".join(lines)
