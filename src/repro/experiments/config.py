"""Experiment scale profiles.

The paper's evaluation (Table 1) uses datasets of 10 K / 100 K / 500 K
objects and 20-query workloads — hours of wall-clock in pure Python.  The
harness therefore defines three profiles with identical *structure* (same
parameter ratios, same sweeps) and different sizes:

* ``smoke``   — seconds; used by the test suite to exercise the harness;
* ``default`` — minutes; preserves every qualitative shape of the figures;
* ``paper``   — the original sizes, for patient hardware.

Select with the ``REPRO_SCALE`` environment variable; EXPERIMENTS.md records
the profile each reported number was measured under.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.errors import InvalidParameterError

__all__ = ["ScaleProfile", "PROFILES", "active_profile", "VARRHO_SWEEP", "EDGE_SWEEP"]

# The parameter sweeps of Table 1 (identical across profiles).
VARRHO_SWEEP: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0)
EDGE_SWEEP: Tuple[float, ...] = (30.0, 60.0)


@dataclass(frozen=True)
class ScaleProfile:
    """One experiment scale: dataset sizes and workload dimensions."""

    name: str
    small: int  # the paper's CH10K slot (Figure 7, scalability low end)
    medium: int  # the paper's CH100K slot (Figures 8-10a default dataset)
    large: int  # the paper's CH500K slot (scalability high end)
    n_queries: int  # queries per configuration (paper: 20)
    warmup: int  # timestamps simulated before measuring
    network_grid: int  # road-network intersections per side
    raster_resolution: int  # accuracy-measurement grid

    @property
    def sizes(self) -> Tuple[int, int, int]:
        return (self.small, self.medium, self.large)

    def dataset_name(self, n: int) -> str:
        """CHxxx-style label used in tables."""
        if n >= 1000 and n % 1000 == 0:
            return f"CH{n // 1000}K"
        return f"CH{n}"


PROFILES: Dict[str, ScaleProfile] = {
    "smoke": ScaleProfile(
        name="smoke",
        small=300,
        medium=800,
        large=2000,
        n_queries=2,
        warmup=10,
        network_grid=20,
        raster_resolution=512,
    ),
    "default": ScaleProfile(
        name="default",
        small=2000,
        medium=10_000,
        large=50_000,
        n_queries=3,
        warmup=60,
        network_grid=40,
        raster_resolution=2048,
    ),
    "paper": ScaleProfile(
        name="paper",
        small=10_000,
        medium=100_000,
        large=500_000,
        n_queries=20,
        warmup=60,
        network_grid=60,
        raster_resolution=2048,
    ),
}


def active_profile() -> ScaleProfile:
    """The profile selected by ``REPRO_SCALE`` (default ``default``)."""
    name = os.environ.get("REPRO_SCALE", "default").strip().lower()
    if name not in PROFILES:
        raise InvalidParameterError(
            f"REPRO_SCALE={name!r} unknown; choose one of {sorted(PROFILES)}"
        )
    return PROFILES[name]
