"""Figure 10 — total query cost of PA vs exact FR.

* 10(a): total cost (CPU + charged I/O) vs the relative threshold on the
  medium dataset, for l = 30 and l = 60.  Expected shape: PA is roughly an
  order of magnitude (or more) cheaper than FR, which pays a spatio-temporal
  range query per candidate cell plus plane-sweep CPU.
* 10(b): total cost vs dataset size at l = 30, varrho = 2.  Expected shape:
  FR grows roughly linearly with the object count; PA is flat (its cost
  depends only on the coefficient count).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .config import EDGE_SWEEP, VARRHO_SWEEP, ScaleProfile, active_profile
from .datasets import World, get_world, medium_world_spec, plain_world_spec

__all__ = ["run_fig10a", "run_fig10b"]


def run_fig10a(
    profile: Optional[ScaleProfile] = None, world: Optional[World] = None
) -> List[Dict]:
    """Rows: mean total query cost of FR and PA per (l, varrho)."""
    profile = profile or active_profile()
    if world is None:
        world = get_world(medium_world_spec(profile), profile.raster_resolution)
    server = world.server
    qts = world.query_times(profile.n_queries)
    rows: List[Dict] = []
    for l in EDGE_SWEEP:
        for varrho in VARRHO_SWEEP:
            fr_total = fr_cpu = fr_io = pa_total = 0.0
            for qt in qts:
                query = server.make_query(qt=qt, l=l, varrho=varrho)
                fr = server.evaluate("fr", query)
                pa = world.pa_for(l).query(query)
                fr_total += fr.stats.total_seconds
                fr_cpu += fr.stats.cpu_seconds
                fr_io += fr.stats.io_seconds
                pa_total += pa.stats.total_seconds
            n = len(qts)
            rows.append(
                {
                    "l": l,
                    "varrho": varrho,
                    "fr_total_s": fr_total / n,
                    "fr_cpu_s": fr_cpu / n,
                    "fr_io_s": fr_io / n,
                    "pa_total_s": pa_total / n,
                    "speedup": (fr_total / pa_total) if pa_total > 0 else float("inf"),
                }
            )
    return rows


def run_fig10b(
    profile: Optional[ScaleProfile] = None,
    varrho: float = 2.0,
    l: float = 30.0,
) -> List[Dict]:
    """Rows: mean total query cost of FR and PA per dataset size."""
    profile = profile or active_profile()
    rows: List[Dict] = []
    for n_objects in profile.sizes:
        world = get_world(
            plain_world_spec(profile, n_objects), profile.raster_resolution
        )
        server = world.server
        qts = world.query_times(profile.n_queries)
        fr_total = fr_cpu = fr_io = pa_total = objects = 0.0
        for qt in qts:
            query = server.make_query(qt=qt, l=l, varrho=varrho)
            fr = server.evaluate("fr", query)
            pa = world.pa_for(l).query(query)
            fr_total += fr.stats.total_seconds
            fr_cpu += fr.stats.cpu_seconds
            fr_io += fr.stats.io_seconds
            objects += fr.stats.objects_examined
            pa_total += pa.stats.total_seconds
        n = len(qts)
        rows.append(
            {
                "dataset": profile.dataset_name(n_objects),
                "n_objects": n_objects,
                "fr_total_s": fr_total / n,
                "fr_cpu_s": fr_cpu / n,
                "fr_io_s": fr_io / n,
                "fr_objects_examined": objects / n,
                "pa_total_s": pa_total / n,
                "speedup": (fr_total / pa_total) if pa_total > 0 else float("inf"),
            }
        )
    return rows
