"""Dataset (world) construction and caching for the experiment harness.

A *world* is a fully warmed-up :class:`~repro.core.system.PDRServer` — road
network, trip simulator, TPR-tree, density histograms and Chebyshev
surfaces — plus any *variant* structures an experiment sweeps over (extra
polynomial configurations for the memory/accuracy trade-off of Figure 8(c,d),
extra histogram resolutions for the DH side of the same plot, and a second
PA instance for the ``l = 60`` curves).

Worlds are expensive to build (every report feeds every maintained
structure), so they are memoised per spec within the process; all figure
runners and benchmarks share them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config import SystemConfig
from ..core.errors import InvalidParameterError
from ..core.query import QueryResult, SnapshotPDRQuery
from ..core.system import PDRServer
from ..datagen.network import synthetic_metro
from ..datagen.trips import TripSimulator
from ..histogram.density_histogram import DensityHistogram
from ..methods.pa import PAMethod
from ..metrics.cost import UpdateCostTimer
from ..metrics.instrument import TimedListener
from ..metrics.raster import RasterMeasure
from .config import ScaleProfile

__all__ = ["WorldSpec", "World", "get_world", "clear_world_cache"]

PAVariant = Tuple[int, int, float]  # (g, k, l)


@dataclass(frozen=True)
class WorldSpec:
    """Everything that determines a world's state (the memoisation key)."""

    n_objects: int
    warmup: int = 60
    network_grid: int = 40
    seed: int = 7
    l: float = 30.0
    histogram_cells: int = 200
    polynomial_grid: int = 20
    polynomial_degree: int = 5
    evaluation_grid: int = 512
    extra_pa: Tuple[PAVariant, ...] = ()
    extra_histograms: Tuple[int, ...] = ()


@dataclass
class World:
    """A warmed-up server plus its variant structures and helpers."""

    spec: WorldSpec
    server: PDRServer
    simulator: TripSimulator
    extra_pa: Dict[PAVariant, PAMethod] = field(default_factory=dict)
    extra_pa_timers: Dict[PAVariant, UpdateCostTimer] = field(default_factory=dict)
    extra_histograms: Dict[int, DensityHistogram] = field(default_factory=dict)
    extra_histogram_timers: Dict[int, UpdateCostTimer] = field(default_factory=dict)
    raster: Optional[RasterMeasure] = None
    _exact_cache: Dict[Tuple[float, float, int], QueryResult] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    # structure lookup
    # ------------------------------------------------------------------
    def pa_for(self, l: float, g: Optional[int] = None, k: Optional[int] = None) -> PAMethod:
        """The PA instance maintained for ``(g, k, l)``.

        With ``g``/``k`` omitted, prefers the primary-configuration instance
        for that ``l`` and otherwise falls back to the unique maintained
        variant with matching ``l``.
        """
        primary = self.server.pa
        want_g = g if g is not None else self.spec.polynomial_grid
        want_k = k if k is not None else self.spec.polynomial_degree
        if (
            abs(primary.l - l) < 1e-9
            and primary.spec.g == want_g
            and primary.spec.k == want_k
        ):
            return primary
        key = (want_g, want_k, l)
        if key in self.extra_pa:
            return self.extra_pa[key]
        if g is None and k is None:
            matches = [pa for (vg, vk, vl), pa in self.extra_pa.items()
                       if abs(vl - l) < 1e-9]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise InvalidParameterError(
                    f"multiple PA variants maintained for l={l}; "
                    "disambiguate with g= and k="
                )
        raise InvalidParameterError(
            f"world was not built with a PA variant (g={want_g}, k={want_k}, "
            f"l={l}); available: primary plus {sorted(self.extra_pa)}"
        )

    def histogram_for(self, m: int) -> DensityHistogram:
        if m == self.spec.histogram_cells:
            return self.server.histogram
        if m not in self.extra_histograms:
            raise InvalidParameterError(
                f"world was not built with an m={m} histogram; "
                f"available: {self.spec.histogram_cells} plus {sorted(self.extra_histograms)}"
            )
        return self.extra_histograms[m]

    # ------------------------------------------------------------------
    # workload helpers
    # ------------------------------------------------------------------
    def query_times(self, n_queries: int, seed: int = 1234) -> List[int]:
        """Query timestamps uniform in ``[t_now, t_now + W]`` (Section 7)."""
        rng = np.random.default_rng(seed)
        w = self.server.config.prediction_window
        return [
            int(self.server.tnow + rng.integers(0, w + 1)) for _ in range(n_queries)
        ]

    def exact_answer(self, query: SnapshotPDRQuery) -> QueryResult:
        """Ground truth ``D``: the exact FR evaluation of ``query`` (memoised).

        FR equals the brute-force sweep exactly (property-tested in
        ``tests/test_methods_fr.py``) and is orders of magnitude faster on
        large datasets, so the harness uses it as the reference ``D``.
        """
        key = (query.rho, query.l, query.qt)
        if key not in self._exact_cache:
            self._exact_cache[key] = self.server.evaluate("fr", query)
        return self._exact_cache[key]


_WORLD_CACHE: Dict[WorldSpec, World] = {}


def clear_world_cache() -> None:
    _WORLD_CACHE.clear()


def build_world(spec: WorldSpec, raster_resolution: int = 2048) -> World:
    """Construct and warm up a world (no caching; prefer :func:`get_world`)."""
    config = SystemConfig(
        l=spec.l,
        histogram_cells=spec.histogram_cells,
        polynomial_grid=spec.polynomial_grid,
        polynomial_degree=spec.polynomial_degree,
        evaluation_grid=spec.evaluation_grid,
    )
    server = PDRServer(config, expected_objects=spec.n_objects)
    world = World(
        spec=spec,
        server=server,
        simulator=None,  # set below
        raster=RasterMeasure(config.domain, raster_resolution),
    )
    # Variant structures subscribe to the same update stream as the primary
    # ones, so one simulation pass maintains every configuration under test.
    for variant in spec.extra_pa:
        g, k, l = variant
        pa = PAMethod(
            config.domain,
            l=l,
            horizon=config.horizon,
            g=g,
            k=k,
            md=spec.evaluation_grid,
        )
        timer = UpdateCostTimer()
        server.table.add_listener(TimedListener(pa, timer))
        world.extra_pa[variant] = pa
        world.extra_pa_timers[variant] = timer
    for m in spec.extra_histograms:
        hist = DensityHistogram(config.domain, m=m, horizon=config.horizon)
        timer = UpdateCostTimer()
        server.table.add_listener(TimedListener(hist, timer))
        world.extra_histograms[m] = hist
        world.extra_histogram_timers[m] = timer

    network = synthetic_metro(config.domain, grid_n=spec.network_grid, seed=spec.seed)
    simulator = TripSimulator(
        network,
        n_objects=spec.n_objects,
        update_interval=config.max_update_interval,
        seed=spec.seed,
    )
    simulator.initialize(server.table)
    simulator.run_until(server.table, spec.warmup)
    world.simulator = simulator
    return world


def get_world(spec: WorldSpec, raster_resolution: int = 2048) -> World:
    """Memoised :func:`build_world`."""
    if spec not in _WORLD_CACHE:
        _WORLD_CACHE[spec] = build_world(spec, raster_resolution)
    return _WORLD_CACHE[spec]


def medium_world_spec(profile: ScaleProfile) -> WorldSpec:
    """The shared medium world: includes every variant Figures 8-10a sweep.

    Variants: one PA per polynomial-budget point of Figure 8(c,d), the
    ``l = 60`` PA for Figures 8(a,b)/9(a), and the extra histogram
    resolutions for the DH side of Figure 8(c,d).
    """
    return WorldSpec(
        n_objects=profile.medium,
        warmup=profile.warmup,
        network_grid=profile.network_grid,
        extra_pa=(
            (10, 5, 30.0),
            (20, 3, 30.0),
            (20, 4, 30.0),
            (28, 5, 30.0),
            (20, 5, 60.0),
        ),
        # 100/250/400 give cell edges 10/4/2.5: the conservative-neighborhood
        # width (2*floor(l/2lc) - 1)*lc grows 10 -> 20 -> 27.5, so accuracy
        # improves with memory (with a visible granularity wiggle at 250,
        # where l/(2 lc) = 3.75 is far from an integer).
        extra_histograms=(100, 250, 400),
    )


def plain_world_spec(profile: ScaleProfile, n_objects: int) -> WorldSpec:
    """A world with only the primary structures (Figure 7 / 10(b))."""
    return WorldSpec(
        n_objects=n_objects,
        warmup=profile.warmup,
        network_grid=profile.network_grid,
    )
