"""Figure 7 — qualitative example on the small (CH10K-slot) dataset.

Panels: (a) the object snapshot, (b) dense regions found by the exact FR
method, (c) dense regions found by the approximate PA method.  The paper's
point is twofold: PDR answers have arbitrary shapes and sizes, and the PA
answer visually matches the FR answer.  We quantify the match with the
raster Jaccard index alongside the ASCII panels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .config import ScaleProfile, active_profile
from .datasets import World, get_world, plain_world_spec
from .viz import render_points, render_region, side_by_side

__all__ = ["Fig7Result", "run_fig7"]


@dataclass
class Fig7Result:
    """Panels plus the FR/PA agreement statistics."""

    panel_objects: str
    panel_fr: str
    panel_pa: str
    fr_rects: int
    pa_rects: int
    fr_area: float
    pa_area: float
    jaccard: float
    varrho: float
    qt: int

    def combined(self) -> str:
        return side_by_side(
            [
                ("(a) objects", self.panel_objects),
                ("(b) dense regions (FR)", self.panel_fr),
                ("(c) dense regions (PA)", self.panel_pa),
            ]
        )


def run_fig7(
    profile: Optional[ScaleProfile] = None,
    world: Optional[World] = None,
    varrho: float = 2.0,
    width: int = 48,
    height: int = 24,
) -> Fig7Result:
    """Reproduce Figure 7 on the small dataset of the active profile."""
    profile = profile or active_profile()
    if world is None:
        world = get_world(
            plain_world_spec(profile, profile.small), profile.raster_resolution
        )
    server = world.server
    qt = world.query_times(1)[0]
    query = server.make_query(qt=qt, varrho=varrho)

    positions = [(x, y) for (_oid, x, y) in server.table.positions_at(qt)]
    fr = world.exact_answer(query)
    pa = world.pa_for(query.l).query(query)
    agreement = world.raster.accuracy(fr.regions, pa.regions)

    domain = server.config.domain
    return Fig7Result(
        panel_objects=render_points(positions, domain, width, height),
        panel_fr=render_region(fr.regions, domain, width, height),
        panel_pa=render_region(pa.regions, domain, width, height),
        fr_rects=len(fr.regions),
        pa_rects=len(pa.regions),
        fr_area=agreement.exact_area,
        pa_area=agreement.reported_area,
        jaccard=agreement.jaccard,
        varrho=varrho,
        qt=qt,
    )
