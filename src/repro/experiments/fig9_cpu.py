"""Figure 9 — CPU costs of PA vs the DH filter step (medium dataset).

* 9(a): query CPU vs the relative threshold, for l = 30 and l = 60.
  Expected shape: DH is flat in the threshold (it always classifies every
  cell) while PA *drops* as the threshold grows (branch-and-bound prunes
  more); PA undercuts DH at higher thresholds.
* 9(b): maintenance CPU per location update.  Expected shape: PA costs
  roughly an order of magnitude more per update than DH (it evaluates
  arccos/sin per covered timestamp), the price of its far better accuracy.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..histogram.filter import filter_query
from .config import EDGE_SWEEP, VARRHO_SWEEP, ScaleProfile, active_profile
from .datasets import World, get_world, medium_world_spec

__all__ = ["run_fig9a", "run_fig9b"]


def _medium_world(profile: ScaleProfile, world: Optional[World]) -> World:
    if world is not None:
        return world
    return get_world(medium_world_spec(profile), profile.raster_resolution)


def run_fig9a(
    profile: Optional[ScaleProfile] = None, world: Optional[World] = None
) -> List[Dict]:
    """Rows: mean query CPU (seconds) of PA and DH per (l, varrho).

    The DH cost is the *classification* cost of the filter step ("we must
    check the candidacy for each cell, regardless of the threshold"),
    which is what the paper's flat DH curve plots; materialising the answer
    set is common to every method and scales with the answer, not with the
    classification work.
    """
    profile = profile or active_profile()
    world = _medium_world(profile, world)
    server = world.server
    qts = world.query_times(profile.n_queries)
    rows: List[Dict] = []
    for l in EDGE_SWEEP:
        for varrho in VARRHO_SWEEP:
            pa_cpu = dh_cpu = 0.0
            bnb_nodes = 0.0
            for qt in qts:
                query = server.make_query(qt=qt, l=l, varrho=varrho)
                pa_result = world.pa_for(l).query(query)
                start = time.perf_counter()
                filter_query(server.histogram, query)
                dh_cpu += time.perf_counter() - start
                pa_cpu += pa_result.stats.cpu_seconds
                bnb_nodes += pa_result.stats.bnb_nodes
            n = len(qts)
            rows.append(
                {
                    "l": l,
                    "varrho": varrho,
                    "pa_cpu_s": pa_cpu / n,
                    "dh_cpu_s": dh_cpu / n,
                    "pa_bnb_nodes": bnb_nodes / n,
                }
            )
    return rows


def run_fig9b(
    profile: Optional[ScaleProfile] = None, world: Optional[World] = None
) -> List[Dict]:
    """Rows: mean maintenance CPU per location update, DH vs PA.

    Timers accumulate over the world's entire warm-up update stream, so the
    averages cover the same inserts and deletes for both structures.
    """
    profile = profile or active_profile()
    world = _medium_world(profile, world)
    rows = [
        {
            "structure": "DH",
            "config": f"m={world.spec.histogram_cells}",
            "ms_per_update": world.server.dh_timer.mean_millis_per_update,
            "updates": world.server.dh_timer.updates,
        },
        {
            "structure": "PA",
            "config": (
                f"g={world.spec.polynomial_grid} k={world.spec.polynomial_degree} "
                f"l={world.spec.l:g}"
            ),
            "ms_per_update": world.server.pa_timer.mean_millis_per_update,
            "updates": world.server.pa_timer.updates,
        },
    ]
    for (g, k, l), timer in sorted(world.extra_pa_timers.items()):
        rows.append(
            {
                "structure": "PA",
                "config": f"g={g} k={k} l={l:g}",
                "ms_per_update": timer.mean_millis_per_update,
                "updates": timer.updates,
            }
        )
    for m, timer in sorted(world.extra_histogram_timers.items()):
        rows.append(
            {
                "structure": "DH",
                "config": f"m={m}",
                "ms_per_update": timer.mean_millis_per_update,
                "updates": timer.updates,
            }
        )
    return rows
