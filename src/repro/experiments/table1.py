"""Table 1 — the experimental setup, as configured in this reproduction.

The paper's Table 1 lists every parameter of the evaluation; the OCR of the
source dropped most digits, so DESIGN.md documents each reconstruction.
This module renders the effective values for the active scale profile, so
bench output always states the configuration numbers were measured under.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..chebyshev.cheb2d import coefficient_count
from ..core.config import SystemConfig
from .config import EDGE_SWEEP, VARRHO_SWEEP, ScaleProfile, active_profile

__all__ = ["run_table1"]


def run_table1(profile: Optional[ScaleProfile] = None) -> List[Dict]:
    """Parameter/value rows mirroring the paper's Table 1."""
    profile = profile or active_profile()
    cfg = SystemConfig()
    horizon = cfg.horizon
    g, k, m = cfg.polynomial_grid, cfg.polynomial_degree, cfg.histogram_cells
    dh_mb = (horizon + 1) * m * m * 4 / 1e6
    pa_mb = (horizon + 1) * g * g * coefficient_count(k) * 8 / 1e6
    return [
        {"parameter": "Scale profile", "value": profile.name},
        {"parameter": "Page size", "value": f"{cfg.page_model.page_size} B"},
        {"parameter": "Buffer size", "value": "10% of dataset size"},
        {
            "parameter": "Random disk access time",
            "value": f"{cfg.page_model.random_io_seconds * 1000:.0f} ms",
        },
        {"parameter": "Maximum update interval (U)", "value": cfg.max_update_interval},
        {"parameter": "Prediction window length (W)", "value": cfg.prediction_window},
        {"parameter": "Time horizon (H = U + W)", "value": horizon},
        {
            "parameter": "Edge length of l-square (l)",
            "value": ", ".join(f"{l:g}" for l in EDGE_SWEEP),
        },
        {
            "parameter": "Number of objects",
            "value": ", ".join(
                profile.dataset_name(n) for n in profile.sizes
            ),
        },
        {
            "parameter": "Relative density threshold (varrho)",
            "value": ", ".join(f"{v:g}" for v in VARRHO_SWEEP),
        },
        {"parameter": "Num. of polynomials (g x g)", "value": f"{g * g} (g={g})"},
        {"parameter": "Degree of polynomial (k)", "value": k},
        {
            "parameter": "Num. of cells in density histogram (m x m)",
            "value": f"{m * m} (m={m})",
        },
        {
            "parameter": "Grid for polynomial evaluation (m_d x m_d)",
            "value": f"{cfg.evaluation_grid} x {cfg.evaluation_grid}",
        },
        {"parameter": "Queries per configuration", "value": profile.n_queries},
        {"parameter": "DH memory (default)", "value": f"{dh_mb:.1f} MB"},
        {"parameter": "PA memory (default)", "value": f"{pa_mb:.1f} MB"},
    ]
