"""Command-line interface.

Three subcommands cover the typical downstream workflow::

    python -m repro.cli simulate --objects 5000 --warmup 30 --out world.npz
    python -m repro.cli query --snapshot world.npz --method pa --varrho 2 \\
        --offset 20 --render
    python -m repro.cli report            # the full evaluation (run_all)

``simulate`` builds a road-network workload, warms a full server and
serialises its state; ``query`` restores the server and evaluates a snapshot
PDR query with any method, optionally rendering the dense regions as ASCII.

``metrics`` exposes the telemetry layer: with no arguments it runs a small
seeded probe workload (ingest waves, every query method, WAL appends,
replication, admission sheds) and renders the resulting registry in the
Prometheus text format; ``--from`` renders a snapshot saved by an earlier
``simulate``/``query`` run's ``--metrics-out`` instead.

``serve`` mounts a replication group behind the TCP front door
(:mod:`repro.serving`) until ``SIGTERM``/``Ctrl-C``, which triggers a
graceful drain and a clean exit 0; ``loadtest`` drives a seeded
open/closed-loop workload against a front door (an external one, or a
self-hosted group) and judges the p99s, failure ratio and acked-write
loss against SLOs.  Both print machine-readable ``port=``/
``metrics-port=`` lines on stdout when binding ephemeral ports (as does
``metrics --serve 0``), so scripts never have to guess.

Observability companions: ``journal`` tails the unified ops event
journal a ``serve``/``supervise`` run writes under
``<state_dir>/journal``; ``trace`` pretty-prints the stitched span tree
of one sampled distributed trace; ``top`` renders a live terminal view
(qps, latency percentiles, SLO budget, readonly/epoch state) from a
serving process's ``/metrics.json`` scrape endpoint.

Exit codes (stable; scripts may rely on them):

======  =========================================================
0       success (including ``metrics``, ``report``, clean ``verify``,
        a drained ``serve``)
1       any other :class:`~repro.core.errors.ReproError`
2       invalid parameters (bad method, bad thresholds, bad roles)
3       storage failures (snapshot/WAL/metrics-snapshot I/O, ``OSError``)
4       query evaluation failures
5       index integrity failures
6       data-generation failures
7       replication/serving failures (staleness, failover exhaustion,
        retries exhausted against a front door)
8       integrity damage (``verify`` found checksum-failing artifacts;
        ``serve`` refused a corrupt state dir without ``--force-recover``)
9       chaos invariant-oracle violation (``chaos``; finding, not error)
10      loadtest SLO violation or acked-write loss (finding, not error)
11      state directory locked by another live server process
12      supervisor gave up on a crash-looping child (``supervise``)
130     interrupted before completion (``Ctrl-C`` outside ``serve``/
        ``metrics --serve``, whose interrupts mean "stop serving" and
        exit 0 after a drain)
======  =========================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .core.system import PDRServer
from .core.config import SystemConfig
from .core.errors import (
    DatagenError,
    IndexError_,
    IntegrityError,
    InvalidParameterError,
    QueryError,
    ReplicationError,
    ReproError,
    StateDirLockedError,
    StorageError,
)
from .datagen.network import synthetic_metro
from .datagen.trips import TripSimulator
from .experiments.viz import render_region
from .storage.snapshot import load_server, save_server

__all__ = ["main", "build_parser", "EXIT_CODES"]

# Most specific classes first: the first match wins, so a subclass (e.g.
# HorizonError < QueryError, RecoveryError < StorageError) maps to its
# family's code.  IntegrityError precedes its parent StorageError so that
# checksum damage (`repro verify`) is distinguishable from plain storage
# failures; ReplicationError precedes QueryError so that
# StalenessExceededError (a member of both families) reports as a serving
# problem, not a bad query.  Exit code 1 is reserved for any other
# ReproError; the chaos subcommand returns 9 directly when an invariant
# oracle fails (that is a finding, not an exception).
EXIT_CODES = (
    (InvalidParameterError, 2),
    (StateDirLockedError, 11),
    (IntegrityError, 8),
    (StorageError, 3),
    (ReplicationError, 7),
    (QueryError, 4),
    (IndexError_, 5),
    (DatagenError, 6),
    (ReproError, 1),
)
EXIT_VERIFY_FAILED = 8
EXIT_CHAOS_ORACLE_FAILED = 9
EXIT_LOADTEST_FAILED = 10
EXIT_STATE_LOCKED = 11
EXIT_CRASH_LOOP = 12
EXIT_INTERRUPTED = 130


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pointwise-dense region queries over moving objects "
        "(Ni & Ravishankar, ICDE 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate and warm a server, save a snapshot")
    sim.add_argument("--objects", type=int, default=2000, help="number of moving objects")
    sim.add_argument("--seed", type=int, default=7, help="workload seed")
    sim.add_argument("--warmup", type=int, default=30, help="timestamps to simulate")
    sim.add_argument("--network-grid", type=int, default=30,
                     help="road-network intersections per side")
    sim.add_argument("--out", required=True, help="output snapshot path (.npz)")
    sim.add_argument("--metrics-out", default=None,
                     help="also save a telemetry snapshot (JSON) here, "
                          "renderable later with `repro metrics --from`")

    query = sub.add_parser("query", help="evaluate a snapshot PDR query")
    query.add_argument("--snapshot", required=True, help="snapshot produced by simulate")
    query.add_argument("--method", default="pa",
                       choices=["fr", "pa", "dh-optimistic", "dh-pessimistic",
                                "bruteforce", "dense-cell", "edq"])
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--varrho", type=float, help="threshold relative to average density")
    group.add_argument("--rho", type=float, help="absolute density threshold")
    query.add_argument("--l", type=float, default=None, help="neighborhood edge length")
    query.add_argument("--offset", type=int, default=0,
                       help="query timestamp offset from t_now (predictive)")
    query.add_argument("--deadline", type=float, default=None,
                       help="time budget in seconds; the server degrades to "
                            "cheaper methods rather than miss it")
    query.add_argument("--render", action="store_true",
                       help="print an ASCII map of the dense regions")
    query.add_argument("--geojson", action="store_true",
                       help="print the answer as a GeoJSON MultiPolygon")
    query.add_argument("--max-rects", type=int, default=10,
                       help="number of rectangles to list")
    query.add_argument("--replicas", type=int, default=0,
                       help="serve through a replication group with this many "
                            "replicas (0 = query the snapshot server directly)")
    query.add_argument("--staleness", type=int, default=0,
                       help="max LSN lag at which a replica may serve reads")
    query.add_argument("--reliability-report", action="store_true",
                       help="print the reliability counters (dead-letter, "
                            "degradations, replication) as JSON on stderr")
    query.add_argument("--metrics-out", default=None,
                       help="save a telemetry snapshot (JSON) of this run, "
                            "renderable later with `repro metrics --from`")

    peaks = sub.add_parser("peaks", help="report the k densest locations")
    peaks.add_argument("--snapshot", required=True, help="snapshot produced by simulate")
    peaks.add_argument("--k", type=int, default=5, help="number of peaks")
    peaks.add_argument("--offset", type=int, default=0,
                       help="query timestamp offset from t_now (predictive)")
    peaks.add_argument("--separation", type=float, default=50.0,
                       help="minimum distance between reported peaks")

    sub.add_parser("report", help="run the full evaluation (all tables/figures)")

    rel = sub.add_parser(
        "reliability",
        help="recover a durable state directory and print its reliability "
             "counters (WAL position, dead-letter queue, degradations)",
    )
    rel.add_argument("--state-dir", required=True,
                     help="state directory of a durable server")

    verify = sub.add_parser(
        "verify",
        help="checksum-verify a durable state directory (exit 0 = every "
             "WAL record and checkpoint artifact is intact, 8 = damage)",
    )
    verify.add_argument("--state-dir", required=True,
                        help="state directory to scrub")
    verify.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    verify.add_argument("--scrub", action="store_true",
                        help="repair in place what is safe to repair: delete "
                             "stray *.tmp files, truncate a torn WAL tail, "
                             "quarantine corrupt artifacts")

    chaos = sub.add_parser(
        "chaos",
        help="run a seeded chaos schedule against a replicated serving "
             "stack and check the invariant oracles (exit 9 = violation, "
             "with a shrunk reproducer)",
    )
    chaos.add_argument("--seed", type=int, default=0, help="schedule seed")
    chaos.add_argument("--events", type=int, default=200,
                       help="number of scheduled events")
    chaos.add_argument("--replicas", type=int, default=2,
                       help="replicas behind the primary")
    chaos.add_argument("--objects", type=int, default=24,
                       help="moving-object id space of the workload")
    chaos.add_argument("--staleness", type=int, default=0,
                       help="staleness bound for replica reads")
    chaos.add_argument("--no-shrink", action="store_true",
                       help="on failure, skip shrinking to a minimal reproducer")
    chaos.add_argument("--repro-out", default=None,
                       help="on failure, write the reproducer JSON here")
    chaos.add_argument("--network", action="store_true",
                       help="run the schedule through the TCP front door "
                            "behind a fault-injecting proxy (connection "
                            "resets, truncated frames, slow-loris, accept "
                            "stalls) and check the wire invariants too")
    chaos.add_argument("--resources", action="store_true",
                       help="add resource-exhaustion events (disk-budget "
                            "shrinks/restores, ENOSPC/EIO/short-write WAL "
                            "and checkpoint faults) and check the "
                            "read-only-monotonicity and acked-write-loss "
                            "oracles under them")
    chaos.add_argument("--process", action="store_true",
                       help="run the process-level kill matrix instead: "
                            "SIGKILL a real supervised `repro serve` child "
                            "at an armed crashpoint, restart it, and check "
                            "the recovered on-disk state (zero acked-write "
                            "loss, clean-or-quarantined, contiguous LSN "
                            "chain)")
    chaos.add_argument("--crashpoint", default=None,
                       help="with --process: run only this crashpoint "
                            "(default: every site on the matrix)")

    serve = sub.add_parser(
        "serve",
        help="serve a replicated PDR stack over TCP (length-prefixed JSON "
             "frames) until SIGTERM/Ctrl-C, then drain gracefully",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral; the bound port is "
                            "printed to stdout as `port=N`)")
    serve.add_argument("--snapshot", default=None,
                       help="mount this simulate snapshot (default: a fresh "
                            "seeded workload)")
    serve.add_argument("--objects", type=int, default=200,
                       help="objects in the fresh seeded workload")
    serve.add_argument("--seed", type=int, default=7, help="workload seed")
    serve.add_argument("--replicas", type=int, default=2,
                       help="replicas behind the primary")
    serve.add_argument("--staleness", type=int, default=1_000_000,
                       help="max LSN lag at which a replica may serve reads")
    serve.add_argument("--state-dir", default=None,
                       help="durable state directory (default: a temporary "
                            "one, removed on exit)")
    serve.add_argument("--admission-rate", type=float, default=None,
                       help="token-bucket refill rate (tokens/s); enables "
                            "the admission controller")
    serve.add_argument("--read-timeout", type=float, default=30.0,
                       help="per-connection read timeout (seconds)")
    serve.add_argument("--max-inflight", type=int, default=16,
                       help="pipelined requests allowed per connection")
    serve.add_argument("--drain-deadline", type=float, default=5.0,
                       help="seconds in-flight requests get to finish on drain")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="also serve /metrics on this port (0 = ephemeral; "
                            "printed to stdout as `metrics-port=N`)")
    serve.add_argument("--fsync", action="store_true",
                       help="fsync every WAL append (durable acks; the "
                            "default trades that for throughput)")
    serve.add_argument("--checkpoint-interval", type=int, default=0,
                       help="checkpoint every N ticks (0 = WAL only)")
    serve.add_argument("--force-recover", action="store_true",
                       help="boot from a state dir the verifier flags as "
                            "corrupt by quarantining the damage first "
                            "(default: refuse with exit 8)")

    sup = sub.add_parser(
        "supervise",
        help="run `repro serve` as a supervised child process: restart "
             "crashes with capped jittered backoff, probe TCP health, "
             "give up on crash loops (exit 12); args after `--` are "
             "forwarded to serve verbatim",
    )
    sup.add_argument("--host", default="127.0.0.1", help="child bind address")
    sup.add_argument("--port", type=int, default=0,
                     help="child TCP port (0 = first child picks an "
                          "ephemeral port, then every restart reuses it)")
    sup.add_argument("--probe-interval", type=float, default=0.2,
                     help="seconds between health probes")
    sup.add_argument("--probe-timeout", type=float, default=2.0,
                     help="per-probe socket budget (seconds)")
    sup.add_argument("--liveness-failures", type=int, default=3,
                     help="consecutive failed probes before a live but "
                          "unresponsive child is killed as hung")
    sup.add_argument("--startup-deadline", type=float, default=30.0,
                     help="seconds a child gets to bind and report ready")
    sup.add_argument("--backoff-initial", type=float, default=0.2,
                     help="restart backoff floor (seconds)")
    sup.add_argument("--backoff-max", type=float, default=5.0,
                     help="restart backoff cap (seconds)")
    sup.add_argument("--crash-loop-threshold", type=int, default=5,
                     help="crashes within the window that mean give up")
    sup.add_argument("--crash-loop-window", type=float, default=30.0,
                     help="sliding crash-loop window (seconds)")
    sup.add_argument("--max-restarts", type=int, default=None,
                     help="restart budget (default: unbounded)")
    sup.add_argument("--graceful-deadline", type=float, default=10.0,
                     help="drain budget on SIGTERM before SIGKILL")
    sup.add_argument("--seed", type=int, default=0,
                     help="backoff-jitter seed (determinism for tests)")
    sup.add_argument("--arm-crashpoint", default=None, metavar="SITE",
                     help="kill-matrix hook: arm this crashpoint in the "
                          "FIRST child only (restarts spawn disarmed)")
    sup.add_argument("--arm-after", type=int, default=0,
                     help="crashpoint hits to skip before the kill")
    sup.add_argument("--arm-torn", type=float, default=None,
                     help="torn-write fraction for the wal_write site")
    sup.add_argument("serve_args", nargs=argparse.REMAINDER,
                     help="arguments after `--` are passed to `repro serve`")

    lt = sub.add_parser(
        "loadtest",
        help="drive a seeded open/closed-loop load mix against a front door "
             "and judge latency/loss SLOs (exit 10 = violated)",
    )
    lt.add_argument("--host", default=None,
                    help="target an already-running front door (with --port); "
                         "default: self-host a fresh group")
    lt.add_argument("--port", type=int, default=None,
                    help="target port (with --host)")
    lt.add_argument("--mix", choices=["report-heavy", "query-heavy", "flash-crowd"],
                    default="report-heavy", help="operation mix")
    lt.add_argument("--mode", choices=["closed", "open"], default="closed",
                    help="closed loop (workers) or open loop (scheduled "
                         "arrivals, coordinated-omission-free)")
    lt.add_argument("--duration", type=float, default=5.0,
                    help="run length in seconds")
    lt.add_argument("--rate", type=float, default=100.0,
                    help="open loop: offered ops/second")
    lt.add_argument("--concurrency", type=int, default=4,
                    help="worker count (closed loop) / senders (open loop)")
    lt.add_argument("--seed", type=int, default=7, help="workload seed")
    lt.add_argument("--objects", type=int, default=64,
                    help="moving-object id space of the generated reports")
    lt.add_argument("--replicas", type=int, default=2,
                    help="self-hosted group: replicas behind the primary")
    lt.add_argument("--admission-rate", type=float, default=None,
                    help="self-hosted group: admission token rate (tokens/s)")
    lt.add_argument("--kill-primary-at", type=float, default=None,
                    help="self-hosted group: kill the primary this many "
                         "seconds into the run (failover under load)")
    lt.add_argument("--report-slo-ms", type=float, default=250.0,
                    help="report p99 SLO in milliseconds")
    lt.add_argument("--query-slo-ms", type=float, default=2000.0,
                    help="query p99 SLO in milliseconds")
    lt.add_argument("--max-failure-ratio", type=float, default=0.0,
                    help="fraction of ops allowed to exhaust retries")
    lt.add_argument("--trace-sample", type=int, default=0, metavar="N",
                    help="sample one in N ops for distributed tracing; on "
                         "an SLO violation the worst stitched trace is "
                         "printed with the verdict")
    lt.add_argument("--journal-dir", default=None,
                    help="journal the sampled client traces here (point at "
                         "the server's <state-dir>/journal so `repro "
                         "trace` can join them with its records)")
    lt.add_argument("--json-out", default=None,
                    help="write the full result (latencies, verdicts) here")

    jr = sub.add_parser(
        "journal",
        help="tail and filter the unified ops event journal (supervisor "
             "lifecycle, failover, read-only, sheds, breaker and SLO "
             "transitions, sampled traces)",
    )
    jr_src = jr.add_mutually_exclusive_group(required=True)
    jr_src.add_argument("--dir", dest="journal_dir", default=None,
                        help="journal directory (journal-<pid>-<n>.jsonl "
                             "segments)")
    jr_src.add_argument("--state-dir", default=None,
                        help="state directory of a serve/supervise run "
                             "(reads its journal/ subdirectory)")
    jr.add_argument("--event", default=None,
                    help="keep records with this event name; a trailing "
                         "'.' matches a prefix (e.g. `supervise.`)")
    jr.add_argument("--trace-id", default=None,
                    help="keep records stamped with this trace id")
    jr.add_argument("--since", type=float, default=None, metavar="EPOCH",
                    help="keep records at or after this wall timestamp "
                         "(epoch seconds)")
    jr.add_argument("--tail", type=int, default=50,
                    help="newest N records after filtering (0 = all)")
    jr.add_argument("--format", choices=["text", "json"], default="text",
                    help="text: one line per record; json: a JSON array")

    tr = sub.add_parser(
        "trace",
        help="pretty-print the stitched span tree of one distributed "
             "trace (client span, server dispatch, refinement stages)",
    )
    tr.add_argument("trace_id", help="the trace id to look up")
    tr_src = tr.add_mutually_exclusive_group(required=True)
    tr_src.add_argument("--dir", dest="journal_dir", default=None,
                        help="journal directory holding the sampled traces")
    tr_src.add_argument("--state-dir", default=None,
                        help="state directory (reads its journal/ "
                             "subdirectory)")
    tr.add_argument("--from", dest="from_path", default=None,
                    help="also search this telemetry snapshot's slow-query "
                         "log for the trace")

    top = sub.add_parser(
        "top",
        help="live terminal view of a serving process: qps, latency "
             "percentiles, inflight, SLO budget, readonly/epoch state "
             "(renders from the /metrics.json scrape endpoint)",
    )
    top.add_argument("--url", default=None,
                     help="metrics base URL (e.g. http://127.0.0.1:9100); "
                          "overrides --host/--port")
    top.add_argument("--host", default="127.0.0.1", help="metrics host")
    top.add_argument("--port", type=int, default=None,
                     help="metrics port (the `metrics-port=` line printed "
                          "by `repro serve --metrics-port`)")
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh interval in seconds")
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit (scripts and CI)")

    met = sub.add_parser(
        "metrics",
        help="render the telemetry registry (Prometheus text or JSON); "
             "runs a seeded probe workload unless --from gives a snapshot",
    )
    met.add_argument("--from", dest="from_path", default=None,
                     help="render a telemetry snapshot saved with "
                          "--metrics-out instead of running the probe")
    met.add_argument("--format", choices=["prometheus", "json"],
                     default="prometheus", help="output format")
    met.add_argument("--out", default=None,
                     help="write the rendering here instead of stdout")
    met.add_argument("--seed", type=int, default=7, help="probe workload seed")
    met.add_argument("--serve", type=int, default=None, metavar="PORT",
                     help="after rendering, serve /metrics and /metrics.json "
                          "on this port until interrupted (0 = ephemeral)")
    return parser


def _cmd_simulate(args) -> int:
    config = SystemConfig()
    server = PDRServer(config, expected_objects=args.objects)
    network = synthetic_metro(config.domain, grid_n=args.network_grid, seed=args.seed)
    simulator = TripSimulator(
        network, args.objects, config.max_update_interval, seed=args.seed
    )
    simulator.initialize(server.table)
    simulator.run_until(server.table, args.warmup)
    save_server(server, args.out)
    print(
        f"simulated {server.object_count()} objects to t={server.tnow} "
        f"({simulator.reports_issued} reports); snapshot written to {args.out}"
    )
    return 0


def _serving_group(snapshot_path: str, replicas: int, staleness: int, state_dir: str):
    """A replication group whose primary is restored from a snapshot.

    The snapshot becomes a durable primary (WAL in ``state_dir``) whose
    first checkpoint carries the snapshot state at LSN 0, which is what
    the replicas bootstrap from.
    """
    from .reliability.replication import ReplicationConfig, ReplicationGroup
    from .reliability.validation import ReliabilityConfig
    from .storage.snapshot import read_snapshot, restore_server_state

    state = read_snapshot(snapshot_path)
    primary = PDRServer(
        state.config,
        expected_objects=max(len(state.motions), 1),
        tnow=state.tnow,
        reliability=ReliabilityConfig(state_dir=state_dir, fsync=False),
    )
    restore_server_state(primary, state)
    primary._manager.checkpoint(primary)
    return ReplicationGroup(
        primary,
        n_replicas=replicas,
        config=ReplicationConfig(staleness_bound=staleness),
    )


def _cmd_query(args) -> int:
    if args.replicas > 0:
        import shutil
        import tempfile

        state_dir = tempfile.mkdtemp(prefix="repro-serving-")
        group = _serving_group(args.snapshot, args.replicas, args.staleness, state_dir)
        try:
            return _answer_query(group, args, group=group)
        finally:
            group.close()
            shutil.rmtree(state_dir, ignore_errors=True)
    return _answer_query(load_server(args.snapshot), args)


def _answer_query(server, args, group=None) -> int:
    qt = server.tnow + args.offset
    result = server.query(
        args.method, qt=qt, l=args.l, rho=args.rho, varrho=args.varrho,
        deadline=args.deadline,
    )
    if result.degraded:
        print(
            f"degraded: {args.method} missed the {args.deadline}s budget, "
            f"answered with {result.stats.method}",
            file=sys.stderr,
        )
    backend = f" [served by {result.served_by}]" if result.served_by else ""
    print(
        f"{result.stats.method} @ qt={qt}: {len(result.regions)} dense rectangles, "
        f"area {result.area():,.1f}, cpu {result.stats.cpu_seconds * 1000:.1f} ms, "
        f"io {result.stats.io_count} pages ({result.stats.io_seconds:.2f} s charged)"
        f"{backend}"
    )
    extra = result.stats.extra
    if "filter_seconds" in extra:
        print(
            f"  stages: filter {extra['filter_seconds'] * 1000:.1f} ms, "
            f"fetch {extra.get('fetch_seconds', 0.0) * 1000:.1f} ms, "
            f"sweep {extra.get('sweep_seconds', 0.0) * 1000:.1f} ms; "
            f"histogram cache {int(extra.get('cache_hits', 0))} hit(s) / "
            f"{int(extra.get('cache_misses', 0))} miss(es)"
        )
    if group is not None:
        status = group.status()
        lags = ", ".join(
            f"{r['name']} lag={r['lag']}" for r in status["replicas"]
        )
        print(
            f"replication: epoch {status['epoch']}, "
            f"acked lsn {status['primary']['acked_lsn']}, {lags}"
        )
    for rect in list(result.regions)[: args.max_rects]:
        print(f"  [{rect.x1:.2f}, {rect.x2:.2f}) x [{rect.y1:.2f}, {rect.y2:.2f})")
    remaining = len(result.regions) - args.max_rects
    if remaining > 0:
        print(f"  ... and {remaining} more")
    if args.render:
        print(render_region(result.regions, server.config.domain, 60, 30))
    if args.geojson:
        import json

        print(json.dumps(result.regions.to_geojson()))
    if args.reliability_report:
        import json

        print(json.dumps(server.reliability_report(), default=str), file=sys.stderr)
    return 0


def _cmd_reliability(args) -> int:
    import json

    server = PDRServer.recover(args.state_dir)
    try:
        print(json.dumps(server.reliability_report(), indent=2, default=str))
    finally:
        server.close()
    return 0


def _cmd_verify(args) -> int:
    import json

    from .reliability.integrity import scrub_state_dir, verify_state_dir

    if args.scrub:
        report = scrub_state_dir(args.state_dir)
        for action in report.actions:
            print(f"scrub: {action}")
    else:
        report = verify_state_dir(args.state_dir)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.clean else EXIT_VERIFY_FAILED


def _cmd_chaos_process(args) -> int:
    import json
    import os
    import shutil
    import tempfile

    from .reliability.crashpoints import CRASH_SITES
    from .reliability.prochaos import ProcessChaosConfig, run_process_cell

    sites = [args.crashpoint] if args.crashpoint else list(CRASH_SITES)
    workroot = tempfile.mkdtemp(prefix="repro-prochaos-")
    failures = []
    try:
        for site in sites:
            workdir = os.path.join(
                workroot, f"{site.replace('.', '-')}-{args.seed}"
            )
            os.makedirs(workdir, exist_ok=True)
            result = run_process_cell(
                ProcessChaosConfig(site=site, seed=args.seed), workdir
            )
            if result.ok:
                print(
                    f"process-crash: site={site} seed={args.seed} — "
                    f"{result.stats.get('restarts', 0)} restart(s), acked "
                    f"lsn {result.stats.get('max_acked_lsn', 0)}, recovered "
                    f"lsn {result.stats.get('recovered_lsn', 0)}, generation "
                    f"{result.stats.get('client_generation', 0)} — "
                    "oracles green"
                )
            else:
                print(result.format_reproducer(), file=sys.stderr)
                failures.append(result)
        if not failures:
            return 0
        if args.repro_out:
            with open(args.repro_out, "w", encoding="utf-8") as fh:
                json.dump(
                    [f.to_dict() for f in failures], fh, indent=2
                )
            print(f"reproducer written to {args.repro_out}", file=sys.stderr)
        return EXIT_CHAOS_ORACLE_FAILED
    finally:
        shutil.rmtree(workroot, ignore_errors=True)


def _cmd_chaos(args) -> int:
    import json
    import shutil
    import tempfile

    if args.process:
        return _cmd_chaos_process(args)

    from .reliability.chaos import ChaosConfig, ChaosScheduler

    config = ChaosConfig(
        seed=args.seed,
        events=args.events,
        replicas=args.replicas,
        objects=args.objects,
        staleness_bound=args.staleness,
        shrink=not args.no_shrink,
        network=args.network,
        resources=args.resources,
    )
    workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        result = ChaosScheduler(config, workdir).run()
        if result.ok:
            print(
                f"chaos: seed {result.seed}, {result.events_run} events, "
                f"{result.stats.get('oracle_sweeps', 0)} oracle sweeps, "
                f"{result.stats.get('failovers', 0)} failovers, "
                f"{result.stats.get('repairs', 0)} repairs, "
                f"{result.stats.get('flips', 0)} bit-flips — all oracles green"
            )
            if args.network:
                proxy = result.stats.get("proxy", {})
                wire = result.stats.get("wire", {})
                print(
                    f"network: {proxy.get('connections', 0)} proxied "
                    f"connections, {proxy.get('resets', 0)} resets, "
                    f"{proxy.get('truncations', 0)} truncations, "
                    f"{proxy.get('slowloris', 0)} slow-loris, "
                    f"{proxy.get('stalls', 0)} accept stalls; client retried "
                    f"{wire.get('retries', 0)}x, honored "
                    f"{wire.get('sheds_honored', 0)} shed hint(s), acked lsn "
                    f"{wire.get('max_acked_lsn', 0)} — wire oracles green"
                )
            if args.resources:
                print(
                    f"resources: {result.stats.get('refused_writes', 0)} "
                    "write(s) refused while degraded — read-only mode "
                    "stayed monotone with the budget, no acked write lost"
                )
            return 0
        print(result.format_reproducer(), file=sys.stderr)
        if args.repro_out:
            with open(args.repro_out, "w", encoding="utf-8") as fh:
                json.dump(result.to_dict(), fh, indent=2)
            print(f"reproducer written to {args.repro_out}", file=sys.stderr)
        return EXIT_CHAOS_ORACLE_FAILED
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _boot_verify(state_dir: str, force_recover: bool) -> None:
    """Gate `serve` boot on the integrity verdict of an existing state dir.

    Safe damage (a torn WAL tail from the previous crash, stray ``*.tmp``
    leftovers of an interrupted rename) is repaired in place — that is
    exactly what recovery's replay scan would do anyway.  Real corruption
    is refused (exit 8) unless ``--force-recover`` explicitly accepts the
    quarantine: a supervised child must never silently crash-loop its way
    into serving from a directory whose checksums do not add up.
    """
    from .reliability.integrity import scrub_state_dir, verify_state_dir

    from .telemetry import JOURNAL

    report = verify_state_dir(state_dir)
    corrupt = [f for f in report.damaged() if f.state == "corrupt"]
    if corrupt and not force_recover:
        names = ", ".join(f.name for f in corrupt)
        JOURNAL.emit("boot_refused", artifacts=[f.name for f in corrupt])
        raise IntegrityError(
            f"state dir {state_dir!r} holds corrupt artifact(s): {names}; "
            "refusing to serve from damaged state "
            "(repair/quarantine with `repro verify --scrub`, or accept the "
            "quarantine with `repro serve --force-recover`)"
        )
    if not report.clean or report.stray_tmp():
        repaired = scrub_state_dir(state_dir)
        for action in repaired.actions:
            # journal + stderr: the stderr lines stay for the operator's
            # scrollback, the journal records survive the process
            JOURNAL.emit("boot_scrub", action=action)
            print(f"boot-scrub: {action}", file=sys.stderr)


def _recovered_group(state_dir: str, args):
    """Recover an existing durable directory into a serving group."""
    from .reliability.replication import ReplicationConfig, ReplicationGroup

    _boot_verify(state_dir, args.force_recover)
    primary = PDRServer.recover(state_dir)
    print(
        f"recovered {state_dir} at lsn {primary.wal_lsn}, "
        f"generation {primary.recovery_generation}",
        file=sys.stderr,
    )
    if args.replicas > 0 and primary._manager is not None:
        from .reliability.recovery import load_latest_checkpoint

        # replicas bootstrap from a checkpoint image; make sure one exists
        if load_latest_checkpoint(state_dir) is None:
            primary._manager.checkpoint(primary)
    return ReplicationGroup(
        primary,
        n_replicas=args.replicas,
        config=ReplicationConfig(staleness_bound=args.staleness),
    )


def _cmd_serve(args) -> int:
    import os
    import shutil
    import signal
    import tempfile
    import threading

    from .reliability.crashpoints import arm_from_env
    from .serving.loadtest import build_serving_group
    from .serving.server import ServerThread, ServingConfig

    armed = arm_from_env()
    if armed:
        print(f"crashpoint armed: {armed}", file=sys.stderr)
    # install the drain handlers before the server (and its health
    # endpoint) exists: a supervisor forwards SIGTERM the moment a
    # probe reports ready, which can be before this function's next
    # few statements have run — the default disposition there would
    # turn a graceful stop into a 143 corpse
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    owned_dir = None
    if args.state_dir is None:
        owned_dir = tempfile.mkdtemp(prefix="repro-serve-")
        state_dir = owned_dir + "/state"
    else:
        state_dir = args.state_dir
    # Bind the process-wide journal before boot so boot-scrub findings
    # and recovery land in it; a supervising parent writes its own
    # journal-<pid> segments into the same directory.
    from .telemetry import JOURNAL

    JOURNAL.bind(os.path.join(state_dir, "journal"), role="serve")
    if args.snapshot is not None:
        group = _serving_group(args.snapshot, args.replicas, args.staleness,
                               state_dir)
    elif os.path.exists(os.path.join(state_dir, "server-config.json")):
        # a previous incarnation (crashed or drained) left durable state:
        # serve what it acknowledged, not a fresh workload over it
        group = _recovered_group(state_dir, args)
    else:
        group = build_serving_group(
            state_dir, objects=args.objects, replicas=args.replicas,
            seed=args.seed, staleness=args.staleness,
            admission_rate=args.admission_rate,
            fsync=args.fsync, checkpoint_interval=args.checkpoint_interval,
        )
    JOURNAL.update_context(
        epoch=group.epoch,
        generation=getattr(group.primary, "recovery_generation", 0),
    )
    thread = ServerThread(group, ServingConfig(
        host=args.host, port=args.port, read_timeout=args.read_timeout,
        max_inflight=args.max_inflight, drain_deadline=args.drain_deadline,
    ))
    metrics_server = None
    try:
        thread.start()
        host, port = thread.address
        JOURNAL.emit("serve.ready", port=port, tnow=group.tnow,
                     replicas=len(group.replicas))
        print(f"port={port}", flush=True)
        if args.metrics_port is not None:
            from .telemetry import TELEMETRY, serve_metrics

            metrics_server = serve_metrics(TELEMETRY, port=args.metrics_port)
            print(f"metrics-port={metrics_server.server_address[1]}", flush=True)
        print(
            f"serving on {host}:{port} (epoch {group.epoch}, "
            f"{len(group.replicas)} replica(s), tnow {group.tnow}); "
            f"SIGTERM/Ctrl-C drains",
            file=sys.stderr,
        )
        stop.wait()
        JOURNAL.emit("serve.drain", deadline=args.drain_deadline)
        print(
            f"drain: no new connections; in-flight requests get "
            f"{args.drain_deadline:.1f}s",
            file=sys.stderr,
        )
    finally:
        if metrics_server is not None:
            metrics_server.shutdown()
        thread.stop()
        group.close()
        if owned_dir is not None:
            shutil.rmtree(owned_dir, ignore_errors=True)
    print("drained clean", file=sys.stderr)
    return 0


def _cmd_supervise(args) -> int:
    import signal

    from .serving.supervisor import Supervisor, SupervisorConfig

    serve_args = list(args.serve_args)
    if serve_args and serve_args[0] == "--":
        serve_args = serve_args[1:]
    supervisor = Supervisor(SupervisorConfig(
        serve_args=serve_args,
        host=args.host,
        port=args.port,
        probe_interval=args.probe_interval,
        probe_timeout=args.probe_timeout,
        liveness_failures=args.liveness_failures,
        startup_deadline=args.startup_deadline,
        backoff_initial=args.backoff_initial,
        backoff_max=args.backoff_max,
        crash_loop_threshold=args.crash_loop_threshold,
        crash_loop_window=args.crash_loop_window,
        max_restarts=args.max_restarts,
        graceful_deadline=args.graceful_deadline,
        seed=args.seed,
        arm_crashpoint=args.arm_crashpoint,
        arm_after=args.arm_after,
        arm_torn=args.arm_torn,
    ))
    # SIGTERM/Ctrl-C mean "drain the child and stop", exit 0 — the same
    # contract serve itself honors, one level up
    signal.signal(signal.SIGTERM, lambda *_: supervisor.request_stop())
    signal.signal(signal.SIGINT, lambda *_: supervisor.request_stop())
    return supervisor.run()


def _cmd_loadtest(args) -> int:
    import json
    import shutil
    import tempfile

    from .serving.loadtest import LoadTestConfig, build_serving_group, run_loadtest
    from .serving.server import ServerThread, ServingConfig

    if (args.host is None) != (args.port is None):
        raise InvalidParameterError("--host and --port go together")
    if args.journal_dir is not None:
        from .telemetry import JOURNAL

        JOURNAL.bind(args.journal_dir, role="loadtest")
    config = LoadTestConfig(
        mix=args.mix, mode=args.mode, duration=args.duration, rate=args.rate,
        concurrency=args.concurrency, seed=args.seed, objects=args.objects,
        report_slo_p99_ms=args.report_slo_ms, query_slo_p99_ms=args.query_slo_ms,
        max_failure_ratio=args.max_failure_ratio,
        kill_primary_at=args.kill_primary_at,
        trace_sample=args.trace_sample,
    )
    if args.host is not None:
        if args.kill_primary_at is not None:
            raise InvalidParameterError(
                "--kill-primary-at needs a self-hosted group (drop --host)"
            )
        result = run_loadtest([(args.host, args.port)], config)
    else:
        workdir = tempfile.mkdtemp(prefix="repro-loadtest-")
        group = build_serving_group(
            workdir + "/state", objects=max(args.objects, 32),
            replicas=args.replicas, seed=args.seed,
            admission_rate=args.admission_rate,
        )
        thread = ServerThread(group, ServingConfig()).start()

        def _kill_primary() -> None:
            def _do() -> None:
                group.mark_primary_dead()
                group.failover()
            thread.call(_do)

        try:
            result = run_loadtest([thread.address], config,
                                  kill_primary=_kill_primary)
        finally:
            thread.stop()
            group.close()
            shutil.rmtree(workdir, ignore_errors=True)
    print(result.summary())
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"full result written to {args.json_out}", file=sys.stderr)
    return 0 if result.ok else EXIT_LOADTEST_FAILED


def _journal_dir(args) -> str:
    import os

    if args.journal_dir is not None:
        return args.journal_dir
    return os.path.join(args.state_dir, "journal")


def _format_journal_record(record: dict) -> str:
    """One human-readable line per record (the `--format text` view)."""
    import time as _time

    known = ("seq", "ts", "perf", "pid", "event", "role", "epoch",
             "generation", "trace_id")
    when = _time.strftime(
        "%H:%M:%S", _time.localtime(record.get("ts", 0.0))
    ) + f".{int((record.get('ts', 0.0) % 1) * 1000):03d}"
    parts = [
        when,
        f"pid={record.get('pid', '?')}",
        f"{record.get('event', '?'):<24s}",
    ]
    for key in ("role", "epoch", "generation", "trace_id"):
        value = record.get(key)
        if value is not None:
            parts.append(f"{key}={value}")
    for key, value in record.items():
        if key in known or value is None:
            continue
        if key == "trace" and isinstance(value, dict):
            parts.append("trace=<tree>")  # full trees go to `repro trace`
            continue
        parts.append(f"{key}={value}")
    return "  ".join(parts)


def _cmd_journal(args) -> int:
    import json

    from .telemetry import read_journal

    event = args.event
    prefix = None
    if event is not None and event.endswith("."):
        prefix, event = event, None
    records = read_journal(
        _journal_dir(args),
        event=event,
        trace_id=args.trace_id,
        since=args.since,
    )
    if prefix is not None:
        records = [
            r for r in records
            if str(r.get("event", "")).startswith(prefix)
        ]
    if args.tail > 0:
        records = records[-args.tail:]
    if args.format == "json":
        print(json.dumps(records, indent=2, default=str))
    else:
        for record in records:
            print(_format_journal_record(record))
    return 0


def _cmd_trace(args) -> int:
    from .telemetry import read_journal, render_span_tree

    directory = _journal_dir(args)
    records = read_journal(directory, trace_id=args.trace_id)
    trees = [
        r["trace"] for r in records
        if r.get("event") == "client_trace" and isinstance(r.get("trace"), dict)
    ]
    if not trees and args.from_path is not None:
        # fall back to a saved telemetry snapshot's slow-query exemplars
        from .telemetry import load_snapshot

        snapshot = load_snapshot(args.from_path)
        for entry in (snapshot.get("slow_queries") or {}).get("entries", []):
            if entry.get("trace_id") == args.trace_id and entry.get("trace"):
                trees.append(entry["trace"])
    if not trees and not records:
        print(f"trace {args.trace_id!r} not found in {directory}",
              file=sys.stderr)
        return 1
    for tree in trees:
        for line in render_span_tree(tree):
            print(line)
    # the journal timeline of the trace (sheds, slow_query, ...) follows
    timeline = [r for r in records if r.get("event") != "client_trace"]
    if timeline:
        print("journal records:")
        for record in timeline:
            print("  " + _format_journal_record(record))
    if not trees:
        print(
            f"no stitched span tree for {args.trace_id!r} (the request "
            "was not sampled); journal records above are all that exists",
            file=sys.stderr,
        )
    return 0


def _merged_quantiles(family: Optional[dict]) -> dict:
    """p50/p95/p99 and count over *all* series of one histogram family.

    Per-series quantiles cannot be averaged; merging the cumulative
    buckets and reading the percentile off the merged distribution is
    the statistically honest aggregation.
    """
    merged: dict = {}
    for series in (family or {}).get("series", []):
        for le, count in series.get("buckets", []):
            key = float("inf") if le == "+Inf" else float(le)
            merged[key] = merged.get(key, 0) + count
    total = merged.get(float("inf"), 0)
    out = {"count": total, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    if total <= 0:
        return out
    bounds = sorted(merged)
    for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
        want = q * total
        for le in bounds:
            if merged[le] >= want:
                out[name] = le if le != float("inf") else bounds[-2]
                break
    return out


def _gauge_value(family: Optional[dict], label: Optional[dict] = None) -> float:
    for series in (family or {}).get("series", []):
        if label is None or all(
            series.get("labels", {}).get(k) == v for k, v in label.items()
        ):
            return float(series.get("value", 0.0))
    return 0.0


def _counter_total(family: Optional[dict]) -> float:
    return sum(
        float(series.get("value", 0.0))
        for series in (family or {}).get("series", [])
    )


def _render_top_frame(families: dict, qps: Optional[float]) -> str:
    lines = []
    readonly = _gauge_value(families.get("repro_readonly")) > 0.0
    epoch = int(_gauge_value(families.get("repro_replication_epoch")))
    lines.append(
        f"repro top — epoch {epoch}  "
        f"state {'READ-ONLY' if readonly else 'serving'}  "
        f"inflight {int(_gauge_value(families.get('repro_serving_inflight')))}"
    )
    served = _counter_total(families.get("repro_query_total"))
    qps_text = f"{qps:8.1f}/s" if qps is not None else "       --"
    lines.append(f"queries  total {int(served):>8d}   rate {qps_text}")
    q = _merged_quantiles(families.get("repro_query_seconds"))
    lines.append(
        f"latency  p50 {q['p50'] * 1000.0:8.2f}ms   "
        f"p95 {q['p95'] * 1000.0:8.2f}ms   p99 {q['p99'] * 1000.0:8.2f}ms"
    )
    burn = families.get("repro_slo_burn_rate")
    budget = families.get("repro_slo_budget_remaining")
    for window in ("5s", "60s", "300s"):
        lines.append(
            f"slo {window:>4s}  burn {_gauge_value(burn, {'window': window}):8.2f}   "
            f"budget {_gauge_value(budget, {'window': window}) * 100.0:6.1f}%"
        )
    sheds = _counter_total(families.get("repro_admission_sheds_total"))
    lines.append(
        f"sheds    total {int(sheds):>8d}   "
        f"wal lsn {int(_gauge_value(families.get('repro_wal_lsn')))}"
    )
    return "\n".join(lines)


def _cmd_top(args) -> int:
    import json
    import signal
    import threading
    import time as _time
    import urllib.request

    if args.url is None and args.port is None:
        raise InvalidParameterError("give --url, or --port (with --host)")
    base = args.url if args.url is not None else f"http://{args.host}:{args.port}"
    url = base.rstrip("/") + "/metrics.json"

    def fetch() -> dict:
        with urllib.request.urlopen(url, timeout=5.0) as resp:
            snapshot = json.loads(resp.read().decode("utf-8"))
        return {f["name"]: f for f in snapshot.get("families", [])}

    if args.once:
        print(_render_top_frame(fetch(), qps=None))
        return 0
    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    prev_total: Optional[float] = None
    prev_at = 0.0
    while not stop.is_set():
        families = fetch()
        now = _time.perf_counter()
        total = _counter_total(families.get("repro_query_total"))
        qps = (
            (total - prev_total) / (now - prev_at)
            if prev_total is not None and now > prev_at
            else None
        )
        prev_total, prev_at = total, now
        # one ANSI clear per frame keeps the view in place like top(1)
        print("\x1b[2J\x1b[H" + _render_top_frame(families, qps), flush=True)
        stop.wait(max(0.1, args.interval))
    return 0


def _probe_workload(seed: int = 7, objects: int = 48) -> None:
    """A tiny seeded workload that exercises every required metric family.

    Durable primary (WAL appends + fsyncs), batched ingest with a wave
    split and a rejected report, one replica behind a link (lag gauges),
    admission control starved down to sheds, and one query per ladder
    method (stage histograms + prefix/block-sum cache traffic).  Runs in
    a throwaway state directory.
    """
    import random
    import shutil
    import tempfile

    from .core.errors import AdmissionRejectedError
    from .reliability.admission import AdmissionConfig
    from .reliability.replication import ReplicationConfig, ReplicationGroup
    from .reliability.validation import ReliabilityConfig

    rng = random.Random(seed)
    workdir = tempfile.mkdtemp(prefix="repro-metrics-")
    try:
        config = SystemConfig()
        primary = PDRServer(
            config,
            expected_objects=objects,
            reliability=ReliabilityConfig(
                state_dir=workdir + "/state", fsync=True
            ),
        )
        domain = config.domain
        batch = [
            (
                oid,
                rng.uniform(domain.x1, domain.x2),
                rng.uniform(domain.y1, domain.y2),
                rng.uniform(-1.0, 1.0),
                rng.uniform(-1.0, 1.0),
            )
            for oid in range(objects)
        ]
        batch.append((0, domain.x1 + 1.0, domain.y1 + 1.0, 0.0, 0.0))  # wave split
        primary.report_batch(batch)
        primary.report(1, float("nan"), 0.0, 0.0, 0.0)  # rejected -> dead letter
        group = ReplicationGroup(
            primary,
            n_replicas=1,
            config=ReplicationConfig(staleness_bound=1_000_000),
            admission=AdmissionConfig(rate=0.001, burst=16.0),
        )
        group.advance_to(1)
        qt = group.tnow + 1
        sheds = 0
        for method in ("fr", "pa", "dh-optimistic", "fr", "fr", "fr", "fr", "fr"):
            try:
                group.query(method, qt=qt, varrho=1.5)
            except AdmissionRejectedError:
                sheds += 1
        if sheds == 0:  # the bucket refilled faster than we drained it
            group.admission.bucket.tokens = 0.0
            try:
                group.query("fr", qt=qt, varrho=1.5)
            except AdmissionRejectedError:
                pass
        group.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _cmd_metrics(args) -> int:
    from .telemetry import (
        TELEMETRY,
        load_snapshot,
        render_json,
        render_prometheus,
        serve_metrics,
    )

    if args.from_path is not None:
        try:
            snapshot = load_snapshot(args.from_path)
        except ValueError as exc:  # malformed JSON maps to a storage failure
            raise StorageError(
                f"unreadable telemetry snapshot {args.from_path!r}: {exc}"
            ) from exc
        slow = snapshot.get("slow_queries")
    else:
        _probe_workload(seed=args.seed)
        snapshot = TELEMETRY.registry.snapshot()
        slow = TELEMETRY.slow_queries.to_dict()
    if args.format == "prometheus":
        text = render_prometheus(snapshot)
    else:
        text = render_json(
            {"families": snapshot.get("families", [])}, slow_queries=slow
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")
        print(f"metrics written to {args.out}", file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    if args.serve is not None:
        import signal
        import threading

        server = serve_metrics(TELEMETRY, port=args.serve)
        host, port = server.server_address[:2]
        # the bound port goes to stdout so scripts can `--serve 0` and read
        # it back without racing; the human banner stays on stderr
        print(f"metrics-port={port}", flush=True)
        print(f"serving metrics on http://{host}:{port}/metrics "
              f"(Ctrl-C to stop)", file=sys.stderr)
        stop = threading.Event()
        # a handler (not try/except KeyboardInterrupt) so a SIGINT landing
        # before the wait starts still means "stop serving", exit 0
        signal.signal(signal.SIGINT, lambda *_: stop.set())
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
        try:
            stop.wait()
        finally:
            server.shutdown()
    return 0


def _save_metrics_snapshot(path: str) -> None:
    from .telemetry import TELEMETRY, save_snapshot

    save_snapshot(
        TELEMETRY.registry.snapshot(),
        path,
        slow_queries=TELEMETRY.slow_queries.to_dict(),
    )
    print(f"telemetry snapshot written to {path}", file=sys.stderr)


def _cmd_peaks(args) -> int:
    from .methods.topk import top_k_peaks

    server = load_server(args.snapshot)
    qt = server.tnow + args.offset
    peaks = top_k_peaks(server.pa, qt, k=args.k, separation=args.separation)
    print(f"top {len(peaks)} density peaks @ qt={qt} (objects per sq mile):")
    for rank, peak in enumerate(peaks, start=1):
        print(f"  {rank}. ({peak.x:7.1f}, {peak.y:7.1f})  density {peak.density:.5f}")
    return 0


def _dispatch(args) -> int:
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "peaks":
        return _cmd_peaks(args)
    if args.command == "reliability":
        return _cmd_reliability(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "supervise":
        return _cmd_supervise(args)
    if args.command == "loadtest":
        return _cmd_loadtest(args)
    if args.command == "journal":
        return _cmd_journal(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "report":
        from .experiments.run_all import main as report_main

        return report_main()
    raise AssertionError("unreachable")  # pragma: no cover


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        rc = _dispatch(args)
        if getattr(args, "metrics_out", None):
            _save_metrics_snapshot(args.metrics_out)
        return rc
    except ReproError as exc:
        for cls, code in EXIT_CODES:
            if isinstance(exc, cls):
                print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
                return code
        raise  # pragma: no cover - EXIT_CODES ends with ReproError itself
    except OSError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        # long-running subcommands that *serve* handle SIGINT themselves
        # (drain, exit 0); anywhere else a Ctrl-C is an abandoned run,
        # reported in the shell convention (128 + SIGINT), traceback-free
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED


if __name__ == "__main__":
    sys.exit(main())
