"""Linear motion model (Section 4 of the paper).

Each object is a point that reports ``(x, y, vx, vy)`` at a reference
timestamp; its predicted position at time ``t >= t_ref`` is ``(x + (t -
t_ref) vx, y + (t - t_ref) vy)``.  A :class:`Motion` is one such report; an
object's lifetime is a sequence of motions, each superseding the previous
one through the update protocol in :mod:`repro.motion.updates`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.errors import InvalidParameterError

__all__ = ["Motion"]


@dataclass(frozen=True)
class Motion:
    """One linear movement report of one object."""

    oid: int
    t_ref: int
    x: float
    y: float
    vx: float
    vy: float

    def __post_init__(self) -> None:
        if self.oid < 0:
            raise InvalidParameterError(f"object id must be >= 0, got {self.oid}")

    def position_at(self, t: float) -> Tuple[float, float]:
        """Predicted position at time ``t`` under the linear model."""
        dt = t - self.t_ref
        return (self.x + dt * self.vx, self.y + dt * self.vy)

    def positions_at(self, ts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`position_at` over an array of timestamps."""
        dt = np.asarray(ts, dtype=float) - self.t_ref
        return (self.x + dt * self.vx, self.y + dt * self.vy)

    @property
    def speed(self) -> float:
        return float(np.hypot(self.vx, self.vy))

    def with_reference(self, t: int) -> "Motion":
        """The same trajectory re-anchored at reference time ``t``."""
        x, y = self.position_at(t)
        return Motion(self.oid, t, x, y, self.vx, self.vy)
