"""The server-side object table.

:class:`ObjectTable` is the central registry of current motions.  It owns the
server clock ``t_now``, expands position reports into the delete+insert
protocol of :mod:`repro.motion.updates`, and fans both updates and clock
advances out to its registered listeners (histograms, polynomial
approximators, the TPR-tree, ...).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import InvalidParameterError, QueryError
from ..telemetry import instruments as tm
from .model import Motion
from .updates import (
    DeleteUpdate,
    InsertUpdate,
    ReportPair,
    UpdateListener,
    dispatch,
)

__all__ = ["ObjectTable"]


class ObjectTable:
    """Registry of live motions plus the update fan-out bus."""

    def __init__(self, tnow: int = 0) -> None:
        self._motions: Dict[int, Motion] = {}
        self._tnow = tnow
        self._listeners: List[UpdateListener] = []

    # ------------------------------------------------------------------
    # listeners and clock
    # ------------------------------------------------------------------
    def add_listener(self, listener: UpdateListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: UpdateListener) -> None:
        self._listeners.remove(listener)

    @property
    def tnow(self) -> int:
        return self._tnow

    def advance_to(self, tnow: int) -> None:
        """Move the server clock forward and notify listeners."""
        if tnow < self._tnow:
            raise InvalidParameterError(
                f"clock cannot move backwards ({self._tnow} -> {tnow})"
            )
        if tnow == self._tnow:
            return
        self._tnow = tnow
        dispatch(self._listeners, "on_advance", tnow)

    # ------------------------------------------------------------------
    # update protocol
    # ------------------------------------------------------------------
    def report(self, oid: int, x: float, y: float, vx: float, vy: float) -> Motion:
        """Process a position report for ``oid`` at the current time.

        A report from a known object first retracts the object's previous
        motion (a deletion update), then registers the new one (an insertion
        update), exactly as Section 5.1 prescribes.
        """
        from ..core.errors import ListenerFanoutError

        new_motion = Motion(oid, self._tnow, x, y, vx, vy)
        old_motion = self._motions.get(oid)
        # The delete+insert protocol must run to completion even if a
        # listener fails half-way: otherwise the table and the structures
        # that *did* process the delete would disagree about the object.
        failures = []
        if old_motion is not None:
            delete = DeleteUpdate(self._tnow, old_motion)
            try:
                dispatch(self._listeners, "on_delete", delete)
            except ListenerFanoutError as exc:
                failures.extend(exc.failures)
        insert = InsertUpdate(self._tnow, new_motion)
        self._motions[oid] = new_motion
        try:
            dispatch(self._listeners, "on_insert", insert)
        except ListenerFanoutError as exc:
            failures.extend(exc.failures)
        if failures:
            raise ListenerFanoutError(
                f"{len(failures)} listener failure(s) while reporting object {oid}",
                failures=failures,
            )
        return new_motion

    def report_batch(
        self, reports: Sequence[Tuple[int, float, float, float, float]]
    ) -> List[Motion]:
        """Process a wave of position reports in batched listener dispatches.

        ``reports`` is a sequence of ``(oid, x, y, vx, vy)`` tuples, all
        effective at the current time.  Listeners receive the wave through
        ``on_report_batch`` (one dispatch per wave instead of two per
        report); an oid reported more than once splits the input into
        consecutive waves so every wave retracts at most one motion per
        object, preserving the sequential delete+insert semantics exactly.
        """
        from ..core.errors import ListenerFanoutError

        results: List[Motion] = []
        failures = []
        wave: List[ReportPair] = []
        seen_in_wave = set()

        def flush() -> None:
            if not wave:
                return
            pairs = list(wave)
            wave.clear()
            seen_in_wave.clear()
            tm.INGEST_WAVES.inc()
            tm.INGEST_WAVE_SIZE.observe(len(pairs))
            try:
                dispatch(self._listeners, "on_report_batch", pairs)
            except ListenerFanoutError as exc:
                failures.extend(exc.failures)

        for oid, x, y, vx, vy in reports:
            if oid in seen_in_wave:
                tm.INGEST_WAVE_SPLITS.inc()
                flush()
            new_motion = Motion(oid, self._tnow, x, y, vx, vy)
            old_motion = self._motions.get(oid)
            delete = (
                DeleteUpdate(self._tnow, old_motion) if old_motion is not None else None
            )
            self._motions[oid] = new_motion
            wave.append((delete, InsertUpdate(self._tnow, new_motion)))
            seen_in_wave.add(oid)
            results.append(new_motion)
        flush()
        if failures:
            raise ListenerFanoutError(
                f"{len(failures)} listener failure(s) while reporting a batch "
                f"of {len(results)} object(s)",
                failures=failures,
            )
        return results

    def retire(self, oid: int) -> None:
        """Remove ``oid`` permanently (e.g. a vehicle leaving the region)."""
        motion = self._motions.pop(oid, None)
        if motion is None:
            raise QueryError(f"cannot retire unknown object {oid}")
        delete = DeleteUpdate(self._tnow, motion)
        dispatch(self._listeners, "on_delete", delete)

    def restore(self, motions, tnow: int) -> None:
        """Restore a snapshot: set registry and clock WITHOUT notifications.

        Only :mod:`repro.storage.snapshot` should call this — listeners must
        be restored through their own state, not by replaying updates.
        """
        if self._motions:
            raise QueryError("restore() requires an empty table")
        for motion in motions:
            self._motions[motion.oid] = motion
        self._tnow = tnow

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._motions)

    def __contains__(self, oid: int) -> bool:
        return oid in self._motions

    def motion_of(self, oid: int) -> Optional[Motion]:
        return self._motions.get(oid)

    def motions(self) -> Iterator[Motion]:
        return iter(self._motions.values())

    def positions_at(self, t: float):
        """Yield ``(oid, x, y)`` for every live object at time ``t``."""
        for motion in self._motions.values():
            x, y = motion.position_at(t)
            yield (motion.oid, x, y)
