"""Moving-object substrate: linear motion, update protocol, object table."""
