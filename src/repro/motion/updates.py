"""Location-update protocol (Section 5.1 of the paper).

Objects communicate with the server through two update kinds:

* an **insertion update** ``(t_now, x, y, vx, vy)`` registers a movement that
  starts at ``(x, y)`` with the given velocity at time ``t_now``;
* a **deletion update** ``(t1, t_now, x1, y1, vx, vy)`` retracts, effective at
  ``t_now``, a movement previously registered at time ``t1``.

A position report from an already-known object therefore expands into a
deletion of its previous motion followed by an insertion of the new one.
Every maintained structure (density histograms, Chebyshev coefficients, the
TPR-tree) subscribes to the same stream through :class:`UpdateListener`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from ..core.errors import ListenerFanoutError
from .model import Motion

__all__ = [
    "InsertUpdate",
    "DeleteUpdate",
    "Update",
    "UpdateListener",
    "dispatch",
]


@dataclass(frozen=True)
class InsertUpdate:
    """Registers ``motion`` with the server at time ``tnow`` (= motion.t_ref)."""

    tnow: int
    motion: Motion


@dataclass(frozen=True)
class DeleteUpdate:
    """Retracts ``motion`` (registered at ``motion.t_ref``) effective at ``tnow``."""

    tnow: int
    motion: Motion


Update = Union[InsertUpdate, DeleteUpdate]


class UpdateListener:
    """Interface for structures maintained against the update stream.

    Subclasses override the hooks they care about; defaults are no-ops so a
    listener may observe only inserts, only deletes, or only clock advances.
    """

    def on_insert(self, update: InsertUpdate) -> None:  # noqa: B027 - optional hook
        """Called for each insertion update."""

    def on_delete(self, update: DeleteUpdate) -> None:  # noqa: B027 - optional hook
        """Called for each deletion update."""

    def on_advance(self, tnow: int) -> None:  # noqa: B027 - optional hook
        """Called when the server clock moves forward to ``tnow``."""


def dispatch(listeners: Iterable[UpdateListener], hook: str, payload) -> None:
    """Notify every listener, even if some of them fail.

    The maintained structures must never diverge from each other merely
    because one listener raised: every listener is invoked, failures are
    collected, and a single :class:`ListenerFanoutError` is raised at the
    end.  :class:`BaseException` subclasses (simulated crashes, Ctrl-C)
    propagate immediately — a dead process notifies nobody.
    """
    failures = []
    for listener in listeners:
        try:
            getattr(listener, hook)(payload)
        except Exception as exc:  # noqa: BLE001 - collected and re-raised below
            failures.append((listener, exc))
    if failures:
        names = ", ".join(
            f"{type(listener).__name__}: {exc}" for listener, exc in failures
        )
        raise ListenerFanoutError(
            f"{len(failures)} listener(s) failed during {hook} ({names})",
            failures=failures,
        )
