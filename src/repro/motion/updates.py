"""Location-update protocol (Section 5.1 of the paper).

Objects communicate with the server through two update kinds:

* an **insertion update** ``(t_now, x, y, vx, vy)`` registers a movement that
  starts at ``(x, y)`` with the given velocity at time ``t_now``;
* a **deletion update** ``(t1, t_now, x1, y1, vx, vy)`` retracts, effective at
  ``t_now``, a movement previously registered at time ``t1``.

A position report from an already-known object therefore expands into a
deletion of its previous motion followed by an insertion of the new one.
Every maintained structure (density histograms, Chebyshev coefficients, the
TPR-tree) subscribes to the same stream through :class:`UpdateListener`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple, Union

from ..core.errors import ListenerFanoutError
from .model import Motion

__all__ = [
    "InsertUpdate",
    "DeleteUpdate",
    "Update",
    "ReportPair",
    "UpdateListener",
    "dispatch",
]


@dataclass(frozen=True)
class InsertUpdate:
    """Registers ``motion`` with the server at time ``tnow`` (= motion.t_ref)."""

    tnow: int
    motion: Motion


@dataclass(frozen=True)
class DeleteUpdate:
    """Retracts ``motion`` (registered at ``motion.t_ref``) effective at ``tnow``."""

    tnow: int
    motion: Motion


Update = Union[InsertUpdate, DeleteUpdate]

# One report of a wave: the retraction of the object's previous motion (or
# ``None`` for a first report) paired with the insertion of the new one.
ReportPair = Tuple[Optional[DeleteUpdate], InsertUpdate]


class UpdateListener:
    """Interface for structures maintained against the update stream.

    Subclasses override the hooks they care about; defaults are no-ops so a
    listener may observe only inserts, only deletes, or only clock advances.

    The ``*_batch`` hooks let a listener process a whole report wave at
    once (one numpy pass instead of N Python dispatches); their defaults
    fall back to the per-object hooks, so a listener that never heard of
    batching still sees every update exactly once, in order.
    """

    def on_insert(self, update: InsertUpdate) -> None:  # noqa: B027 - optional hook
        """Called for each insertion update."""

    def on_delete(self, update: DeleteUpdate) -> None:  # noqa: B027 - optional hook
        """Called for each deletion update."""

    def on_advance(self, tnow: int) -> None:  # noqa: B027 - optional hook
        """Called when the server clock moves forward to ``tnow``."""

    def on_insert_batch(self, updates: Sequence[InsertUpdate]) -> None:
        """Called with a wave of insertions; default is the per-object loop."""
        for update in updates:
            self.on_insert(update)

    def on_delete_batch(self, updates: Sequence[DeleteUpdate]) -> None:
        """Called with a wave of deletions; default is the per-object loop."""
        for update in updates:
            self.on_delete(update)

    def on_report_batch(self, pairs: Sequence[ReportPair]) -> None:
        """Called with a whole report wave (each oid at most once per wave).

        The default retracts every superseded motion, then registers every
        new one — a wave-atomic rendering of Section 5.1's delete+insert
        protocol.  Listeners whose state is order-sensitive at float
        precision (the PA coefficients) override this to keep the exact
        per-report interleaving.
        """
        deletes = [d for d, _ in pairs if d is not None]
        if deletes:
            self.on_delete_batch(deletes)
        self.on_insert_batch([i for _, i in pairs])


def dispatch(listeners: Iterable[UpdateListener], hook: str, payload) -> None:
    """Notify every listener, even if some of them fail.

    The maintained structures must never diverge from each other merely
    because one listener raised: every listener is invoked, failures are
    collected, and a single :class:`ListenerFanoutError` is raised at the
    end.  :class:`BaseException` subclasses (simulated crashes, Ctrl-C)
    propagate immediately — a dead process notifies nobody.
    """
    failures = []
    for listener in listeners:
        try:
            getattr(listener, hook)(payload)
        except Exception as exc:  # noqa: BLE001 - collected and re-raised below
            failures.append((listener, exc))
    if failures:
        names = ", ".join(
            f"{type(listener).__name__}: {exc}" for listener, exc in failures
        )
        raise ListenerFanoutError(
            f"{len(failures)} listener(s) failed during {hook} ({names})",
            failures=failures,
        )
