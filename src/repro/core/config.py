"""System configuration with the paper's (reconstructed) defaults.

Table 1 of the paper fixes the experimental setup; the OCR of the paper
dropped most digits, so DESIGN.md documents how each default below was
reconstructed from the surrounding prose.  In short: a 1000 x 1000 mile
domain, maximum update interval U = 60 and prediction window W = 60 (so the
horizon H = U + W = 120), neighborhood edges l of 30 or 60 miles, density
histograms of m^2 = 40000 cells, 400 degree-5 polynomials, an m_d = 512
evaluation grid, 4 KB pages, 10 ms per random I/O and a buffer of 10 % of
the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.pages import PageModel
from .errors import InvalidParameterError
from .geometry import Rect

__all__ = ["SystemConfig", "DEFAULT_DOMAIN"]

DEFAULT_DOMAIN = Rect(0.0, 0.0, 1000.0, 1000.0)


@dataclass(frozen=True)
class SystemConfig:
    """Everything a :class:`~repro.core.system.PDRServer` needs to be built."""

    domain: Rect = DEFAULT_DOMAIN
    max_update_interval: int = 60  # U
    prediction_window: int = 60  # W
    l: float = 30.0  # neighborhood edge the PA method is built for
    histogram_cells: int = 200  # m  (m x m counters per timestamp)
    polynomial_grid: int = 20  # g  (g x g polynomials per timestamp)
    polynomial_degree: int = 5  # k
    evaluation_grid: int = 512  # m_d
    page_model: PageModel = field(default_factory=PageModel)

    def __post_init__(self) -> None:
        if self.max_update_interval < 1:
            raise InvalidParameterError("U must be >= 1")
        if self.prediction_window < 0:
            raise InvalidParameterError("W must be >= 0")
        if self.l <= 0:
            raise InvalidParameterError("l must be positive")
        if self.histogram_cells < 1 or self.polynomial_grid < 1:
            raise InvalidParameterError("grid resolutions must be >= 1")
        cell_edge = self.domain.width / self.histogram_cells
        if cell_edge > self.l / 2.0:
            raise InvalidParameterError(
                f"histogram cell edge {cell_edge} exceeds l/2 = {self.l / 2}; "
                "the filter step requires l_c <= l/2 (Algorithm 1)"
            )

    @property
    def horizon(self) -> int:
        """Time horizon H = U + W (Section 4)."""
        return self.max_update_interval + self.prediction_window

    @property
    def histogram_cell_edge(self) -> float:
        return self.domain.width / self.histogram_cells
