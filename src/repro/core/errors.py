"""Exception hierarchy for the PDR reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subclasses are
grouped by the subsystem that raises them; the intent is that a failed
precondition produces a message naming the offending parameter and its
observed value.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class InvalidParameterError(ReproError, ValueError):
    """A query or configuration parameter violates a documented precondition."""


class GeometryError(ReproError, ValueError):
    """A geometric object (rectangle, region) is malformed."""


class QueryError(ReproError):
    """A query cannot be evaluated against the current system state."""


class HorizonError(QueryError):
    """The query timestamp falls outside the maintained time horizon."""


class IndexError_(ReproError):
    """The spatio-temporal index detected an inconsistency.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class StorageError(ReproError):
    """The simulated storage layer was used incorrectly."""


class DatagenError(ReproError):
    """The workload generator received inconsistent parameters."""


class DeadlineExceededError(QueryError):
    """A query evaluation ran out of its per-query time budget.

    Raised cooperatively by the evaluation methods at their checkpoints
    (per candidate cell in FR, at entry in PA); the degradation ladder in
    :mod:`repro.reliability.deadline` catches it and falls back to a
    cheaper method.
    """


class TransientFaultError(ReproError):
    """A fault that is expected to clear on retry (e.g. a failed I/O).

    The retry-with-backoff wrapper treats this class — and nothing else —
    as retryable; anything else propagates immediately.
    """


class TransientIOError(TransientFaultError, StorageError):
    """A transient failure in the (simulated) storage layer."""


class ListenerFanoutError(ReproError):
    """One or more update listeners failed while processing an update.

    Every listener is still notified before this is raised, so the
    maintained structures cannot diverge from each other merely because
    one of them threw.  ``failures`` holds ``(listener, exception)`` pairs.
    """

    def __init__(self, message: str, failures=()):
        super().__init__(message)
        self.failures = list(failures)


class RecoveryError(StorageError):
    """Checkpoint/replay recovery could not reconstruct a server."""


class WALWriteError(StorageError):
    """A write/flush/fsync on the update log failed; the descriptor is poisoned.

    After a failed fsync the kernel may have dropped the dirty pages
    whose writeback failed, so a *retried* fsync on the same descriptor
    can report success without the data being durable (the PostgreSQL
    "fsyncgate" bug class).  The update log therefore never touches the
    failed descriptor again: the segment is poisoned, the record was
    never acknowledged, and recovery means opening a *fresh* segment
    (:meth:`~repro.reliability.recovery.ReliabilityManager.reopen_wal`).
    """


class ReadOnlyError(StorageError):
    """The server is in read-only degraded mode; writes are refused.

    Entered when the disk budget crosses its hard watermark or the WAL
    descriptor was poisoned by a write/fsync failure.  Queries keep
    being served; reports/retires/advances raise this until a resource
    probe finds the disk recovered.  ``retry_after`` (seconds) hints
    when the client should try again — carried verbatim on the
    ``read_only`` wire error frame.
    """

    def __init__(self, message: str, retry_after: float = 0.0, reason: str = ""):
        super().__init__(message)
        self.retry_after = float(retry_after)
        self.reason = reason


class StateDirLockedError(StorageError):
    """Another OS process holds the state directory's exclusive lock.

    Two server processes appending to one WAL would interleave records
    and fork the LSN chain, so the second opener is refused outright
    (CLI exit code 11) instead of waiting: a supervisor that sees this
    must not retry into the same directory while the holder lives.
    ``holder`` carries whatever the lock file advertised about the
    owning process (at least its pid, when readable).
    """

    def __init__(self, message: str, holder=None):
        super().__init__(message)
        self.holder = dict(holder) if holder else {}


class IntegrityError(StorageError):
    """Checksummed state failed verification.

    Raised (or reported) when a WAL record frame, a checkpoint artifact
    or a manifest digest does not match its recorded checksum — i.e. the
    bytes on disk are not the bytes that were written, as opposed to a
    protocol-level recovery problem.
    """


class CorruptionError(IntegrityError, RecoveryError):
    """A durable file holds damaged bytes that replay must not trust.

    Both an integrity failure (a checksum caught the damage) and a
    recovery failure (the log cannot be replayed past it).  ``path``
    names the damaged file and ``line`` the first bad record, so the
    scrubber and the anti-entropy repair know exactly what to quarantine.
    """

    def __init__(self, message: str, path=None, line=None):
        super().__init__(message)
        self.path = path
        self.line = line


class RepairError(IntegrityError):
    """Anti-entropy repair could not restore a contiguous acknowledged log.

    The damaged LSN range is not covered by any surviving segment, any
    loadable checkpoint, or the repair source's retained history — i.e.
    completing the repair would silently lose acknowledged writes, which
    is the one thing the durability layer promises never to do.
    """


class ReplicationError(ReproError):
    """Base class for the replication / serving-tier failures."""


class NotPrimaryError(ReplicationError):
    """A write reached a server that is not the acting primary.

    Raised by ``report`` / ``retire`` / ``advance_to`` on replicas and on
    fenced ex-primaries: after a failover the old primary's epoch is
    stale, and accepting its writes would fork the log.
    """


class StalenessExceededError(ReplicationError, QueryError):
    """No backend could serve the read within the staleness bound.

    Every replica lags the primary by more than the configured bound and
    the primary itself is unavailable; the caller should retry after the
    replicas catch up (or a failover promotes one).
    """


class FailoverError(ReplicationError):
    """No replica could be promoted to primary.

    Every candidate either failed to catch up to the durable WAL or
    failed the post-catch-up structural audit.
    """


class ServingError(ReplicationError):
    """Base class for network front-door (TCP serving / client) failures."""


class ProtocolError(ServingError):
    """A wire frame violated the length-prefixed JSON protocol.

    Raised on oversized frames, truncated frames, non-JSON payloads and
    unknown operations.  ``code`` is the stable wire error code the
    server reports (``bad_frame``, ``frame_too_large``, ``bad_request``).
    """

    def __init__(self, message: str, code: str = "bad_frame"):
        super().__init__(message)
        self.code = code


class DrainingError(ServingError):
    """The server is draining and no longer accepts new work.

    ``retry_after`` (seconds) tells the client when to try another
    endpoint — a draining server finishes its in-flight requests but
    every new frame is politely refused.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class ClientError(ServingError):
    """Base class for resilient-client failures surfaced to the caller."""


class RetriesExhaustedError(ClientError):
    """The client spent its whole retry budget without an answer.

    ``last_error`` preserves the final failure (connection error, shed,
    staleness, ...) so callers can distinguish overload from outage.
    """

    def __init__(self, message: str, last_error=None):
        super().__init__(message)
        self.last_error = last_error


class AdmissionRejectedError(QueryError):
    """The admission controller shed this query to protect the group.

    ``retry_after`` (seconds on the server clock) tells the client when
    the token bucket will have refilled enough to admit the cheapest
    acceptable evaluation of this query.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class AuditError(RecoveryError):
    """The post-recovery structural invariant audit found violations."""

    def __init__(self, message: str, violations=()):
        super().__init__(message)
        self.violations = list(violations)
