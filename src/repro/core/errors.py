"""Exception hierarchy for the PDR reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subclasses are
grouped by the subsystem that raises them; the intent is that a failed
precondition produces a message naming the offending parameter and its
observed value.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class InvalidParameterError(ReproError, ValueError):
    """A query or configuration parameter violates a documented precondition."""


class GeometryError(ReproError, ValueError):
    """A geometric object (rectangle, region) is malformed."""


class QueryError(ReproError):
    """A query cannot be evaluated against the current system state."""


class HorizonError(QueryError):
    """The query timestamp falls outside the maintained time horizon."""


class IndexError_(ReproError):
    """The spatio-temporal index detected an inconsistency.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class StorageError(ReproError):
    """The simulated storage layer was used incorrectly."""


class DatagenError(ReproError):
    """The workload generator received inconsistent parameters."""
