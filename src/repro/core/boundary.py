"""Boundary extraction: from rectangle unions to rectilinear polygons.

PDR answers are unions of many small rectangles — fine for area algebra,
clumsy for consumers (map overlays, geofencing APIs) that want *polygons*.
This module converts a :class:`~repro.core.regions.RegionSet` into its
boundary rings:

1. rasterise the union onto the compressed coordinate grid;
2. emit one counter-clockwise unit edge per filled-cell side whose neighbour
   is empty (interior edges cancel by construction);
3. chain edges into closed rings, merging collinear runs.

Outer boundaries come out counter-clockwise, holes clockwise (by the signed
area convention), which is exactly GeoJSON's winding rule —
:func:`regions_to_geojson` packages the rings accordingly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .errors import GeometryError
from .regions import RegionSet, _edges

__all__ = ["boundary_rings", "ring_signed_area", "regions_to_geojson"]

Point = Tuple[float, float]
Ring = List[Point]


def ring_signed_area(ring: Ring) -> float:
    """Shoelace signed area; positive for counter-clockwise rings."""
    if len(ring) < 3:
        return 0.0
    total = 0.0
    for (x1, y1), (x2, y2) in zip(ring, ring[1:] + ring[:1]):
        total += x1 * y2 - x2 * y1
    return total / 2.0


def _merge_collinear(ring: Ring) -> Ring:
    """Drop intermediate vertices of axis-parallel runs."""
    if len(ring) <= 4:
        return ring
    out: Ring = []
    n = len(ring)
    for i in range(n):
        prev = ring[(i - 1) % n]
        cur = ring[i]
        nxt = ring[(i + 1) % n]
        same_x = prev[0] == cur[0] == nxt[0]
        same_y = prev[1] == cur[1] == nxt[1]
        if not (same_x or same_y):
            out.append(cur)
    return out


def boundary_rings(regions: RegionSet) -> List[Ring]:
    """Closed boundary rings of the union of ``regions``.

    Each ring is a list of ``(x, y)`` vertices without the repeated closing
    point.  Outer rings wind counter-clockwise, holes clockwise.
    """
    if regions.is_empty():
        return []
    xs, ys = _edges(regions.rects)
    mask = RegionSet._rasterize(regions.rects, xs, ys)
    nx, ny = mask.shape

    # Directed boundary edges, CCW around filled cells: key = start vertex
    # (as grid indices), value = end vertex.  Interior edges never appear
    # because each cell side is emitted only when the neighbour is empty.
    padded = np.zeros((nx + 2, ny + 2), dtype=bool)
    padded[1:-1, 1:-1] = mask
    nxt: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}

    def emit(a: Tuple[int, int], b: Tuple[int, int]) -> None:
        nxt.setdefault(a, []).append(b)

    filled = np.argwhere(mask)
    core = padded[1:-1, 1:-1]
    south_open = ~padded[1:-1, 0:-2] & core
    north_open = ~padded[1:-1, 2:] & core
    west_open = ~padded[0:-2, 1:-1] & core
    east_open = ~padded[2:, 1:-1] & core
    for i, j in filled:
        i, j = int(i), int(j)
        if south_open[i, j]:
            emit((i, j), (i + 1, j))  # bottom edge, left->right
        if east_open[i, j]:
            emit((i + 1, j), (i + 1, j + 1))  # right edge, up
        if north_open[i, j]:
            emit((i + 1, j + 1), (i, j + 1))  # top edge, right->left
        if west_open[i, j]:
            emit((i, j + 1), (i, j))  # left edge, down

    rings: List[Ring] = []
    while nxt:
        start = next(iter(nxt))
        ring_idx: List[Tuple[int, int]] = [start]
        current = nxt[start].pop()
        if not nxt[start]:
            del nxt[start]
        while current != start:
            ring_idx.append(current)
            outgoing = nxt.get(current)
            if not outgoing:
                raise GeometryError("boundary tracing broke: open chain")
            if len(outgoing) == 1:
                step = outgoing.pop()
                del nxt[current]
            else:
                # A pinch vertex (two rings touching at a corner): prefer the
                # edge that turns most sharply left to keep rings simple.
                prev = ring_idx[-2]
                din = (current[0] - prev[0], current[1] - prev[1])
                left = (-din[1], din[0])
                step = max(
                    outgoing,
                    key=lambda cand: (cand[0] - current[0]) * left[0]
                    + (cand[1] - current[1]) * left[1],
                )
                outgoing.remove(step)
            current = step
        ring = [(float(xs[i]), float(ys[j])) for (i, j) in ring_idx]
        rings.append(_merge_collinear(ring))
    return rings


def regions_to_geojson(regions: RegionSet) -> dict:
    """A GeoJSON ``MultiPolygon`` geometry for the union of ``regions``.

    Outer rings (CCW, positive signed area) become polygons; each hole (CW)
    is attached to the outer ring that contains its first vertex.
    """
    rings = boundary_rings(regions)
    outers: List[Ring] = []
    holes: List[Ring] = []
    for ring in rings:
        (outers if ring_signed_area(ring) > 0 else holes).append(ring)
    polygons: List[List[Ring]] = [[outer] for outer in outers]

    def contains(outer: Ring, point: Point) -> bool:
        # Standard ray casting; boundary cases do not matter for hole
        # assignment because holes are strictly inside their outer ring.
        x, y = point
        inside = False
        n = len(outer)
        for i in range(n):
            x1, y1 = outer[i]
            x2, y2 = outer[(i + 1) % n]
            if (y1 > y) != (y2 > y):
                t = (y - y1) / (y2 - y1)
                if x < x1 + t * (x2 - x1):
                    inside = not inside
        return inside

    for hole in holes:
        probe = hole[0]
        # Nudge the probe into the hole's interior (vertices lie on the
        # outer ring's grid): use the hole's centroid instead.
        cx = sum(p[0] for p in hole) / len(hole)
        cy = sum(p[1] for p in hole) / len(hole)
        probe = (cx, cy)
        for poly in polygons:
            if contains(poly[0], probe):
                poly.append(hole)
                break
    closed = [
        [[list(pt) for pt in ring] + [list(ring[0])] for ring in poly]
        for poly in polygons
    ]
    return {"type": "MultiPolygon", "coordinates": closed}
