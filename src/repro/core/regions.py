"""Region algebra over unions of half-open rectangles.

A :class:`RegionSet` represents a (possibly overlapping, unnormalised) union
of :class:`~repro.core.geometry.Rect` values.  The PDR methods all report
their answers as ``RegionSet``s, and the accuracy metrics of the paper
(Section 7.2) require *exact* areas of unions, intersections and differences
of two such sets.

Areas are computed by coordinate compression: collect every distinct x and y
edge coordinate of both operands, rasterise each operand onto the resulting
(non-uniform) grid as a boolean occupancy matrix, and integrate cell areas
under the requested boolean combination.  This is exact for half-open
rectangles because region membership is constant within each grid cell.  The
rasterisation is chunked along the x axis so that the transient boolean
matrices stay within a fixed memory budget regardless of input size.

Storage is columnar: a set holds one ``(N, 4)`` float array of bounds and
materialises :class:`Rect` objects only when a caller actually iterates.
Query evaluators that emit their rectangles pairwise-disjoint by
construction (FR's sweep segments, PA's branch-and-bound tiling) pass
``disjoint=True`` so :meth:`area` reduces to a single vector sum instead of
a rasterisation — the answer-area accounting on the serving path is O(N).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .errors import GeometryError
from .geometry import Rect

__all__ = ["RegionSet"]

# Upper bound on the number of boolean cells materialised per chunk during
# area computation.  48M cells * 2 operands * 1 byte ~ 100 MB worst case.
_MAX_CELLS_PER_CHUNK = 48_000_000

_EMPTY_BOUNDS = np.empty((0, 4), dtype=float)


def _edges_of(bounds: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct sorted x and y edge coordinates of a bounds array."""
    if bounds.shape[0] == 0:
        return np.empty(0), np.empty(0)
    xs = np.unique(bounds[:, (0, 2)])
    ys = np.unique(bounds[:, (1, 3)])
    return xs, ys


def _edges(rects: Sequence[Rect]) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct sorted x and y edge coordinates of ``rects``."""
    return _edges_of(_bounds_from_rects(rects))


def _bounds_from_rects(rects: Iterable[Rect]) -> np.ndarray:
    rows = [(r.x1, r.y1, r.x2, r.y2) for r in rects]
    if not rows:
        return _EMPTY_BOUNDS
    return np.asarray(rows, dtype=float)


def _drop_empty(bounds: np.ndarray) -> np.ndarray:
    if bounds.shape[0] == 0:
        return _EMPTY_BOUNDS
    keep = (bounds[:, 0] < bounds[:, 2]) & (bounds[:, 1] < bounds[:, 3])
    if keep.all():
        return bounds
    return bounds[keep]


class RegionSet:
    """An immutable union of half-open rectangles.

    The constructor drops empty rectangles but performs no other
    normalisation; rectangles may overlap.  All *measures* (area,
    intersection area, ...) treat the set as the union of its members.

    ``disjoint=True`` asserts that the member rectangles are pairwise
    disjoint point sets — the caller's responsibility — unlocking the O(N)
    :meth:`area` fast path.  Every measure involving a *second* operand
    still rasterises.
    """

    __slots__ = ("_bounds", "_rect_cache", "_disjoint")

    def __init__(self, rects: Iterable[Rect] = (), disjoint: bool = False) -> None:
        self._bounds = _drop_empty(_bounds_from_rects(rects))
        self._rect_cache: Optional[Tuple[Rect, ...]] = None
        self._disjoint = disjoint

    @classmethod
    def from_bounds(cls, bounds: np.ndarray, disjoint: bool = False) -> "RegionSet":
        """Build a set straight from an ``(N, 4)`` bounds array (no Rects).

        Empty rows are dropped, matching the constructor.  The array is
        copied into float64 layout unless it already complies.
        """
        out = cls.__new__(cls)
        arr = np.ascontiguousarray(np.asarray(bounds, dtype=float))
        if arr.ndim != 2 or arr.shape[1] != 4:
            raise GeometryError(f"bounds must be (N, 4), got shape {arr.shape}")
        if arr.shape[0] and bool((arr[:, 0] > arr[:, 2]).any() or (arr[:, 1] > arr[:, 3]).any()):
            raise GeometryError("inverted rectangle bounds in array")
        out._bounds = _drop_empty(arr)
        out._rect_cache = None
        out._disjoint = disjoint
        return out

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> np.ndarray:
        """The ``(N, 4)`` float array of ``(x1, y1, x2, y2)`` rows (read-only)."""
        return self._bounds

    @property
    def rects(self) -> Tuple[Rect, ...]:
        if self._rect_cache is None:
            self._rect_cache = tuple(
                Rect(row[0], row[1], row[2], row[3]) for row in self._bounds
            )
        return self._rect_cache

    def __len__(self) -> int:
        return self._bounds.shape[0]

    def __iter__(self) -> Iterator[Rect]:
        return iter(self.rects)

    def __bool__(self) -> bool:
        return self._bounds.shape[0] > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegionSet({len(self)} rects, area={self.area():.6g})"

    def is_empty(self) -> bool:
        return self._bounds.shape[0] == 0

    # ------------------------------------------------------------------
    # constructions
    # ------------------------------------------------------------------
    def union(self, other: "RegionSet") -> "RegionSet":
        """Set union (concatenation; measures already treat members as a union)."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return RegionSet.from_bounds(
            np.concatenate([self._bounds, other._bounds], axis=0)
        )

    def translated(self, dx: float, dy: float) -> "RegionSet":
        if self.is_empty():
            return self
        return RegionSet.from_bounds(
            self._bounds + np.array([dx, dy, dx, dy]), disjoint=self._disjoint
        )

    def clipped_to(self, box: Rect) -> "RegionSet":
        if self.is_empty():
            return self
        b = self._bounds
        clipped = np.empty_like(b)
        clipped[:, 0] = np.maximum(b[:, 0], box.x1)
        clipped[:, 1] = np.maximum(b[:, 1], box.y1)
        clipped[:, 2] = np.minimum(b[:, 2], box.x2)
        clipped[:, 3] = np.minimum(b[:, 3], box.y2)
        keep = (clipped[:, 0] < clipped[:, 2]) & (clipped[:, 1] < clipped[:, 3])
        return RegionSet.from_bounds(clipped[keep], disjoint=self._disjoint)

    def bounding_box(self) -> Optional[Rect]:
        if self.is_empty():
            return None
        b = self._bounds
        return Rect(
            float(b[:, 0].min()),
            float(b[:, 1].min()),
            float(b[:, 2].max()),
            float(b[:, 3].max()),
        )

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        """Half-open membership in the union."""
        b = self._bounds
        if b.shape[0] == 0:
            return False
        return bool(
            (
                (b[:, 0] <= x)
                & (x < b[:, 2])
                & (b[:, 1] <= y)
                & (y < b[:, 3])
            ).any()
        )

    def intersects_rect(self, rect: Rect) -> bool:
        b = self._bounds
        if b.shape[0] == 0 or rect.is_empty():
            return False
        return bool(
            (
                (b[:, 0] < rect.x2)
                & (rect.x1 < b[:, 2])
                & (b[:, 1] < rect.y2)
                & (rect.y1 < b[:, 3])
            ).any()
        )

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------
    def area(self) -> float:
        """Exact area of the union of member rectangles.

        Pairwise-disjoint sets (``disjoint=True`` at construction) sum the
        member areas directly; overlapping sets rasterise.
        """
        if self._disjoint:
            b = self._bounds
            if b.shape[0] == 0:
                return 0.0
            return float(((b[:, 2] - b[:, 0]) * (b[:, 3] - b[:, 1])).sum())
        return self._combine_area(self, RegionSet(), "a")

    def intersection_area(self, other: "RegionSet") -> float:
        return self._combine_area(self, other, "and")

    def union_area(self, other: "RegionSet") -> float:
        return self._combine_area(self, other, "or")

    def difference_area(self, other: "RegionSet") -> float:
        """Area of ``self \\ other``."""
        return self._combine_area(self, other, "diff")

    def symmetric_difference_area(self, other: "RegionSet") -> float:
        return self._combine_area(self, other, "xor")

    def equals_region(self, other: "RegionSet", tol: float = 1e-9) -> bool:
        """True when the two unions cover the same point set up to area ``tol``."""
        return self.symmetric_difference_area(other) <= tol

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def boundary_rings(self):
        """Boundary polygons of the union; see :mod:`repro.core.boundary`."""
        from .boundary import boundary_rings

        return boundary_rings(self)

    def to_geojson(self) -> dict:
        """A GeoJSON MultiPolygon for the union; see :mod:`repro.core.boundary`."""
        from .boundary import regions_to_geojson

        return regions_to_geojson(self)

    # ------------------------------------------------------------------
    # normalisation
    # ------------------------------------------------------------------
    def normalized(self) -> "RegionSet":
        """An equivalent ``RegionSet`` of disjoint rectangles.

        Rasterises onto the compressed grid and re-extracts maximal horizontal
        runs merged vertically (a simple greedy rectangle cover).  Useful for
        rendering and for deterministic comparisons; measures never need it.
        """
        if self.is_empty():
            return RegionSet()
        xs, ys = _edges_of(self._bounds)
        mask = self._raster_bounds(self._bounds, xs, ys)
        out: List[Rect] = []
        # Greedy: grow maximal rectangles row-by-row.
        live: dict = {}  # (ix1, ix2) -> iy_start for runs still growing
        for iy in range(mask.shape[1] + 1):
            row_runs = set()
            if iy < mask.shape[1]:
                row = mask[:, iy]
                ix = 0
                n = row.shape[0]
                while ix < n:
                    if row[ix]:
                        start = ix
                        while ix < n and row[ix]:
                            ix += 1
                        row_runs.add((start, ix))
                    else:
                        ix += 1
            ended = [k for k in live if k not in row_runs]
            for k in ended:
                iy0 = live.pop(k)
                out.append(Rect(xs[k[0]], ys[iy0], xs[k[1]], ys[iy]))
            for k in row_runs:
                if k not in live:
                    live[k] = iy
        return RegionSet(out, disjoint=True)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _raster_bounds(
        bounds: np.ndarray, xs: np.ndarray, ys: np.ndarray
    ) -> np.ndarray:
        """Boolean occupancy of ``bounds`` over the compressed grid (xs, ys).

        Every rectangle's index span is scattered into a 2-D difference
        array in one ``np.add.at`` pass; the double cumulative sum then
        yields the per-cell cover count, whose nonzero cells are exactly
        the cells the old per-rectangle slice-assignment loop set.
        """
        nx, ny = max(len(xs) - 1, 0), max(len(ys) - 1, 0)
        if nx == 0 or ny == 0:
            return np.zeros((nx, ny), dtype=bool)
        if bounds.shape[0] == 0:
            return np.zeros((nx, ny), dtype=bool)
        ix1 = np.searchsorted(xs, bounds[:, 0])
        ix2 = np.searchsorted(xs, bounds[:, 2])
        iy1 = np.searchsorted(ys, bounds[:, 1])
        iy2 = np.searchsorted(ys, bounds[:, 3])
        acc = np.zeros((nx + 1, ny + 1), dtype=np.int32)
        np.add.at(acc, (ix1, iy1), 1)
        np.add.at(acc, (ix2, iy1), -1)
        np.add.at(acc, (ix1, iy2), -1)
        np.add.at(acc, (ix2, iy2), 1)
        counts = acc.cumsum(axis=0).cumsum(axis=1)
        return counts[:nx, :ny] > 0

    @staticmethod
    def _rasterize(rects: Sequence[Rect], xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Boolean occupancy of ``rects`` over the compressed grid (xs, ys)."""
        return RegionSet._raster_bounds(_bounds_from_rects(rects), xs, ys)

    @staticmethod
    def _combine_area(a: "RegionSet", b: "RegionSet", op: str) -> float:
        """Area of a boolean combination of two rectangle unions."""
        bounds_a = a._bounds
        bounds_b = b._bounds
        if bounds_a.shape[0] == 0 and bounds_b.shape[0] == 0:
            return 0.0
        if bounds_a.shape[0] and bounds_b.shape[0]:
            xs, ys = _edges_of(np.concatenate([bounds_a, bounds_b], axis=0))
        else:
            xs, ys = _edges_of(bounds_a if bounds_a.shape[0] else bounds_b)
        nx, ny = len(xs) - 1, len(ys) - 1
        if nx <= 0 or ny <= 0:
            return 0.0
        dy = np.diff(ys)
        total = 0.0
        # Chunk along x so the transient masks stay bounded.
        rows_per_chunk = max(1, _MAX_CELLS_PER_CHUNK // max(ny, 1))
        for x0 in range(0, nx, rows_per_chunk):
            x1 = min(nx, x0 + rows_per_chunk)
            sub_xs = xs[x0 : x1 + 1]
            lo, hi = sub_xs[0], sub_xs[-1]
            mask_a = RegionSet._clipped_raster_bounds(bounds_a, sub_xs, ys, lo, hi)
            if op == "a":
                combined = mask_a
            else:
                mask_b = RegionSet._clipped_raster_bounds(bounds_b, sub_xs, ys, lo, hi)
                if op == "and":
                    combined = mask_a & mask_b
                elif op == "or":
                    combined = mask_a | mask_b
                elif op == "diff":
                    combined = mask_a & ~mask_b
                elif op == "xor":
                    combined = mask_a ^ mask_b
                else:  # pragma: no cover - internal misuse
                    raise GeometryError(f"unknown boolean op {op!r}")
            dx = np.diff(sub_xs)
            total += float((dx[:, None] * dy[None, :])[combined].sum())
        return total

    @staticmethod
    def _clipped_raster_bounds(
        bounds: np.ndarray, xs: np.ndarray, ys: np.ndarray, lo: float, hi: float
    ) -> np.ndarray:
        """Rasterise bounds clipped to the x-range covered by ``xs``."""
        if bounds.shape[0] == 0:
            return np.zeros((len(xs) - 1, len(ys) - 1), dtype=bool)
        keep = (bounds[:, 0] < hi) & (bounds[:, 2] > lo)
        if not keep.any():
            return np.zeros((len(xs) - 1, len(ys) - 1), dtype=bool)
        sub = bounds[keep]
        clipped = sub.copy()
        clipped[:, 0] = np.maximum(sub[:, 0], lo)
        clipped[:, 2] = np.minimum(sub[:, 2], hi)
        return RegionSet._raster_bounds(clipped, xs, ys)

    @staticmethod
    def _clipped_raster(
        rects: Sequence[Rect], xs: np.ndarray, ys: np.ndarray
    ) -> np.ndarray:
        """Rasterise rects clipped to the x-range covered by ``xs``."""
        return RegionSet._clipped_raster_bounds(
            _bounds_from_rects(rects), xs, ys, float(xs[0]), float(xs[-1])
        )
