"""Region algebra over unions of half-open rectangles.

A :class:`RegionSet` represents a (possibly overlapping, unnormalised) union
of :class:`~repro.core.geometry.Rect` values.  The PDR methods all report
their answers as ``RegionSet``s, and the accuracy metrics of the paper
(Section 7.2) require *exact* areas of unions, intersections and differences
of two such sets.

Areas are computed by coordinate compression: collect every distinct x and y
edge coordinate of both operands, rasterise each operand onto the resulting
(non-uniform) grid as a boolean occupancy matrix, and integrate cell areas
under the requested boolean combination.  This is exact for half-open
rectangles because region membership is constant within each grid cell.  The
rasterisation is chunked along the x axis so that the transient boolean
matrices stay within a fixed memory budget regardless of input size.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .errors import GeometryError
from .geometry import Rect

__all__ = ["RegionSet"]

# Upper bound on the number of boolean cells materialised per chunk during
# area computation.  48M cells * 2 operands * 1 byte ~ 100 MB worst case.
_MAX_CELLS_PER_CHUNK = 48_000_000


def _edges(rects: Sequence[Rect]) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct sorted x and y edge coordinates of ``rects``."""
    if not rects:
        return np.empty(0), np.empty(0)
    xs = np.empty(2 * len(rects))
    ys = np.empty(2 * len(rects))
    for i, r in enumerate(rects):
        xs[2 * i] = r.x1
        xs[2 * i + 1] = r.x2
        ys[2 * i] = r.y1
        ys[2 * i + 1] = r.y2
    return np.unique(xs), np.unique(ys)


class RegionSet:
    """An immutable union of half-open rectangles.

    The constructor drops empty rectangles but performs no other
    normalisation; rectangles may overlap.  All *measures* (area,
    intersection area, ...) treat the set as the union of its members.
    """

    __slots__ = ("_rects",)

    def __init__(self, rects: Iterable[Rect] = ()) -> None:
        self._rects: Tuple[Rect, ...] = tuple(r for r in rects if not r.is_empty())

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    @property
    def rects(self) -> Tuple[Rect, ...]:
        return self._rects

    def __len__(self) -> int:
        return len(self._rects)

    def __iter__(self) -> Iterator[Rect]:
        return iter(self._rects)

    def __bool__(self) -> bool:
        return bool(self._rects)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegionSet({len(self._rects)} rects, area={self.area():.6g})"

    def is_empty(self) -> bool:
        return not self._rects

    # ------------------------------------------------------------------
    # constructions
    # ------------------------------------------------------------------
    def union(self, other: "RegionSet") -> "RegionSet":
        """Set union (concatenation; measures already treat members as a union)."""
        return RegionSet(self._rects + other._rects)

    def translated(self, dx: float, dy: float) -> "RegionSet":
        return RegionSet(r.translated(dx, dy) for r in self._rects)

    def clipped_to(self, box: Rect) -> "RegionSet":
        return RegionSet(r.intersection(box) for r in self._rects)

    def bounding_box(self) -> Optional[Rect]:
        if not self._rects:
            return None
        return Rect.bounding(self._rects)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        """Half-open membership in the union."""
        return any(r.contains_point(x, y) for r in self._rects)

    def intersects_rect(self, rect: Rect) -> bool:
        return any(r.intersects(rect) for r in self._rects)

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------
    def area(self) -> float:
        """Exact area of the union of member rectangles."""
        return self._combine_area(self, RegionSet(), "a")

    def intersection_area(self, other: "RegionSet") -> float:
        return self._combine_area(self, other, "and")

    def union_area(self, other: "RegionSet") -> float:
        return self._combine_area(self, other, "or")

    def difference_area(self, other: "RegionSet") -> float:
        """Area of ``self \\ other``."""
        return self._combine_area(self, other, "diff")

    def symmetric_difference_area(self, other: "RegionSet") -> float:
        return self._combine_area(self, other, "xor")

    def equals_region(self, other: "RegionSet", tol: float = 1e-9) -> bool:
        """True when the two unions cover the same point set up to area ``tol``."""
        return self.symmetric_difference_area(other) <= tol

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def boundary_rings(self):
        """Boundary polygons of the union; see :mod:`repro.core.boundary`."""
        from .boundary import boundary_rings

        return boundary_rings(self)

    def to_geojson(self) -> dict:
        """A GeoJSON MultiPolygon for the union; see :mod:`repro.core.boundary`."""
        from .boundary import regions_to_geojson

        return regions_to_geojson(self)

    # ------------------------------------------------------------------
    # normalisation
    # ------------------------------------------------------------------
    def normalized(self) -> "RegionSet":
        """An equivalent ``RegionSet`` of disjoint rectangles.

        Rasterises onto the compressed grid and re-extracts maximal horizontal
        runs merged vertically (a simple greedy rectangle cover).  Useful for
        rendering and for deterministic comparisons; measures never need it.
        """
        if not self._rects:
            return RegionSet()
        xs, ys = _edges(self._rects)
        mask = self._rasterize(self._rects, xs, ys)
        out: List[Rect] = []
        # Greedy: grow maximal rectangles row-by-row.
        live: dict = {}  # (ix1, ix2) -> iy_start for runs still growing
        for iy in range(mask.shape[1] + 1):
            row_runs = set()
            if iy < mask.shape[1]:
                row = mask[:, iy]
                ix = 0
                n = row.shape[0]
                while ix < n:
                    if row[ix]:
                        start = ix
                        while ix < n and row[ix]:
                            ix += 1
                        row_runs.add((start, ix))
                    else:
                        ix += 1
            ended = [k for k in live if k not in row_runs]
            for k in ended:
                iy0 = live.pop(k)
                out.append(Rect(xs[k[0]], ys[iy0], xs[k[1]], ys[iy]))
            for k in row_runs:
                if k not in live:
                    live[k] = iy
        return RegionSet(out)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _rasterize(rects: Sequence[Rect], xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Boolean occupancy of ``rects`` over the compressed grid (xs, ys)."""
        mask = np.zeros((max(len(xs) - 1, 0), max(len(ys) - 1, 0)), dtype=bool)
        if mask.size == 0:
            return mask
        for r in rects:
            ix1 = int(np.searchsorted(xs, r.x1))
            ix2 = int(np.searchsorted(xs, r.x2))
            iy1 = int(np.searchsorted(ys, r.y1))
            iy2 = int(np.searchsorted(ys, r.y2))
            mask[ix1:ix2, iy1:iy2] = True
        return mask

    @staticmethod
    def _combine_area(a: "RegionSet", b: "RegionSet", op: str) -> float:
        """Area of a boolean combination of two rectangle unions."""
        rects_all = a._rects + b._rects
        if not rects_all:
            return 0.0
        xs, ys = _edges(rects_all)
        nx, ny = len(xs) - 1, len(ys) - 1
        if nx <= 0 or ny <= 0:
            return 0.0
        dy = np.diff(ys)
        total = 0.0
        # Chunk along x so the transient masks stay bounded.
        rows_per_chunk = max(1, _MAX_CELLS_PER_CHUNK // max(ny, 1))
        for x0 in range(0, nx, rows_per_chunk):
            x1 = min(nx, x0 + rows_per_chunk)
            sub_xs = xs[x0 : x1 + 1]
            lo, hi = sub_xs[0], sub_xs[-1]
            sub_a = [r for r in a._rects if r.x1 < hi and r.x2 > lo]
            sub_b = [r for r in b._rects if r.x1 < hi and r.x2 > lo]
            mask_a = RegionSet._clipped_raster(sub_a, sub_xs, ys)
            if op == "a":
                combined = mask_a
            else:
                mask_b = RegionSet._clipped_raster(sub_b, sub_xs, ys)
                if op == "and":
                    combined = mask_a & mask_b
                elif op == "or":
                    combined = mask_a | mask_b
                elif op == "diff":
                    combined = mask_a & ~mask_b
                elif op == "xor":
                    combined = mask_a ^ mask_b
                else:  # pragma: no cover - internal misuse
                    raise GeometryError(f"unknown boolean op {op!r}")
            dx = np.diff(sub_xs)
            total += float((dx[:, None] * dy[None, :])[combined].sum())
        return total

    @staticmethod
    def _clipped_raster(rects: Sequence[Rect], xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Rasterise rects clipped to the x-range covered by ``xs``."""
        mask = np.zeros((len(xs) - 1, len(ys) - 1), dtype=bool)
        lo, hi = xs[0], xs[-1]
        for r in rects:
            rx1 = max(r.x1, lo)
            rx2 = min(r.x2, hi)
            if rx2 <= rx1:
                continue
            ix1 = int(np.searchsorted(xs, rx1))
            ix2 = int(np.searchsorted(xs, rx2))
            iy1 = int(np.searchsorted(ys, r.y1))
            iy2 = int(np.searchsorted(ys, r.y2))
            mask[ix1:ix2, iy1:iy2] = True
        return mask
