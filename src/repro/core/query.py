"""PDR query model (Definitions 3-5 of the paper).

A *snapshot PDR query* ``(rho, l, q_t)`` asks for every point whose l-square
neighborhood contains at least ``rho * l**2`` objects at timestamp ``q_t``.
An *interval PDR query* unions snapshot answers over an integer timestamp
range.  Queries are plain immutable values; evaluation lives in
:mod:`repro.methods`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from .errors import InvalidParameterError
from .regions import RegionSet

__all__ = [
    "SnapshotPDRQuery",
    "IntervalPDRQuery",
    "QueryStats",
    "QueryResult",
    "relative_to_absolute_threshold",
]


def relative_to_absolute_threshold(varrho: float, n_objects: int, domain_area: float) -> float:
    """Convert the paper's relative threshold to an absolute density.

    Section 7 of the paper issues queries with a *relative* density threshold
    ``varrho`` and converts it as ``rho = N * varrho / area``: ``varrho = 1``
    asks for regions at least as dense as the average density of the whole
    domain, ``varrho = 5`` for five times the average.
    """
    if varrho < 0:
        raise InvalidParameterError(f"relative threshold must be >= 0, got {varrho}")
    if n_objects < 0:
        raise InvalidParameterError(f"object count must be >= 0, got {n_objects}")
    if domain_area <= 0:
        raise InvalidParameterError(f"domain area must be positive, got {domain_area}")
    return n_objects * varrho / domain_area


@dataclass(frozen=True)
class SnapshotPDRQuery:
    """The snapshot PDR query ``(rho, l, q_t)`` of Definition 4.

    Attributes:
        rho: density threshold (objects per unit area), ``>= 0``.
        l: edge length of the square neighborhood, ``> 0``.
        qt: the (integer) timestamp the query targets.
    """

    rho: float
    l: float
    qt: int

    def __post_init__(self) -> None:
        if not (self.rho >= 0) or math.isinf(self.rho) or math.isnan(self.rho):
            raise InvalidParameterError(f"rho must be a finite value >= 0, got {self.rho}")
        if not (self.l > 0) or math.isinf(self.l):
            raise InvalidParameterError(f"l must be a finite value > 0, got {self.l}")

    @property
    def min_count(self) -> float:
        """Number of objects an l-square must contain to be dense: ``rho * l**2``."""
        return self.rho * self.l * self.l

    def with_timestamp(self, qt: int) -> "SnapshotPDRQuery":
        return SnapshotPDRQuery(self.rho, self.l, qt)


@dataclass(frozen=True)
class IntervalPDRQuery:
    """The interval PDR query ``(rho, l, [qt1, qt2])`` of Definition 5."""

    rho: float
    l: float
    qt1: int
    qt2: int

    def __post_init__(self) -> None:
        if self.qt2 < self.qt1:
            raise InvalidParameterError(
                f"interval query requires qt1 <= qt2, got [{self.qt1}, {self.qt2}]"
            )
        # Delegate scalar validation to the snapshot constructor.
        SnapshotPDRQuery(self.rho, self.l, self.qt1)

    def snapshots(self):
        """Yield the constituent snapshot queries, one per integer timestamp."""
        for qt in range(self.qt1, self.qt2 + 1):
            yield SnapshotPDRQuery(self.rho, self.l, qt)


@dataclass
class QueryStats:
    """Per-query cost accounting.

    ``cpu_seconds`` is measured wall CPU of the evaluation; ``io_count`` and
    ``io_seconds`` come from the simulated buffer pool (only the FR method
    performs I/O).  Cell counters describe the filter step when applicable.
    """

    method: str = ""
    cpu_seconds: float = 0.0
    io_count: int = 0
    io_seconds: float = 0.0
    accepted_cells: int = 0
    rejected_cells: int = 0
    candidate_cells: int = 0
    objects_examined: int = 0
    bnb_nodes: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total query cost: CPU plus charged I/O (Section 7.3)."""
        return self.cpu_seconds + self.io_seconds

    def merged_with(self, other: "QueryStats") -> "QueryStats":
        """Combine accounting from two evaluations (used by interval queries)."""
        merged = QueryStats(
            method=self.method or other.method,
            cpu_seconds=self.cpu_seconds + other.cpu_seconds,
            io_count=self.io_count + other.io_count,
            io_seconds=self.io_seconds + other.io_seconds,
            accepted_cells=self.accepted_cells + other.accepted_cells,
            rejected_cells=self.rejected_cells + other.rejected_cells,
            candidate_cells=self.candidate_cells + other.candidate_cells,
            objects_examined=self.objects_examined + other.objects_examined,
            bnb_nodes=self.bnb_nodes + other.bnb_nodes,
        )
        merged.extra = dict(self.extra)
        for key, value in other.extra.items():
            merged.extra[key] = merged.extra.get(key, 0.0) + value
        return merged


@dataclass
class QueryResult:
    """A PDR answer: the dense regions plus evaluation statistics.

    ``degraded`` is set by the deadline ladder when the answer was
    produced by a cheaper method than the one requested (or by the
    admission controller when the method was downgraded at the door);
    ``requested_method`` then names the original request while
    ``stats.method`` names the method that actually ran.  ``served_by``
    names the backend that produced the answer when the query was routed
    through a replication group.
    """

    regions: RegionSet
    stats: QueryStats
    query: Optional[SnapshotPDRQuery] = None
    degraded: bool = False
    requested_method: Optional[str] = None
    served_by: Optional[str] = None

    def area(self) -> float:
        return self.regions.area()

    def __iter__(self):
        return iter(self.regions)
