"""The public façade: a PDR-capable moving-objects server.

:class:`PDRServer` wires together every maintained structure the paper
uses — the object table, the TPR-tree over a simulated buffer pool, the
per-timestamp density histograms and the per-timestamp Chebyshev
surfaces — behind one update entry point (:meth:`report` /
:meth:`advance_to`) and one query entry point (:meth:`query`) that selects
the evaluation method by name:

======================  =======================================================
``"fr"``                exact filtering-refinement (Section 5)
``"pa"``                approximate polynomial evaluation (Section 6)
``"dh-optimistic"``     filter step only, candidates counted dense
``"dh-pessimistic"``    filter step only, candidates dropped
``"bruteforce"``        exact full-plane sweep (oracle; ignores all structures)
``"dense-cell"``        dense-cell baseline (answer loss by design)
``"edq"``               effective-density-query baseline (ambiguous by design)
======================  =======================================================

This is the class the examples and the experiment harness build on.
"""

from __future__ import annotations

from typing import Optional

from ..baselines.bruteforce import bruteforce_from_motions
from ..baselines.dense_cell import dense_cell_query
from ..baselines.edq import edq_query
from ..histogram.answers import dh_optimistic, dh_pessimistic
from ..histogram.density_histogram import DensityHistogram
from ..index.tree import TPRTree
from ..methods.fr import FRMethod
from ..methods.interval import evaluate_interval
from ..methods.pa import PAMethod
from ..metrics.cost import UpdateCostTimer
from ..metrics.instrument import TimedListener
from ..motion.table import ObjectTable
from ..storage.buffer import BufferPool
from .config import SystemConfig
from .errors import InvalidParameterError
from .query import (
    IntervalPDRQuery,
    QueryResult,
    SnapshotPDRQuery,
    relative_to_absolute_threshold,
)

__all__ = ["PDRServer"]

_METHODS = (
    "fr",
    "pa",
    "dh-optimistic",
    "dh-pessimistic",
    "bruteforce",
    "dense-cell",
    "edq",
)


class PDRServer:
    """A complete PDR query-processing stack."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        expected_objects: int = 100_000,
        tnow: int = 0,
    ) -> None:
        self.config = config or SystemConfig()
        cfg = self.config
        self.table = ObjectTable(tnow=tnow)
        self.buffer = BufferPool(
            capacity_pages=cfg.page_model.buffer_pages(expected_objects),
            random_io_seconds=cfg.page_model.random_io_seconds,
        )
        self.tree = TPRTree(
            horizon=cfg.horizon,
            page_model=cfg.page_model,
            buffer_pool=self.buffer,
            tnow=tnow,
        )
        self.histogram = DensityHistogram(
            cfg.domain, m=cfg.histogram_cells, horizon=cfg.horizon, tnow=tnow
        )
        self.pa = PAMethod(
            cfg.domain,
            l=cfg.l,
            horizon=cfg.horizon,
            g=cfg.polynomial_grid,
            k=cfg.polynomial_degree,
            md=cfg.evaluation_grid,
            tnow=tnow,
        )
        self.dh_timer = UpdateCostTimer()
        self.pa_timer = UpdateCostTimer()
        self.table.add_listener(TimedListener(self.histogram, self.dh_timer))
        self.table.add_listener(TimedListener(self.pa, self.pa_timer))
        self.table.add_listener(self.tree)
        self._fr = FRMethod(self.histogram, self.tree)

    # ------------------------------------------------------------------
    # update side
    # ------------------------------------------------------------------
    @property
    def tnow(self) -> int:
        return self.table.tnow

    def report(self, oid: int, x: float, y: float, vx: float, vy: float) -> None:
        """Process one location report (delete + insert per Section 5.1)."""
        self.table.report(oid, x, y, vx, vy)

    def advance_to(self, tnow: int) -> None:
        """Move the server clock; retires and creates histogram/PA slots."""
        self.table.advance_to(tnow)

    def object_count(self) -> int:
        return len(self.table)

    # ------------------------------------------------------------------
    # query side
    # ------------------------------------------------------------------
    def make_query(
        self,
        qt: int,
        l: Optional[float] = None,
        rho: Optional[float] = None,
        varrho: Optional[float] = None,
    ) -> SnapshotPDRQuery:
        """Construct a snapshot query, resolving the relative threshold.

        Exactly one of ``rho`` (absolute, objects per unit area) and
        ``varrho`` (relative to the current average density, as in
        Section 7) must be given.  ``l`` defaults to the configured edge.
        """
        if (rho is None) == (varrho is None):
            raise InvalidParameterError("provide exactly one of rho and varrho")
        if rho is None:
            rho = relative_to_absolute_threshold(
                varrho, len(self.table), self.config.domain.area
            )
        return SnapshotPDRQuery(rho=rho, l=l if l is not None else self.config.l, qt=qt)

    def query(
        self,
        method: str,
        qt: int,
        l: Optional[float] = None,
        rho: Optional[float] = None,
        varrho: Optional[float] = None,
    ) -> QueryResult:
        """Evaluate a snapshot PDR query with the named method."""
        q = self.make_query(qt=qt, l=l, rho=rho, varrho=varrho)
        return self.evaluate(method, q)

    def evaluate(self, method: str, q: SnapshotPDRQuery) -> QueryResult:
        """Evaluate an already-constructed query."""
        if method == "fr":
            return self._fr.query(q)
        if method == "pa":
            return self.pa.query(q)
        if method == "dh-optimistic":
            return dh_optimistic(self.histogram, q)
        if method == "dh-pessimistic":
            return dh_pessimistic(self.histogram, q)
        if method == "bruteforce":
            return bruteforce_from_motions(
                self.table.motions(), self.config.domain, q
            )
        if method == "dense-cell":
            return dense_cell_query(self.histogram, q)
        if method == "edq":
            positions = [(x, y) for (_oid, x, y) in self.table.positions_at(q.qt)]
            return edq_query(positions, self.config.domain, q)
        raise InvalidParameterError(
            f"unknown method {method!r}; expected one of {_METHODS}"
        )

    def query_interval(
        self,
        method: str,
        qt1: int,
        qt2: int,
        l: Optional[float] = None,
        rho: Optional[float] = None,
        varrho: Optional[float] = None,
    ) -> QueryResult:
        """Evaluate an interval PDR query (Definition 5) with the named method.

        ``method="fr-optimized"`` uses the interval-level filter (accept a
        cell once for the whole union, refine candidates only at the
        timestamps that need it) — exact, usually far less refinement I/O.
        """
        base = self.make_query(qt=qt1, l=l, rho=rho, varrho=varrho)
        interval = IntervalPDRQuery(rho=base.rho, l=base.l, qt1=qt1, qt2=qt2)
        if method == "fr-optimized":
            from ..methods.interval import evaluate_interval_fr

            return evaluate_interval_fr(self._fr, interval)
        return evaluate_interval(lambda s: self.evaluate(method, s), interval)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def memory_report(self) -> dict:
        """Bytes held by each maintained structure (paper's Section 7 figures)."""
        return {
            "density_histogram": self.histogram.memory_bytes(),
            "polynomials": self.pa.memory_bytes(),
            "buffer_pages": self.buffer.capacity,
        }
