"""The public façade: a PDR-capable moving-objects server.

:class:`PDRServer` wires together every maintained structure the paper
uses — the object table, the TPR-tree over a simulated buffer pool, the
per-timestamp density histograms and the per-timestamp Chebyshev
surfaces — behind one update entry point (:meth:`report` /
:meth:`advance_to`) and one query entry point (:meth:`query`) that selects
the evaluation method by name:

======================  =======================================================
``"fr"``                exact filtering-refinement (Section 5)
``"pa"``                approximate polynomial evaluation (Section 6)
``"dh-optimistic"``     filter step only, candidates counted dense
``"dh-pessimistic"``    filter step only, candidates dropped
``"bruteforce"``        exact full-plane sweep (oracle; ignores all structures)
``"dense-cell"``        dense-cell baseline (answer loss by design)
``"edq"``               effective-density-query baseline (ambiguous by design)
======================  =======================================================

The server also hosts the reliability layer (:mod:`repro.reliability`):

* every :meth:`report` is validated at this boundary; rejects land in
  :attr:`dead_letters` instead of corrupting the maintained structures;
* :meth:`query` accepts a ``deadline`` budget and degrades down the
  ``fr -> pa -> dh-optimistic`` ladder instead of missing it;
* with ``reliability.state_dir`` set, accepted updates are write-ahead
  logged and periodically checkpointed, and :meth:`recover` rebuilds an
  identical server after a crash.

This is the class the examples and the experiment harness build on.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence, Set, Tuple

from ..baselines.bruteforce import bruteforce_from_motions
from ..baselines.dense_cell import dense_cell_query
from ..baselines.edq import edq_query
from ..histogram.answers import dh_optimistic, dh_pessimistic
from ..histogram.density_histogram import DensityHistogram
from ..index.tree import TPRTree
from ..methods.fr import FRMethod
from ..methods.interval import evaluate_interval
from ..methods.pa import PAMethod
from ..metrics.cost import UpdateCostTimer
from ..metrics.instrument import TimedListener
from ..motion.model import Motion
from ..motion.table import ObjectTable
from ..reliability.deadline import evaluate_with_degradation, run_with_retries
from ..reliability.faults import MonotonicClock
from ..reliability.validation import (
    DeadLetterQueue,
    RejectedReport,
    ReliabilityConfig,
    ReportValidator,
)
from ..storage.buffer import BufferPool
from ..telemetry import TELEMETRY
from ..telemetry import instruments as tm
from ..telemetry.journal import JOURNAL
from ..telemetry.tracing import NOOP_SPAN
from .config import SystemConfig
from .errors import (
    InvalidParameterError,
    ReadOnlyError,
    StorageError,
    WALWriteError,
)
from .query import (
    IntervalPDRQuery,
    QueryResult,
    SnapshotPDRQuery,
    relative_to_absolute_threshold,
)

__all__ = ["PDRServer"]

_METHODS = (
    "fr",
    "pa",
    "dh-optimistic",
    "dh-pessimistic",
    "bruteforce",
    "dense-cell",
    "edq",
)


class PDRServer:
    """A complete PDR query-processing stack."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        expected_objects: int = 100_000,
        tnow: int = 0,
        reliability: Optional[ReliabilityConfig] = None,
        role: str = "primary",
    ) -> None:
        if role not in ("primary", "replica"):
            raise InvalidParameterError(
                f"role must be 'primary' or 'replica', got {role!r}"
            )
        self.config = config or SystemConfig()
        cfg = self.config
        self.reliability = reliability or ReliabilityConfig()
        if role == "replica" and self.reliability.state_dir is not None:
            raise InvalidParameterError(
                "replicas hold no WAL of their own; durability belongs to "
                "the primary (a promoted replica attaches the group's "
                "manager instead)"
            )
        self.role = role
        self.epoch = 0
        # Read-only degraded mode: queries keep serving, writes raise
        # ReadOnlyError.  Entered on a hard disk-budget watermark or a
        # poisoned WAL descriptor; left through probe_resources().
        self.read_only = False
        self.read_only_reason = ""
        self.read_only_retry_after = 0.5
        # Bumped (and persisted in server-config.json) each time this
        # state directory goes through checkpoint+replay recovery.
        self.recovery_generation = 0
        self.query_counters: Counter = Counter()
        # Per-stage seconds accumulated across served queries (the FR
        # breakdown: filter / fetch / sweep), for the reliability report.
        self.stage_seconds: Counter = Counter()
        self.expected_objects = expected_objects
        self.faults = self.reliability.faults
        # An injector brings its own (virtual) clock, which then also
        # drives deadlines and retry backoff; without one, real time.
        self.clock = self.faults.clock if self.faults is not None else MonotonicClock()
        self.dead_letters = DeadLetterQueue(self.reliability.dead_letter_capacity)
        self._validator = ReportValidator(self.reliability.policy, cfg.domain)
        self._tick_oids: Set[int] = set()
        self.table = ObjectTable(tnow=tnow)
        self.buffer = BufferPool(
            capacity_pages=cfg.page_model.buffer_pages(expected_objects),
            random_io_seconds=cfg.page_model.random_io_seconds,
            faults=self.faults,
        )
        self.tree = TPRTree(
            horizon=cfg.horizon,
            page_model=cfg.page_model,
            buffer_pool=self.buffer,
            tnow=tnow,
        )
        self.histogram = DensityHistogram(
            cfg.domain, m=cfg.histogram_cells, horizon=cfg.horizon, tnow=tnow
        )
        self.pa = PAMethod(
            cfg.domain,
            l=cfg.l,
            horizon=cfg.horizon,
            g=cfg.polynomial_grid,
            k=cfg.polynomial_degree,
            md=cfg.evaluation_grid,
            tnow=tnow,
            faults=self.faults,
        )
        self.dh_timer = UpdateCostTimer()
        self.pa_timer = UpdateCostTimer()
        self.table.add_listener(TimedListener(self.histogram, self.dh_timer))
        self.table.add_listener(TimedListener(self.pa, self.pa_timer))
        self.table.add_listener(self.tree)
        self._fr = FRMethod(self.histogram, self.tree, faults=self.faults)
        self._manager = None
        if self.reliability.state_dir is not None:
            from ..reliability.recovery import ReliabilityManager

            self._manager = ReliabilityManager.create_fresh(self, self.reliability)

    # ------------------------------------------------------------------
    # update side
    # ------------------------------------------------------------------
    @property
    def tnow(self) -> int:
        return self.table.tnow

    def report(
        self,
        oid: int,
        x: float,
        y: float,
        vx: float,
        vy: float,
        t: Optional[int] = None,
    ) -> Optional[Motion]:
        """Process one location report (delete + insert per Section 5.1).

        The report is validated first: a malformed one is quarantined in
        :attr:`dead_letters` and ``None`` is returned — none of the
        maintained structures see it.  An accepted report is write-ahead
        logged (when durability is on) and applied everywhere, returning
        the registered :class:`Motion`.
        """
        self._check_writable()
        verdict = self._validator.validate(
            oid, x, y, vx, vy, t, self.table.tnow, self._tick_oids
        )
        if verdict is not None:
            reason, detail = verdict
            self.dead_letters.push(
                RejectedReport(
                    oid=oid, x=x, y=y, vx=vx, vy=vy, t=t,
                    tnow=self.table.tnow, reason=reason, detail=detail,
                )
            )
            tm.INGEST_REPORTS.labels("rejected").inc()
            tm.DEAD_LETTERS.inc()
            return None
        tm.INGEST_REPORTS.labels("accepted").inc()
        if self._manager is not None:
            self._log_guarded(
                self._manager.log_report, oid, x, y, vx, vy, self.table.tnow
            )
        if self.faults is not None:
            self.faults.hit("report.apply")
        motion = self._apply_report(oid, x, y, vx, vy)
        self._resource_check()
        return motion

    def _check_writable(self) -> None:
        if self.role != "primary":
            from .errors import NotPrimaryError

            raise NotPrimaryError(
                f"server is {self.role!r} (epoch {self.epoch}); writes must "
                "go to the acting primary"
            )
        if self.read_only:
            raise ReadOnlyError(
                f"server is in read-only degraded mode "
                f"({self.read_only_reason}); writes are refused",
                retry_after=self.read_only_retry_after,
                reason=self.read_only_reason,
            )

    def _log_guarded(self, log_fn, *args) -> None:
        """Run one WAL-logging call; a poisoned descriptor degrades the
        server to read-only before the error surfaces to the caller (the
        record was never acked, so refusing further writes loses nothing)."""
        try:
            log_fn(*args)
        except WALWriteError as exc:
            resources = getattr(self._manager, "resources", None)
            if resources is not None:
                resources.note_wal_failure(self, exc)
            else:
                self.enter_read_only(f"WAL poisoned: {exc}")
            raise

    def _resource_check(self) -> None:
        """Evaluate the disk/memory budget after a successful write."""
        resources = getattr(self._manager, "resources", None)
        if resources is not None:
            resources.check(self)

    # ------------------------------------------------------------------
    # read-only degraded mode
    # ------------------------------------------------------------------
    def enter_read_only(self, reason: str, retry_after: float = 0.5) -> None:
        """Refuse writes (queries keep serving) until a probe clears it."""
        if not self.read_only:  # journal actual transitions, not re-entries
            JOURNAL.emit("readonly_enter", reason=reason)
        self.read_only = True
        self.read_only_reason = reason
        self.read_only_retry_after = float(retry_after)
        tm.READONLY.set(1)

    def exit_read_only(self) -> None:
        if self.read_only:
            JOURNAL.emit("readonly_exit")
        self.read_only = False
        self.read_only_reason = ""
        tm.READONLY.set(0)

    def probe_resources(self) -> bool:
        """Try to leave read-only mode; returns True when writable.

        With a resource manager configured this is its full probe (fresh
        WAL segment past a poisoned one, prune, re-check the budget);
        without one it still heals a poisoned WAL, which is the only
        other way into read-only mode.
        """
        resources = getattr(self._manager, "resources", None)
        if resources is not None:
            return resources.probe(self)
        if not self.read_only:
            return True
        if self._manager is not None and self._manager.wal_poisoned:
            try:
                self._manager.reopen_wal()
            except OSError:
                return False
        self.exit_read_only()
        return True

    def _apply_report(
        self, oid: int, x: float, y: float, vx: float, vy: float
    ) -> Motion:
        motion = self.table.report(oid, x, y, vx, vy)
        self._tick_oids.add(oid)
        return motion

    def report_batch(
        self, reports: Sequence[Tuple[int, float, float, float, float]]
    ) -> List[Optional[Motion]]:
        """Process a wave of ``(oid, x, y, vx, vy)`` reports in one pass.

        Semantically equivalent to calling :meth:`report` once per element
        in order — same validation verdicts, same dead-letter entries, same
        final state — but the accepted reports are write-ahead logged in a
        single group commit (one fsync for the wave) and applied through
        the listeners' batch hooks (one numpy pass per structure instead of
        two Python dispatches per report).  Returns a list aligned with the
        input: the registered :class:`Motion` per accepted report, ``None``
        per rejected one.
        """
        self._check_writable()
        tnow = self.table.tnow
        results: List[Optional[Motion]] = [None] * len(reports)
        accepted: List[Tuple[int, float, float, float, float]] = []
        slots: List[int] = []
        # Validation must see earlier accepted reports of the same wave
        # exactly as the sequential path would (duplicate policy), without
        # committing to _tick_oids before the wave is applied.
        seen = set(self._tick_oids)
        for i, (oid, x, y, vx, vy) in enumerate(reports):
            verdict = self._validator.validate(oid, x, y, vx, vy, None, tnow, seen)
            if verdict is not None:
                reason, detail = verdict
                self.dead_letters.push(
                    RejectedReport(
                        oid=oid, x=x, y=y, vx=vx, vy=vy, t=None,
                        tnow=tnow, reason=reason, detail=detail,
                    )
                )
                continue
            seen.add(oid)
            accepted.append((oid, x, y, vx, vy))
            slots.append(i)
        rejected = len(reports) - len(accepted)
        if rejected:
            tm.INGEST_REPORTS.labels("rejected").inc(rejected)
            tm.DEAD_LETTERS.inc(rejected)
        if accepted:
            tm.INGEST_REPORTS.labels("accepted").inc(len(accepted))
        if not accepted:
            return results
        if self._manager is not None:
            self._log_guarded(self._manager.log_report_batch, accepted, tnow)
        if self.faults is not None:
            self.faults.hit("report.apply")
        motions = self.table.report_batch(accepted)
        for slot, motion in zip(slots, motions):
            results[slot] = motion
        self._tick_oids.update(report[0] for report in accepted)
        self._resource_check()
        return results

    def retire(self, oid: int) -> bool:
        """Remove ``oid`` permanently.  Unknown ids are quarantined, not
        raised: a double-retire (e.g. a duplicated departure message) must
        not take the serving path down."""
        self._check_writable()
        if oid not in self.table:
            self.dead_letters.push(
                RejectedReport(
                    oid=oid, x=float("nan"), y=float("nan"),
                    vx=float("nan"), vy=float("nan"), t=None,
                    tnow=self.table.tnow, reason="unknown_oid",
                    detail=f"cannot retire unknown object {oid!r}",
                )
            )
            tm.DEAD_LETTERS.inc()
            return False
        if self._manager is not None:
            self._log_guarded(self._manager.log_retire, oid, self.table.tnow)
        if self.faults is not None:
            self.faults.hit("report.apply")
        self._apply_retire(oid)
        self._resource_check()
        return True

    def _apply_retire(self, oid: int) -> None:
        self.table.retire(oid)
        self._tick_oids.discard(oid)

    def advance_to(self, tnow: int) -> None:
        """Move the server clock; retires and creates histogram/PA slots."""
        self._check_writable()
        if tnow == self.table.tnow:
            return
        if tnow < self.table.tnow:
            raise InvalidParameterError(
                f"clock cannot move backwards ({self.table.tnow} -> {tnow})"
            )
        if self._manager is not None:
            self._log_guarded(self._manager.log_advance, tnow)
        if self.faults is not None:
            self.faults.hit("advance.apply")
        self._apply_advance(tnow)
        if self._manager is not None:
            self._manager.maybe_checkpoint(self, tnow)
        self._resource_check()

    def _apply_advance(self, tnow: int) -> None:
        self.table.advance_to(tnow)
        self._tick_oids.clear()

    def object_count(self) -> int:
        return len(self.table)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def apply_logged_record(self, record: dict) -> None:
        """Replay one WAL record (recovery only — bypasses logging)."""
        op = record["op"]
        if op == "report":
            self._apply_report(
                int(record["oid"]),
                float(record["x"]),
                float(record["y"]),
                float(record["vx"]),
                float(record["vy"]),
            )
        elif op == "retire":
            self._apply_retire(int(record["oid"]))
        elif op == "advance":
            t = int(record["t"])
            if t > self.table.tnow:
                self._apply_advance(t)
        elif op == "epoch":
            self.epoch = max(self.epoch, int(record["epoch"]))
        else:
            raise StorageError(f"unknown update-log op {op!r}")

    def attach_manager(self, manager) -> None:
        """Re-attach durability after recovery / failover.

        A superseded manager's WAL descriptor is closed here — repeated
        recover/attach cycles must not accumulate open fds."""
        if self._manager is not None and self._manager is not manager:
            self._manager.close()
        self._manager = manager

    # ------------------------------------------------------------------
    # replication roles
    # ------------------------------------------------------------------
    def promote(self, epoch: int) -> None:
        """Make this server the acting primary at fencing term ``epoch``.

        Called by the failover coordinator after the replica has caught
        up to the durable WAL and passed the structural audit.  The epoch
        must strictly advance; when a manager is attached the bump is
        written to the WAL so recovery (and every other replica) learns
        the fencing point.
        """
        if epoch <= self.epoch:
            raise InvalidParameterError(
                f"promotion epoch must exceed the current epoch "
                f"({epoch} <= {self.epoch})"
            )
        self.role = "primary"
        self.epoch = epoch
        if self._manager is not None:
            self._log_guarded(self._manager.log_epoch, epoch, self.tnow)

    def demote(self) -> None:
        """Fence this server out of the primary role; its writes now raise."""
        self.role = "fenced"

    @property
    def wal_lsn(self) -> Optional[int]:
        """LSN of the last durably logged update (``None``: no durability)."""
        return self._manager.lsn if self._manager is not None else None

    def checkpoint(self) -> int:
        """Force a checkpoint now; returns its sequence number."""
        if self._manager is None:
            raise StorageError("server has no state_dir; durability is off")
        return self._manager.checkpoint(self)

    def close(self) -> None:
        """Release the WAL file handle (safe to call without durability)."""
        if self._manager is not None:
            self._manager.close()

    @classmethod
    def recover(
        cls,
        state_dir: str,
        faults=None,
        audit: bool = True,
        expected_objects: Optional[int] = None,
    ) -> "PDRServer":
        """Rebuild a server from ``state_dir``: newest loadable checkpoint
        plus replay of the update log, then a structural audit."""
        from ..reliability.recovery import recover_server

        return recover_server(
            state_dir, faults=faults, audit=audit, expected_objects=expected_objects
        )

    def audit(self, raise_on_violation: bool = True) -> List[str]:
        """Cross-check table / tree / histogram / PA consistency."""
        from ..reliability.recovery import audit_server

        return audit_server(self, raise_on_violation=raise_on_violation)

    @staticmethod
    def verify_state(state_dir: str):
        """Checksum-verify a durable state directory without touching it.

        Runs the integrity scrubber in read-only mode over the WAL
        segments, checkpoint artifacts and manifest; returns the
        :class:`~repro.reliability.integrity.IntegrityReport` whose
        ``clean`` flag says whether recovery from this directory would
        reproduce the exact acknowledged state (``repro verify`` is the
        CLI face of this call).
        """
        from ..reliability.integrity import verify_state_dir

        return verify_state_dir(state_dir)

    # ------------------------------------------------------------------
    # query side
    # ------------------------------------------------------------------
    def make_query(
        self,
        qt: int,
        l: Optional[float] = None,
        rho: Optional[float] = None,
        varrho: Optional[float] = None,
    ) -> SnapshotPDRQuery:
        """Construct a snapshot query, resolving the relative threshold.

        Exactly one of ``rho`` (absolute, objects per unit area) and
        ``varrho`` (relative to the current average density, as in
        Section 7) must be given.  ``l`` defaults to the configured edge.
        """
        if (rho is None) == (varrho is None):
            raise InvalidParameterError("provide exactly one of rho and varrho")
        if rho is None:
            rho = relative_to_absolute_threshold(
                varrho, len(self.table), self.config.domain.area
            )
        return SnapshotPDRQuery(rho=rho, l=l if l is not None else self.config.l, qt=qt)

    def query(
        self,
        method: str,
        qt: int,
        l: Optional[float] = None,
        rho: Optional[float] = None,
        varrho: Optional[float] = None,
        deadline: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> QueryResult:
        """Evaluate a snapshot PDR query with the named method.

        ``deadline`` (seconds on the server clock) turns on graceful
        degradation: the requested method runs first and the ladder falls
        back to cheaper evaluations (``fr -> pa -> dh-optimistic``) so an
        answer is produced within the budget; the result's
        ``requested_method`` / ``degraded`` fields say what actually ran.
        Transient faults are retried with exponential backoff either way
        (``retries`` overrides the configured count).
        """
        q = self.make_query(qt=qt, l=l, rho=rho, varrho=varrho)
        n_retries = self.reliability.retries if retries is None else retries
        tracer = TELEMETRY.tracer
        with tracer.trace(
            "query", method=method, qt=q.qt, l=q.l, rho=q.rho, role=self.role
        ) as span:
            if deadline is not None:
                result = evaluate_with_degradation(
                    self,
                    method,
                    q,
                    budget_seconds=deadline,
                    retries=n_retries,
                    backoff_seconds=self.reliability.backoff_seconds,
                )
            else:
                result, attempts = run_with_retries(
                    lambda: self.evaluate(method, q),
                    n_retries,
                    self.reliability.backoff_seconds,
                    self.clock,
                )
                if attempts:
                    tm.QUERY_RETRIES.inc(attempts)
                result.requested_method = method
            span.set(
                served_method=result.stats.method,
                degraded=result.degraded,
                answer_area=result.area(),
            )
        self._account_query(method, q, result, span)
        return result

    def _account_query(self, method, q, result, span) -> None:
        """Fold one served query into counters, histograms and the slow log.

        The per-stage seconds come from the query's trace when tracing is
        on — the instrumented methods record each stage's measured float
        as a leaf span, so the trace-derived totals match the old
        hand-accumulated ``stats.extra`` arithmetic bit-for-bit — and fall
        back to ``stats.extra`` when it is off.  ``stage_seconds`` and the
        ``reliability_report`` keys fed from it are the compatibility view
        of this accounting.
        """
        self.query_counters["served"] += 1
        if result.degraded:
            self.query_counters["degraded"] += 1
        extra = result.stats.extra
        traced = span is not NOOP_SPAN
        totals = span.stage_totals() if traced else {}
        served = result.stats.method
        for stage in ("filter", "fuse", "fetch", "sweep", "merge"):
            seconds = (
                totals.get(stage, 0.0)
                if traced
                else extra.get(f"{stage}_seconds", 0.0)
            )
            self.stage_seconds[stage] += seconds
            if seconds > 0.0:
                tm.QUERY_STAGE_SECONDS.labels(served, stage).observe(seconds)
        if traced and totals.get("bnb", 0.0) > 0.0:
            tm.QUERY_STAGE_SECONDS.labels(served, "bnb").observe(totals["bnb"])
        self.query_counters["cache_hits"] += int(extra.get("cache_hits", 0.0))
        self.query_counters["cache_misses"] += int(extra.get("cache_misses", 0.0))
        tm.QUERIES.labels(method, "degraded" if result.degraded else "ok").inc()
        # Feed the SLO monitor the best latency signal available: the
        # traced wall duration, else the evaluation's measured CPU time.
        tm.slo_record(span.duration if traced else result.stats.cpu_seconds)
        if traced:
            tm.QUERY_SECONDS.labels(method).observe(span.duration)
            TELEMETRY.note_query(span, result, requested_method=method)

    def evaluate(
        self, method: str, q: SnapshotPDRQuery, deadline=None
    ) -> QueryResult:
        """Evaluate an already-constructed query.

        ``deadline`` is a :class:`~repro.reliability.deadline.Deadline`
        checked cooperatively by the methods that can run long (FR at each
        candidate refinement, PA at entry); the histogram bounds and
        baselines ignore it.
        """
        if method == "fr":
            return self._fr.query(q, deadline=deadline)
        if method == "pa":
            return self.pa.query(q, deadline=deadline)
        if method == "dh-optimistic":
            return dh_optimistic(self.histogram, q)
        if method == "dh-pessimistic":
            return dh_pessimistic(self.histogram, q)
        if method == "bruteforce":
            return bruteforce_from_motions(
                self.table.motions(), self.config.domain, q
            )
        if method == "dense-cell":
            return dense_cell_query(self.histogram, q)
        if method == "edq":
            positions = [(x, y) for (_oid, x, y) in self.table.positions_at(q.qt)]
            return edq_query(positions, self.config.domain, q)
        raise InvalidParameterError(
            f"unknown method {method!r}; expected one of {_METHODS}"
        )

    def query_interval(
        self,
        method: str,
        qt1: int,
        qt2: int,
        l: Optional[float] = None,
        rho: Optional[float] = None,
        varrho: Optional[float] = None,
    ) -> QueryResult:
        """Evaluate an interval PDR query (Definition 5) with the named method.

        ``method="fr-optimized"`` uses the interval-level filter (accept a
        cell once for the whole union, refine candidates only at the
        timestamps that need it) — exact, usually far less refinement I/O.
        """
        base = self.make_query(qt=qt1, l=l, rho=rho, varrho=varrho)
        interval = IntervalPDRQuery(rho=base.rho, l=base.l, qt1=qt1, qt2=qt2)
        if method == "fr-optimized":
            from ..methods.interval import evaluate_interval_fr

            return evaluate_interval_fr(self._fr, interval)
        return evaluate_interval(lambda s: self.evaluate(method, s), interval)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def memory_report(self) -> dict:
        """Bytes held by each maintained structure (paper's Section 7 figures)."""
        return {
            "density_histogram": self.histogram.memory_bytes(),
            "polynomials": self.pa.memory_bytes(),
            "buffer_pages": self.buffer.capacity,
        }

    def reliability_report(self) -> dict:
        """Operator-facing counters for the reliability layer."""
        resources = getattr(self._manager, "resources", None)
        return {
            "role": self.role,
            "epoch": self.epoch,
            "recovery_generation": self.recovery_generation,
            "read_only": self.read_only,
            "read_only_reason": self.read_only_reason,
            "resources": resources.report() if resources is not None else None,
            "dead_letter_total": self.dead_letters.total,
            "dead_letter_counts": dict(self.dead_letters.counts),
            "queries_served": self.query_counters["served"],
            "queries_degraded": self.query_counters["degraded"],
            "wal_lsn": self.wal_lsn,
            "query_stage_seconds": {
                stage: self.stage_seconds[stage]
                for stage in ("filter", "fuse", "fetch", "sweep", "merge")
            },
            "query_cache_hits": self.query_counters["cache_hits"],
            "query_cache_misses": self.query_counters["cache_misses"],
            "histogram_cache": {
                "hits": self.histogram.cache_hits,
                "misses": self.histogram.cache_misses,
            },
        }
