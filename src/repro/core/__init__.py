"""Core abstractions: geometry, regions, queries, configuration, the server façade."""
