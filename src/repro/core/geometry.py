"""Planar geometry primitives shared by every subsystem.

The library manipulates two kinds of point sets:

* **answer rectangles** — the dense regions reported by a PDR method.  These
  are *half-open* rectangles ``[x1, x2) x [y1, y2)``: closed on the low edge,
  open on the high edge, so that adjacent output rectangles tile the plane
  without double counting.
* **l-square neighborhoods** — the square of edge ``l`` centred at a point
  ``p``, which per Definition 1 of the paper includes its right/top edges and
  excludes its left/bottom edges: ``(px - l/2, px + l/2] x (py - l/2,
  py + l/2]``.

The two conventions are duals: an *object* at ``o`` lies inside the l-square
centred at ``p`` iff ``p`` lies in the half-open rectangle ``[o - l/2,
o + l/2) x [o - l/2, o + l/2)`` — exactly the :class:`Rect` convention.  That
duality is what makes the plane-sweep events exact, and it is relied on
throughout :mod:`repro.sweep` and :mod:`repro.baselines.bruteforce`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from .errors import GeometryError

__all__ = [
    "Point",
    "Rect",
    "square_bounds",
    "object_influence_rect",
    "point_in_square",
]


@dataclass(frozen=True)
class Point:
    """An immutable planar point."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """Return this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Rect:
    """A half-open axis-aligned rectangle ``[x1, x2) x [y1, y2)``.

    Degenerate rectangles (``x1 == x2`` or ``y1 == y2``) are permitted and
    represent the empty point set; inverted bounds raise
    :class:`~repro.core.errors.GeometryError`.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if self.x2 < self.x1 or self.y2 < self.y1:
            raise GeometryError(
                f"inverted rectangle bounds: ({self.x1}, {self.y1}, {self.x2}, {self.y2})"
            )

    # ------------------------------------------------------------------
    # basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def is_empty(self) -> bool:
        """True when the rectangle contains no points."""
        return self.x1 >= self.x2 or self.y1 >= self.y2

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        """Membership under the half-open convention."""
        return self.x1 <= x < self.x2 and self.y1 <= y < self.y2

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` (as a point set) is a subset of this rect."""
        if other.is_empty():
            return True
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the two half-open rectangles share at least one point."""
        return (
            self.x1 < other.x2
            and other.x1 < self.x2
            and self.y1 < other.y2
            and other.y1 < self.y2
        )

    # ------------------------------------------------------------------
    # constructions
    # ------------------------------------------------------------------
    def intersection(self, other: "Rect") -> "Rect":
        """The (possibly empty) intersection rectangle."""
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 < x1 or y2 < y1:
            return Rect(x1, y1, x1, y1)
        return Rect(x1, y1, x2, y2)

    def union_bounds(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both operands."""
        return Rect(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def expanded(self, margin: float) -> "Rect":
        """Grow every edge outward by ``margin`` (must leave bounds valid)."""
        return Rect(self.x1 - margin, self.y1 - margin, self.x2 + margin, self.y2 + margin)

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def clipped_to(self, other: "Rect") -> "Rect":
        """Alias of :meth:`intersection`, reads better at call sites."""
        return self.intersection(other)

    def corners(self) -> Iterator[Point]:
        yield Point(self.x1, self.y1)
        yield Point(self.x2, self.y1)
        yield Point(self.x2, self.y2)
        yield Point(self.x1, self.y2)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.x1, self.y1, self.x2, self.y2)

    @staticmethod
    def from_center(center: Point, width: float, height: float) -> "Rect":
        """Rectangle of the given size centred on ``center``."""
        hw, hh = width / 2.0, height / 2.0
        return Rect(center.x - hw, center.y - hh, center.x + hw, center.y + hh)

    @staticmethod
    def bounding(rects: Iterable["Rect"]) -> "Rect":
        """Bounding box of a non-empty collection of rectangles."""
        it = iter(rects)
        try:
            box = next(it)
        except StopIteration:
            raise GeometryError("bounding() requires at least one rectangle") from None
        for r in it:
            box = box.union_bounds(r)
        return box


def square_bounds(cx: float, cy: float, l: float) -> Tuple[float, float, float, float]:
    """Bounds ``(x_lo, y_lo, x_hi, y_hi)`` of the l-square centred at ``(cx, cy)``.

    Membership for an object uses ``(x_lo, x_hi] x (y_lo, y_hi]`` — see the
    module docstring.
    """
    h = l / 2.0
    return (cx - h, cy - h, cx + h, cy + h)


def point_in_square(ox: float, oy: float, cx: float, cy: float, l: float) -> bool:
    """Is the object at ``(ox, oy)`` inside the l-square centred at ``(cx, cy)``?

    Implements Definition 1 of the paper: right and top edges included, left
    and bottom edges excluded.
    """
    h = l / 2.0
    return (cx - h < ox <= cx + h) and (cy - h < oy <= cy + h)


def object_influence_rect(ox: float, oy: float, l: float) -> Rect:
    """The set of centre points whose l-square contains the object at ``(ox, oy)``.

    This is the half-open rectangle ``[ox - l/2, ox + l/2) x [oy - l/2,
    oy + l/2)``; it is the dual form of :func:`point_in_square` and the basis
    of the plane-sweep event coordinates.
    """
    h = l / 2.0
    return Rect(ox - h, oy - h, ox + h, oy + h)


def merge_touching_intervals(
    intervals: Sequence[Tuple[float, float]],
) -> list:
    """Merge a sequence of half-open intervals, coalescing overlaps and touches.

    Input need not be sorted.  Returns a sorted list of disjoint half-open
    ``(lo, hi)`` pairs with positive length.
    """
    pts = sorted((lo, hi) for lo, hi in intervals if hi > lo)
    merged: list = []
    for lo, hi in pts:
        if merged and lo <= merged[-1][1]:
            if hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return [(lo, hi) for lo, hi in merged]
