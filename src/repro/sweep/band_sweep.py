"""Band-fused, vectorised refinement kernel (the fast path behind FR).

:func:`repro.sweep.plane_sweep.refine_cell` refines one rectangle at a time:
an X-sweep over that rectangle's stopping events with a 1-D Y-sweep per
segment.  When a query classifies thousands of candidate cells, most of them
share an *l-band*: every cell in histogram row ``j`` sweeps the same y-range
``[y1_j, y2_j)`` against (a superset of) the same objects.  This module
refines an entire batch of such **bands** in one pass:

* cells in a row are fused into maximal horizontal **strips**; a band is one
  row's worth of strips plus the objects fetched for the row's expanded
  rectangle (one TPR range fetch per band instead of one per cell);
* the X-breakpoints of every strip come from a single sorted/unique event
  array per band, and the active-band count at each segment's left edge is
  two ``searchsorted`` subtractions instead of pointer walks;
* the per-segment Y-sweeps of *all* bands run as one flat segmented
  sort+cumsum: the (segment, object) incidence pairs are built per band,
  then every downstream step — boundary counts, in-range events, net deltas,
  running counts, dense-run extraction — operates on the concatenated arrays
  grouped by a global segment id.

Bit-exactness.  Each strip's breakpoint set equals ``refine_cell``'s
(:func:`numpy.unique` of the same float events restricted to the same strict
interior), the active count at a left edge ``x`` equals the pointer walk's
(``|{enter <= x < exit}| = |{enter <= x}| - |{exit <= x}|`` because
``exit = enter + l``), and the flat Y-sweep performs the same comparisons on
the same floats as :func:`dense_segments_1d` segment by segment (that
routine depends only on the multiset of active y's).  Fetching a whole
band's objects is harmless for any strip in it: an object outside a strip's
``l/2`` expansion contributes no breakpoint strictly inside the strip and is
never active there.  The property suite in ``tests/test_perf_paths.py``
holds the kernel bit-identical — every emitted bound compared with ``==`` —
to sequential per-strip :func:`refine_cell` calls.

Chunk invariance.  Every step is local to one band (phase A) or one segment
(phase B), so refining bands in chunks — e.g. across a worker pool — and
concatenating the outputs is elementwise identical to one inline call.
:func:`merge_band_results` is that concatenation.
"""

from __future__ import annotations

from typing import List, NamedTuple, Sequence

import numpy as np

from .plane_sweep import _THRESHOLD_EPS

__all__ = [
    "BandTask",
    "BandBatchResult",
    "refine_bands",
    "merge_band_results",
]

_EMPTY_F = np.empty(0, dtype=float)
_EMPTY_I = np.empty(0, dtype=np.int64)


class BandTask(NamedTuple):
    """One l-band to refine: a row of fused strips plus its fetched objects.

    ``strips_x1``/``strips_x2`` are the half-open x-extents of the row's
    maximal candidate runs (ascending, pairwise disjoint); ``y1``/``y2`` the
    row's y-extent; ``xs``/``ys`` the positions (already domain-filtered) of
    every object fetched for the band's ``l/2`` expansion.  All arrays are
    plain float64 ndarrays, so a task pickles cheaply into a worker process.
    """

    y1: float
    y2: float
    strips_x1: np.ndarray
    strips_x2: np.ndarray
    xs: np.ndarray
    ys: np.ndarray


class BandBatchResult(NamedTuple):
    """Refinement output for a batch of bands.

    ``bounds`` is the ``(R, 4)`` array of dense rectangles in canonical
    emission order (band-major, strip-major, segment-minor, y ascending) —
    exactly the order sequential per-strip :func:`refine_cell` calls emit.
    ``task_of_rect`` maps each rectangle to its originating task index.
    ``max_active`` is each band's maximum active-band count over all sweep
    segments (the ρ-monotonic skip bound: no l-square centred in the band's
    strips can ever hold more than this many objects).  ``segments`` counts
    X-segments examined across the batch.
    """

    bounds: np.ndarray
    task_of_rect: np.ndarray
    max_active: np.ndarray
    segments: int


def _exclusive_cumsum(counts: np.ndarray) -> np.ndarray:
    out = np.zeros(counts.size, dtype=np.int64)
    if counts.size > 1:
        np.cumsum(counts[:-1], out=out[1:])
    return out


def refine_bands(
    tasks: Sequence[BandTask], l: float, min_count: float
) -> BandBatchResult:
    """Refine every band in ``tasks``; see the module docstring for the math."""
    half = l / 2.0
    threshold = min_count - _THRESHOLD_EPS
    n_tasks = len(tasks)
    max_active = np.zeros(n_tasks, dtype=np.int64)
    if n_tasks == 0:
        return BandBatchResult(
            np.empty((0, 4), dtype=float), _EMPTY_I.copy(), max_active, 0
        )

    # ---------------- phase A: per-band segment construction ----------------
    # Sweep-eligible segments (active count may clear the threshold):
    seg_x_lo: List[np.ndarray] = []
    seg_x_hi: List[np.ndarray] = []
    seg_y1: List[np.ndarray] = []
    seg_y2: List[np.ndarray] = []
    seg_gid: List[np.ndarray] = []  # global segment ids (emission order keys)
    seg_task: List[np.ndarray] = []
    # (segment, object) incidence pairs for the flat Y-sweep; segments are
    # referenced by *eligible-segment* index (assigned after concatenation).
    pair_count: List[int] = []
    pair_obj_enter: List[np.ndarray] = []
    pair_obj_exit: List[np.ndarray] = []
    pair_local_seg: List[np.ndarray] = []
    # Empty segments emitted full-height (only when the threshold is <= 0):
    full_x_lo: List[np.ndarray] = []
    full_x_hi: List[np.ndarray] = []
    full_y1: List[np.ndarray] = []
    full_y2: List[np.ndarray] = []
    full_gid: List[np.ndarray] = []
    full_task: List[np.ndarray] = []

    gid_base = 0
    for t_idx, task in enumerate(tasks):
        x1s = np.asarray(task.strips_x1, dtype=float)
        x2s = np.asarray(task.strips_x2, dtype=float)
        n_strips = x1s.size
        if n_strips == 0:
            continue
        xs = np.asarray(task.xs, dtype=float)
        ys = np.asarray(task.ys, dtype=float)
        # Same superset filter as refine_cell: only objects whose y-range can
        # overlap the band matter (band y-extent is shared by every strip).
        keep = (ys - half < task.y2 + half) & (ys + half > task.y1 - half)
        xs = xs[keep]
        ys = ys[keep]
        enters = xs - half
        exits = xs + half
        events = np.unique(np.concatenate([enters, exits]))
        # Breakpoints strictly inside each strip: (x1, x2) ∩ events.
        lo_idx = np.searchsorted(events, x1s, side="right")
        hi_idx = np.searchsorted(events, x2s, side="left")
        inner = hi_idx - lo_idx
        nseg = inner + 1
        total = int(nseg.sum())
        strip_of = np.repeat(np.arange(n_strips), nseg)
        within = np.arange(total, dtype=np.int64) - _exclusive_cumsum(nseg)[strip_of]
        if events.size:
            ev_idx = lo_idx[strip_of] + within
            x_lo = np.where(
                within == 0, x1s[strip_of], events[np.maximum(ev_idx - 1, 0)]
            )
            x_hi = np.where(
                within == inner[strip_of],
                x2s[strip_of],
                events[np.minimum(ev_idx, events.size - 1)],
            )
        else:
            x_lo = x1s[strip_of]
            x_hi = x2s[strip_of]
        # Active count at each left edge: enter <= x < exit, and because
        # every interval has identical width l, |{exit <= x}| counts exactly
        # the entered-and-expired objects.
        sorted_enters = np.sort(enters)
        sorted_exits = np.sort(exits)
        cnt = np.searchsorted(sorted_enters, x_lo, side="right") - np.searchsorted(
            sorted_exits, x_lo, side="right"
        )
        if cnt.size:
            max_active[t_idx] = int(cnt.max())
        gids = gid_base + np.arange(total, dtype=np.int64)
        gid_base += total

        empty = cnt == 0
        if threshold <= 0 and bool(empty.any()):
            e = np.flatnonzero(empty)
            full_x_lo.append(x_lo[e])
            full_x_hi.append(x_hi[e])
            full_y1.append(np.full(e.size, task.y1))
            full_y2.append(np.full(e.size, task.y2))
            full_gid.append(gids[e])
            full_task.append(np.full(e.size, t_idx, dtype=np.int64))

        eligible = np.flatnonzero((~empty) & (cnt >= threshold))
        if eligible.size == 0:
            continue
        el_lo = x_lo[eligible]
        # Incidence: object o is active on eligible segment s iff
        # enter_o <= x_lo_s < exit_o (same comparison refine_cell maintains
        # with its pointer-advanced mask).
        act = (enters[None, :] <= el_lo[:, None]) & (el_lo[:, None] < exits[None, :])
        si, oi = np.nonzero(act)
        seg_x_lo.append(el_lo)
        seg_x_hi.append(x_hi[eligible])
        seg_y1.append(np.full(eligible.size, task.y1))
        seg_y2.append(np.full(eligible.size, task.y2))
        seg_gid.append(gids[eligible])
        seg_task.append(np.full(eligible.size, t_idx, dtype=np.int64))
        pair_local_seg.append(si.astype(np.int64))
        pair_obj_enter.append(ys[oi] - half)
        pair_obj_exit.append(ys[oi] + half)
        pair_count.append(eligible.size)

    segments_total = gid_base

    # ---------------- phase B: flat segmented Y-sweep ----------------
    if seg_x_lo:
        sx_lo = np.concatenate(seg_x_lo)
        sx_hi = np.concatenate(seg_x_hi)
        sy1 = np.concatenate(seg_y1)
        sy2 = np.concatenate(seg_y2)
        sgid = np.concatenate(seg_gid)
        stask = np.concatenate(seg_task)
        n_eseg = sx_lo.size
        # Re-base each band's local segment indices into the flat space.
        offsets = _exclusive_cumsum(np.asarray(pair_count, dtype=np.int64))
        p_seg = np.concatenate(
            [ls + off for ls, off in zip(pair_local_seg, offsets)]
        )
        p_enter = np.concatenate(pair_obj_enter)
        p_exit = np.concatenate(pair_obj_exit)

        lo_of_pair = sy1[p_seg]
        hi_of_pair = sy2[p_seg]
        # Objects already active at the band's low edge (dense_segments_1d's
        # count0: enter <= lo < exit).
        at_lo = (p_enter <= lo_of_pair) & (p_exit > lo_of_pair)
        count0 = np.bincount(p_seg[at_lo], minlength=n_eseg)
        # Events strictly inside (lo, hi): +1 at enter, -1 at exit.
        in_enter = (lo_of_pair < p_enter) & (p_enter < hi_of_pair)
        in_exit = (lo_of_pair < p_exit) & (p_exit < hi_of_pair)
        ev_seg = np.concatenate([p_seg[in_enter], p_seg[in_exit]])
        ev_coord = np.concatenate([p_enter[in_enter], p_exit[in_exit]])
        ev_delta = np.concatenate(
            [
                np.ones(int(in_enter.sum()), dtype=np.int64),
                -np.ones(int(in_exit.sum()), dtype=np.int64),
            ]
        )
        if ev_seg.size:
            order = np.lexsort((ev_coord, ev_seg))
            ev_seg = ev_seg[order]
            ev_coord = ev_coord[order]
            ev_delta = ev_delta[order]
            # Distinct (segment, coordinate) groups and their net deltas —
            # the per-segment analogue of np.unique + np.add.at.
            new_group = np.empty(ev_seg.size, dtype=bool)
            new_group[0] = True
            new_group[1:] = (ev_seg[1:] != ev_seg[:-1]) | (
                ev_coord[1:] != ev_coord[:-1]
            )
            group_id = np.cumsum(new_group) - 1
            net = np.bincount(group_id, weights=ev_delta).astype(np.int64)
            u_seg = ev_seg[new_group]
            u_coord = ev_coord[new_group]
            # Running count after each distinct coordinate, restarted per
            # segment: global cumsum minus the segment's preceding total.
            csum = np.cumsum(net)
            seg_first = np.empty(u_seg.size, dtype=bool)
            seg_first[0] = True
            seg_first[1:] = u_seg[1:] != u_seg[:-1]
            first_idx = np.flatnonzero(seg_first)
            base_vals = np.where(first_idx == 0, 0, csum[np.maximum(first_idx - 1, 0)])
            occurring = np.diff(np.append(first_idx, u_seg.size))
            running = csum - np.repeat(base_vals, occurring)
            m_per_seg = np.bincount(u_seg, minlength=n_eseg)
            uniq_start = _exclusive_cumsum(m_per_seg)
        else:
            u_coord = _EMPTY_F
            running = _EMPTY_I
            m_per_seg = np.zeros(n_eseg, dtype=np.int64)
            uniq_start = np.zeros(n_eseg, dtype=np.int64)

        # One "position" per sweep interval: [lo, u1), [u1, u2), ..., [um, hi).
        pos_per_seg = m_per_seg + 1
        n_pos = int(pos_per_seg.sum())
        seg_of_pos = np.repeat(np.arange(n_eseg), pos_per_seg)
        within = (
            np.arange(n_pos, dtype=np.int64) - _exclusive_cumsum(pos_per_seg)[seg_of_pos]
        )
        prev_u = uniq_start[seg_of_pos] + within - 1
        if running.size:
            safe_prev = np.clip(prev_u, 0, running.size - 1)
            counts_pos = np.where(
                within == 0, count0[seg_of_pos], count0[seg_of_pos] + running[safe_prev]
            )
            left_pos = np.where(within == 0, sy1[seg_of_pos], u_coord[safe_prev])
            next_u = np.clip(prev_u + 1, 0, u_coord.size - 1)
            right_pos = np.where(
                within == m_per_seg[seg_of_pos], sy2[seg_of_pos], u_coord[next_u]
            )
        else:
            counts_pos = count0[seg_of_pos]
            left_pos = sy1[seg_of_pos]
            right_pos = sy2[seg_of_pos]
        dense = counts_pos >= threshold
        # Maximal dense runs within each segment (adjacent intervals share an
        # edge float exactly, which is what dense_segments_1d merges).
        prev_dense = np.empty(n_pos, dtype=bool)
        prev_dense[0] = False
        prev_dense[1:] = dense[:-1]
        next_dense = np.empty(n_pos, dtype=bool)
        next_dense[-1] = False
        next_dense[:-1] = dense[1:]
        run_start = dense & ~(prev_dense & (within > 0))
        run_end = dense & ~(next_dense & (within < m_per_seg[seg_of_pos]))
        s_idx = np.flatnonzero(run_start)
        e_idx = np.flatnonzero(run_end)
        run_seg = seg_of_pos[s_idx]
        sweep_bounds = np.column_stack(
            [sx_lo[run_seg], left_pos[s_idx], sx_hi[run_seg], right_pos[e_idx]]
        )
        sweep_gid = sgid[run_seg]
        sweep_task = stask[run_seg]
    else:
        sweep_bounds = np.empty((0, 4), dtype=float)
        sweep_gid = _EMPTY_I
        sweep_task = _EMPTY_I

    # ---------------- phase C: merge with full-height emissions ----------------
    if full_x_lo:
        fb = np.column_stack(
            [
                np.concatenate(full_x_lo),
                np.concatenate(full_y1),
                np.concatenate(full_x_hi),
                np.concatenate(full_y2),
            ]
        )
        all_bounds = np.concatenate([sweep_bounds, fb])
        all_gid = np.concatenate([sweep_gid, np.concatenate(full_gid)])
        all_task = np.concatenate([sweep_task, np.concatenate(full_task)])
    else:
        all_bounds = sweep_bounds
        all_gid = sweep_gid
        all_task = sweep_task
    if all_gid.size:
        # Canonical emission order: segment-major (which encodes band and
        # strip order), y ascending within a segment.
        order = np.lexsort((all_bounds[:, 1], all_gid))
        all_bounds = all_bounds[order]
        all_task = all_task[order]
    return BandBatchResult(all_bounds, all_task, max_active, segments_total)


def merge_band_results(
    chunks: Sequence[BandBatchResult], chunk_task_offsets: Sequence[int]
) -> BandBatchResult:
    """Concatenate per-chunk results back into whole-batch order.

    ``chunk_task_offsets[k]`` is the index of chunk ``k``'s first task in the
    original task list.  Because every kernel step is band- or segment-local,
    this merge is elementwise identical to refining the whole batch inline.
    """
    if not chunks:
        return BandBatchResult(
            np.empty((0, 4), dtype=float), _EMPTY_I.copy(), _EMPTY_I.copy(), 0
        )
    bounds = np.concatenate([c.bounds for c in chunks])
    task_of_rect = np.concatenate(
        [c.task_of_rect + off for c, off in zip(chunks, chunk_task_offsets)]
    )
    max_active = np.concatenate([c.max_active for c in chunks])
    segments = sum(c.segments for c in chunks)
    return BandBatchResult(bounds, task_of_rect, max_active, segments)


def _refine_bands_worker(payload):
    """Top-level pool entry point (must be picklable by name)."""
    tasks, l, min_count = payload
    return refine_bands([BandTask(*t) for t in tasks], l, min_count)
