"""Plane-sweep refinement: exact dense rectangles inside a candidate cell."""

from .plane_sweep import dense_segments_1d, refine_cell, sweep_y_counts

__all__ = ["refine_cell", "dense_segments_1d", "sweep_y_counts"]
