"""Plane-sweep refinement (Section 5.3, Algorithms 2-3).

Given a rectangle ``cell`` to refine and the positions of every object that
can influence a point in the cell (i.e. all objects within the ``l/2``
expansion of the cell), the sweep finds the exact dense sub-rectangles.

The point density is piecewise constant: by the half-open square semantics,
an object at ``ox`` belongs to the l-square centred at ``cx`` iff
``cx ∈ [ox - l/2, ox + l/2)`` (dually for y).  So along X the set ``L_x`` of
objects inside the *l-band* only changes at the finitely many *stopping
events* ``ox ± l/2`` (Lemma 1); within ``L_x``, the set ``L_y`` inside the
sliding l-square only changes at events ``oy ± l/2`` (Lemma 2).  Sweeping
both axes therefore yields the exact answer as a union of half-open
rectangles ``[x_i, x_{i+1}) x [y_j, y_{j+1})``.

The same routine doubles as the library's brute-force oracle when handed the
whole domain and every object (see :mod:`repro.baselines.bruteforce`).

Two implementations live here.  :func:`dense_segments_1d` and
:func:`refine_cell` are the production fast paths: the 1-D sweep is a
sort + cumsum over event arrays and the X-driver keeps its active band in a
boolean mask advanced by two sorted pointers, so per-object work happens in
numpy instead of per-event Python.  The ``*_reference`` twins are the
original event-loop renderings, kept verbatim as oracles — the property
suite in ``tests/test_perf_paths.py`` holds the pairs bit-identical (the
fast paths process the exact same float event coordinates, so equality is
``==`` on every emitted bound, not approximate).
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

import numpy as np

from ..core.errors import InvalidParameterError
from ..core.geometry import Rect, merge_touching_intervals
from ..core.regions import RegionSet

__all__ = [
    "refine_cell",
    "refine_cell_reference",
    "sweep_y_counts",
    "dense_segments_1d",
    "dense_segments_1d_reference",
]

# Dense test: integer count vs float rho*l^2 — nudge so equality means dense.
_THRESHOLD_EPS = 1e-9


def dense_segments_1d(
    coords: np.ndarray,
    half: float,
    lo: float,
    hi: float,
    min_count: float,
) -> List[Tuple[float, float]]:
    """Dense half-open segments of a 1-D sweep over ``[lo, hi)``.

    ``coords`` are object coordinates on the swept axis; a centre ``c`` covers
    an object at ``o`` iff ``c ∈ [o - half, o + half)``.  Returns the merged
    half-open segments where the cover count is at least ``min_count``.

    This is Algorithm 3 (SweepY) in isolation, reused by the X-sweep driver
    below and by the baselines.  Events are processed as arrays — unique
    coordinates, per-coordinate net deltas, a running cumsum — instead of a
    Python event loop; :func:`dense_segments_1d_reference` is the loop, and
    the two are bit-identical (same event floats, same comparisons).
    """
    if hi <= lo:
        return []
    threshold = min_count - _THRESHOLD_EPS
    if len(coords) == 0:
        return [(lo, hi)] if 0 >= threshold else []
    coords = np.asarray(coords, dtype=float)
    enters = coords - half
    exits = coords + half
    # Count already active at the left boundary.
    count0 = int(np.count_nonzero((enters <= lo) & (exits > lo)))
    # Events strictly inside (lo, hi): +1 at enter, -1 at exit.
    enters_in = enters[(lo < enters) & (enters < hi)]
    exits_in = exits[(lo < exits) & (exits < hi)]
    if enters_in.size == 0 and exits_in.size == 0:
        return [(lo, hi)] if count0 >= threshold else []
    events = np.concatenate([enters_in, exits_in])
    deltas = np.concatenate(
        [
            np.ones(enters_in.size, dtype=np.int64),
            -np.ones(exits_in.size, dtype=np.int64),
        ]
    )
    # Net count change per distinct coordinate, then the running count on
    # each segment between consecutive edges.
    uniq, inverse = np.unique(events, return_inverse=True)
    net = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(net, inverse, deltas)
    edges = np.concatenate([[lo], uniq, [hi]])
    counts = np.concatenate([[count0], count0 + np.cumsum(net)])
    dense = counts >= threshold
    # Maximal dense runs: consecutive dense segments share an edge exactly
    # (the same float), which is precisely what merge_touching_intervals
    # merges in the reference; edges are strictly increasing so no
    # zero-width segments arise.
    flips = np.diff(np.concatenate([[False], dense, [False]]).astype(np.int8))
    starts = np.flatnonzero(flips == 1)
    ends = np.flatnonzero(flips == -1)
    return [(float(edges[s]), float(edges[e])) for s, e in zip(starts, ends)]


def dense_segments_1d_reference(
    coords: np.ndarray,
    half: float,
    lo: float,
    hi: float,
    min_count: float,
) -> List[Tuple[float, float]]:
    """The original event-loop sweep, kept as the equivalence oracle."""
    if hi <= lo:
        return []
    threshold = min_count - _THRESHOLD_EPS
    if len(coords) == 0:
        return [(lo, hi)] if 0 >= threshold else []
    coords = np.asarray(coords, dtype=float)
    enters = coords - half
    exits = coords + half
    # Count already active at the left boundary.
    count = int(np.count_nonzero((enters <= lo) & (exits > lo)))
    # Event list strictly inside (lo, hi): +1 at enter, -1 at exit.
    events: List[Tuple[float, int]] = []
    for e in enters:
        if lo < e < hi:
            events.append((float(e), +1))
    for e in exits:
        if lo < e < hi:
            events.append((float(e), -1))
    events.sort()
    segments: List[Tuple[float, float]] = []
    prev = lo
    idx = 0
    n = len(events)
    while idx <= n:
        if idx == n:
            nxt = hi
        else:
            nxt = events[idx][0]
        if nxt > prev and count >= threshold:
            segments.append((prev, nxt))
        if idx == n:
            break
        # Apply every event at this coordinate before moving on.
        here = nxt
        while idx < n and events[idx][0] == here:
            count += events[idx][1]
            idx += 1
        prev = here
    return merge_touching_intervals(segments)


def sweep_y_counts(
    ys: Sequence[float], half: float, lo: float, hi: float, min_count: float
) -> List[Tuple[float, float]]:
    """Alias of :func:`dense_segments_1d` matching the paper's SweepY naming."""
    return dense_segments_1d(np.asarray(list(ys), dtype=float), half, lo, hi, min_count)


def refine_cell(
    positions: Sequence[Tuple[float, float]],
    cell: Rect,
    l: float,
    min_count: float,
) -> RegionSet:
    """Exact dense regions inside ``cell`` (Algorithm 2, RefineQuery).

    Args:
        positions: ``(x, y)`` of every object within the ``l/2`` expansion of
            ``cell`` at query time (a superset is harmless — objects that
            cannot influence the cell never enter any band).
        cell: the half-open rectangle to refine.
        l: neighborhood edge length.
        min_count: objects required for density (``rho * l**2``).

    Returns:
        The exact dense region inside ``cell`` as half-open rectangles.

    The active l-band is a boolean mask advanced by two pointers over the
    enter- and exit-sorted orders (the reference rebuilt a Python set and a
    heap per segment); the per-segment Y-sweep runs on ``ys[mask]`` in one
    numpy pass.  :func:`refine_cell_reference` is the original rendering;
    outputs are bit-identical.
    """
    if l <= 0:
        raise InvalidParameterError(f"l must be positive, got {l}")
    if cell.is_empty():
        return RegionSet()
    half = l / 2.0
    threshold = min_count - _THRESHOLD_EPS
    if not positions:
        return RegionSet([cell]) if 0 >= threshold else RegionSet()

    pos = np.asarray(positions, dtype=float)
    xs = pos[:, 0]
    ys = pos[:, 1]

    # Only objects whose y-range can overlap the cell's l-band matter (the
    # band spans the cell height plus l/2 on each side).  This is a cheap
    # superset filter; exactness comes from the y-sweep.
    keep = (ys - half < cell.y2 + half) & (ys + half > cell.y1 - half)
    xs, ys = xs[keep], ys[keep]
    enters = xs - half
    exits = xs + half

    # X breakpoints: cell edges plus every stopping event strictly inside.
    edges = np.unique(
        np.concatenate(
            [
                np.array([cell.x1, cell.x2], dtype=float),
                enters[(cell.x1 < enters) & (enters < cell.x2)],
                exits[(cell.x1 < exits) & (exits < cell.x2)],
            ]
        )
    )

    n = xs.size
    order_enter = np.argsort(enters, kind="stable")
    order_exit = np.argsort(exits, kind="stable")
    sorted_enters = enters[order_enter]
    sorted_exits = exits[order_exit]
    active = np.zeros(n, dtype=bool)
    active_count = 0
    enter_ptr = exit_ptr = 0

    out: List[Rect] = []
    for seg_idx in range(edges.size - 1):
        x_lo = float(edges[seg_idx])
        x_hi = float(edges[seg_idx + 1])
        # Admit objects whose band interval has started (enter <= x_lo) and
        # has not already ended; then expire every interval that has.
        while enter_ptr < n and sorted_enters[enter_ptr] <= x_lo:
            obj = order_enter[enter_ptr]
            enter_ptr += 1
            if exits[obj] > x_lo:
                active[obj] = True
                active_count += 1
        while exit_ptr < n and sorted_exits[exit_ptr] <= x_lo:
            obj = order_exit[exit_ptr]
            exit_ptr += 1
            if active[obj]:
                active[obj] = False
                active_count -= 1
        if active_count == 0:
            if 0 >= threshold:
                out.append(Rect(x_lo, cell.y1, x_hi, cell.y2))
            continue
        if active_count < threshold:
            continue  # the whole band holds fewer objects than any square needs
        band_ys = ys[active]
        for y_lo, y_hi in dense_segments_1d(band_ys, half, cell.y1, cell.y2, min_count):
            out.append(Rect(x_lo, y_lo, x_hi, y_hi))
    return RegionSet(out)


def refine_cell_reference(
    positions: Sequence[Tuple[float, float]],
    cell: Rect,
    l: float,
    min_count: float,
) -> RegionSet:
    """The original set-and-heap X-driver, kept as the equivalence oracle."""
    if l <= 0:
        raise InvalidParameterError(f"l must be positive, got {l}")
    if cell.is_empty():
        return RegionSet()
    half = l / 2.0
    threshold = min_count - _THRESHOLD_EPS
    if not positions:
        return RegionSet([cell]) if 0 >= threshold else RegionSet()

    pos = np.asarray(positions, dtype=float)
    xs = pos[:, 0]
    ys = pos[:, 1]
    enters = xs - half
    exits = xs + half

    # Only objects whose y-range can overlap the cell's l-band matter (the
    # band spans the cell height plus l/2 on each side).  This is a cheap
    # superset filter; exactness comes from the y-sweep.
    keep = (ys - half < cell.y2 + half) & (ys + half > cell.y1 - half)
    xs, ys, enters, exits = xs[keep], ys[keep], enters[keep], exits[keep]

    # X breakpoints: cell edges plus every stopping event strictly inside.
    breaks = {cell.x1, cell.x2}
    for e in enters:
        if cell.x1 < e < cell.x2:
            breaks.add(float(e))
    for e in exits:
        if cell.x1 < e < cell.x2:
            breaks.add(float(e))
    xs_breaks = sorted(breaks)

    order_by_enter = np.argsort(enters, kind="stable")
    n = len(xs)
    add_ptr = 0
    active_exit_heap: List[Tuple[float, int]] = []  # (exit, object index)
    active = set()

    out: List[Rect] = []
    for seg_idx in range(len(xs_breaks) - 1):
        x_lo = xs_breaks[seg_idx]
        x_hi = xs_breaks[seg_idx + 1]
        # Admit objects whose band interval has started (enter <= x_lo).
        while add_ptr < n and enters[order_by_enter[add_ptr]] <= x_lo:
            obj = int(order_by_enter[add_ptr])
            add_ptr += 1
            if exits[obj] > x_lo:
                active.add(obj)
                heapq.heappush(active_exit_heap, (float(exits[obj]), obj))
        # Expire objects whose interval has ended (exit <= x_lo).
        while active_exit_heap and active_exit_heap[0][0] <= x_lo:
            _, obj = heapq.heappop(active_exit_heap)
            active.discard(obj)
        if not active:
            if 0 >= threshold:
                out.append(Rect(x_lo, cell.y1, x_hi, cell.y2))
            continue
        if len(active) < threshold:
            continue  # the whole band holds fewer objects than any square needs
        band_ys = ys[list(active)]
        for y_lo, y_hi in dense_segments_1d_reference(
            band_ys, half, cell.y1, cell.y2, min_count
        ):
            out.append(Rect(x_lo, y_lo, x_hi, y_hi))
    return RegionSet(out)
