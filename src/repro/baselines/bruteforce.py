"""Brute-force exact PDR evaluation — the library's ground-truth oracle.

Runs the plane-sweep of :mod:`repro.sweep.plane_sweep` over the *entire*
domain with every object position, bypassing histogram, index and buffer
pool.  It is exact (the density field is piecewise constant between sweep
events) and is used as the reference answer ``D`` for the accuracy metrics
of Section 7.2 and for cross-checking FR in the test suite.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence, Tuple

from ..core.geometry import Rect
from ..core.query import QueryResult, QueryStats, SnapshotPDRQuery
from ..motion.model import Motion
from ..sweep.plane_sweep import refine_cell

__all__ = ["bruteforce_pdr", "bruteforce_from_motions"]


def bruteforce_pdr(
    positions: Sequence[Tuple[float, float]],
    domain: Rect,
    query: SnapshotPDRQuery,
) -> QueryResult:
    """Exact dense regions in ``domain`` for objects at ``positions``."""
    start = time.perf_counter()
    regions = refine_cell(list(positions), domain, query.l, query.min_count)
    cpu = time.perf_counter() - start
    stats = QueryStats(
        method="bruteforce", cpu_seconds=cpu, objects_examined=len(positions)
    )
    return QueryResult(regions=regions, stats=stats, query=query)


def bruteforce_from_motions(
    motions: Iterable[Motion], domain: Rect, query: SnapshotPDRQuery
) -> QueryResult:
    """Exact dense regions for moving objects evaluated at the query time.

    Objects whose predicted position falls outside the domain contribute
    nothing: the paper models objects "moving in an L x L region", and every
    maintained structure (histogram, polynomials) shares that convention.
    """
    positions = [
        (x, y)
        for (x, y) in (m.position_at(query.qt) for m in motions)
        if domain.contains_point(x, y)
    ]
    return bruteforce_pdr(positions, domain, query)
