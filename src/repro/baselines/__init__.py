"""Baselines: brute-force oracle, dense-cell queries, effective density queries."""

from .bruteforce import bruteforce_from_motions, bruteforce_pdr
from .dense_cell import dense_cell_query
from .edq import edq_query, edq_report_ambiguity

__all__ = [
    "bruteforce_pdr",
    "bruteforce_from_motions",
    "dense_cell_query",
    "edq_query",
    "edq_report_ambiguity",
]
