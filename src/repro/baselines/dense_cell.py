"""Dense-cell queries — the baseline of Hadjieleftheriou et al. (SSTD 2003).

The method the paper criticises first (Section 1.1): partition the space
into disjoint grid cells and report the cells whose *region density*
(object count / cell area) reaches the threshold.  Because only whole cells
are examined, a dense cluster straddling a cell boundary is missed entirely
— the *answer loss* problem illustrated by Figure 1(a).

We implement it against the same density histogram the FR method maintains,
so the comparison in the examples is apples-to-apples.
"""

from __future__ import annotations

import time
from typing import List

from ..core.query import QueryResult, QueryStats, SnapshotPDRQuery
from ..core.regions import RegionSet
from ..histogram.density_histogram import DensityHistogram

__all__ = ["dense_cell_query"]

_THRESHOLD_EPS = 1e-9


def dense_cell_query(
    histogram: DensityHistogram, query: SnapshotPDRQuery
) -> QueryResult:
    """Cells whose region density is at least ``query.rho`` at ``query.qt``.

    ``query.l`` is ignored — this baseline has no notion of a point
    neighborhood, which is precisely its limitation.
    """
    start = time.perf_counter()
    counts = histogram.counts_at(query.qt)
    cell_area = histogram.cell_edge * histogram.cell_edge_y
    needed = query.rho * cell_area - _THRESHOLD_EPS
    rects: List = []
    dense = counts >= needed
    for i, j in zip(*dense.nonzero()):
        rects.append(histogram.cell_rect(int(i), int(j)))
    cpu = time.perf_counter() - start
    stats = QueryStats(method="dense-cell", cpu_seconds=cpu)
    return QueryResult(regions=RegionSet(rects), stats=stats, query=query)
