"""Effective density queries — the baseline of Jensen et al. (ICDE 2006).

EDQ reports *non-overlapping* ``l x l`` squares whose region density reaches
the threshold.  It fixes the answer-loss problem of dense cells but, as the
paper argues (Figure 1(b)), introduces *ambiguity*: when dense squares
overlap, only one of them is reported, and which one depends on the
reporting strategy.

Our implementation finds every maximal-count dense square position exactly
(reusing the PDR sweep: the centres of dense ``l``-squares are exactly the
``rho``-dense points), then greedily selects non-overlapping squares in
descending order of contained-object count — one reasonable reporting
strategy among the many EDQ permits.  The :func:`edq_report_ambiguity`
helper makes the non-uniqueness observable by returning answers under two
different tie-breaking orders.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

import numpy as np

from ..core.geometry import Rect
from ..core.query import QueryResult, QueryStats, SnapshotPDRQuery
from ..core.regions import RegionSet
from ..sweep.plane_sweep import refine_cell

__all__ = ["edq_query", "edq_report_ambiguity"]


def _count_in_square(
    positions: np.ndarray, cx: float, cy: float, l: float
) -> int:
    half = l / 2.0
    xs = positions[:, 0]
    ys = positions[:, 1]
    return int(
        np.count_nonzero(
            (xs > cx - half) & (xs <= cx + half) & (ys > cy - half) & (ys <= cy + half)
        )
    )


def _candidate_centers(
    positions: Sequence[Tuple[float, float]],
    domain: Rect,
    query: SnapshotPDRQuery,
) -> List[Tuple[int, float, float]]:
    """``(count, cx, cy)`` for a representative centre of every dense patch.

    The dense-centre point set is the PDR answer itself; we take the centre
    of every maximal dense rectangle the sweep reports as a candidate.
    """
    dense = refine_cell(list(positions), domain, query.l, query.min_count)
    pos = np.asarray(list(positions), dtype=float).reshape(-1, 2)
    out: List[Tuple[int, float, float]] = []
    for rect in dense.normalized():
        c = rect.center
        out.append((_count_in_square(pos, c.x, c.y, query.l), c.x, c.y))
    return out


def edq_query(
    positions: Sequence[Tuple[float, float]],
    domain: Rect,
    query: SnapshotPDRQuery,
    tie_break: str = "count",
) -> QueryResult:
    """Greedy non-overlapping dense ``l x l`` squares.

    ``tie_break`` orders equally-counted candidates (``"count"`` keeps the
    sweep order, ``"reverse"`` inverts it) — switching it can change the
    answer set, which is exactly the ambiguity the paper criticises.
    """
    start = time.perf_counter()
    candidates = _candidate_centers(positions, domain, query)
    if tie_break == "count":
        candidates.sort(key=lambda c: -c[0])
    elif tie_break == "reverse":
        candidates.sort(key=lambda c: (-c[0], -c[1], -c[2]))
    else:
        candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
    half = query.l / 2.0
    chosen: List[Rect] = []
    for _count, cx, cy in candidates:
        square = Rect(cx - half, cy - half, cx + half, cy + half)
        if not any(square.intersects(existing) for existing in chosen):
            chosen.append(square)
    cpu = time.perf_counter() - start
    stats = QueryStats(method="edq", cpu_seconds=cpu, objects_examined=len(positions))
    return QueryResult(regions=RegionSet(chosen), stats=stats, query=query)


def edq_report_ambiguity(
    positions: Sequence[Tuple[float, float]],
    domain: Rect,
    query: SnapshotPDRQuery,
) -> Tuple[QueryResult, QueryResult]:
    """Two valid EDQ answers under different reporting strategies.

    When the returned regions differ, the dataset exhibits the ambiguity of
    Figure 1(b): overlapping dense squares of which EDQ can report only one.
    """
    a = edq_query(positions, domain, query, tie_break="stable")
    b = edq_query(positions, domain, query, tie_break="reverse")
    return a, b
