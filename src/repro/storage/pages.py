"""Disk-page cost model.

The paper charges the FR method for the disk I/O its refinement step performs
against the TPR-tree (4 KB pages, 10 ms per random access, a buffer of 10 %
of the dataset size).  We reproduce that accounting with an explicit page
model: tree nodes are sized to pages, and the byte layout below determines
node fanout exactly as a disk-resident implementation would.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import InvalidParameterError

__all__ = ["PageModel", "DEFAULT_PAGE_MODEL"]

# Byte layout assumed for TPR-tree entries (matching common disk layouts):
#   leaf entry:     object id (8) + x, y, vx, vy (4 doubles)            = 40 B
#   internal entry: child page id (8) + TP bounding rectangle
#                   (x1, y1, x2, y2, vx1, vy1, vx2, vy2 as doubles)     = 72 B
_LEAF_ENTRY_BYTES = 8 + 4 * 8
_INTERNAL_ENTRY_BYTES = 8 + 8 * 8
_NODE_HEADER_BYTES = 32  # level, count, reference time, parent pointer


@dataclass(frozen=True)
class PageModel:
    """Derives index fanout and dataset footprint from a page size."""

    page_size: int = 4096
    random_io_seconds: float = 0.010
    buffer_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.page_size < 256:
            raise InvalidParameterError(f"page size too small: {self.page_size}")
        if self.random_io_seconds < 0:
            raise InvalidParameterError("random_io_seconds must be >= 0")
        if not (0.0 <= self.buffer_fraction <= 1.0):
            raise InvalidParameterError("buffer_fraction must be in [0, 1]")

    @property
    def leaf_fanout(self) -> int:
        """Maximum number of object entries per leaf page."""
        return max(4, (self.page_size - _NODE_HEADER_BYTES) // _LEAF_ENTRY_BYTES)

    @property
    def internal_fanout(self) -> int:
        """Maximum number of child entries per internal page."""
        return max(4, (self.page_size - _NODE_HEADER_BYTES) // _INTERNAL_ENTRY_BYTES)

    def dataset_pages(self, n_objects: int) -> int:
        """Approximate page count of a dataset of ``n_objects`` (leaf level)."""
        if n_objects < 0:
            raise InvalidParameterError(f"n_objects must be >= 0, got {n_objects}")
        return max(1, -(-n_objects // self.leaf_fanout))

    def buffer_pages(self, n_objects: int) -> int:
        """Buffer pool capacity: ``buffer_fraction`` of the dataset size."""
        return max(1, int(self.buffer_fraction * self.dataset_pages(n_objects)))


DEFAULT_PAGE_MODEL = PageModel()
