"""Server state persistence.

A production moving-objects server restarts; re-deriving the density
histograms and polynomial coefficients would require replaying up to ``H``
timestamps of updates.  :func:`save_server` serialises the whole maintained
state — configuration, live motions, histogram counters and Chebyshev
coefficients — into a single ``.npz`` file, and :func:`load_server`
reconstructs an equivalent :class:`~repro.core.system.PDRServer`: the
TPR-tree is rebuilt by re-inserting the live motions (cheap, and the tree's
exact page layout is not semantically meaningful), while histogram and
polynomial state is restored bit-for-bit.

Snapshots double as the *checkpoints* of the recovery subsystem
(:mod:`repro.reliability.recovery`), which imposes two extra duties met
here: writes are **atomic** (data goes to a temporary file that is
``fsync``-ed and then renamed over the target, so a crash mid-write can
never leave a half-written file under the final name) and reads are
**total** (any way a corrupt, truncated or missing file can fail surfaces
as :class:`~repro.core.errors.StorageError`, so recovery can fall back to
an older checkpoint instead of dying on an exception zoo).
"""

from __future__ import annotations

import json
import os
import zipfile
from dataclasses import dataclass
from typing import List, Union

import numpy as np

from ..core.config import SystemConfig
from ..core.errors import StorageError
from ..core.geometry import Rect
from ..core.system import PDRServer
from ..motion.model import Motion

__all__ = [
    "save_server",
    "load_server",
    "read_snapshot",
    "restore_server_state",
    "SnapshotState",
    "config_to_dict",
    "config_from_dict",
]

_FORMAT_VERSION = 1


def config_to_dict(config: SystemConfig) -> dict:
    """A JSON-serialisable form of a :class:`SystemConfig`."""
    return {
        "domain": list(config.domain.as_tuple()),
        "max_update_interval": config.max_update_interval,
        "prediction_window": config.prediction_window,
        "l": config.l,
        "histogram_cells": config.histogram_cells,
        "polynomial_grid": config.polynomial_grid,
        "polynomial_degree": config.polynomial_degree,
        "evaluation_grid": config.evaluation_grid,
    }


def config_from_dict(data: dict) -> SystemConfig:
    """Inverse of :func:`config_to_dict`."""
    x1, y1, x2, y2 = data["domain"]
    return SystemConfig(
        domain=Rect(x1, y1, x2, y2),
        max_update_interval=int(data["max_update_interval"]),
        prediction_window=int(data["prediction_window"]),
        l=float(data["l"]),
        histogram_cells=int(data["histogram_cells"]),
        polynomial_grid=int(data["polynomial_grid"]),
        polynomial_degree=int(data["polynomial_degree"]),
        evaluation_grid=int(data["evaluation_grid"]),
    )


# Backwards-compatible private aliases (pre-reliability callers).
_config_to_dict = config_to_dict
_config_from_dict = config_from_dict


@dataclass
class SnapshotState:
    """The deserialised content of one snapshot file."""

    config: SystemConfig
    tnow: int
    motions: List[Motion]
    hist_state: dict
    pa_state: dict


def save_server(server: PDRServer, path: Union[str, "object"], atomic: bool = True) -> None:
    """Serialise the server's full maintained state to ``path`` (.npz).

    With ``atomic`` (the default) the data is written to ``<path>.tmp``,
    flushed and fsync-ed, and renamed over ``path`` — a crash at any
    point leaves either the old complete file or no file, never a
    truncated one.
    """
    motions = list(server.table.motions())
    motion_array = np.array(
        [(m.oid, m.t_ref, m.x, m.y, m.vx, m.vy) for m in motions], dtype=float
    ).reshape(len(motions), 6)
    hist_state = server.histogram.state_arrays()
    pa_state = server.pa.state_arrays()
    payload = dict(
        format_version=np.int64(_FORMAT_VERSION),
        config_json=np.bytes_(json.dumps(config_to_dict(server.config)).encode()),
        tnow=np.int64(server.tnow),
        motions=motion_array,
        hist_counts=hist_state["counts"],
        hist_slot_time=hist_state["slot_time"],
        pa_coeffs=pa_state["coeffs"],
        pa_slot_time=pa_state["slot_time"],
    )
    if not atomic or not isinstance(path, (str, os.PathLike)):
        np.savez_compressed(path, **payload)
        return
    target = os.fspath(path)
    tmp = target + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    finally:
        if os.path.exists(tmp):  # a failure above left the temp behind
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


def read_snapshot(path: Union[str, "object"]) -> SnapshotState:
    """Deserialise a snapshot without constructing a server.

    Every failure mode — missing file, truncated archive, wrong version,
    missing keys, malformed config — raises :class:`StorageError`, which
    is what lets recovery treat "this checkpoint is unusable" as one
    condition and fall back to an older one.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            version = int(data["format_version"])
            if version != _FORMAT_VERSION:
                raise StorageError(
                    f"snapshot format {version} not supported (expected {_FORMAT_VERSION})"
                )
            config = config_from_dict(json.loads(bytes(data["config_json"]).decode()))
            tnow = int(data["tnow"])
            motions = [
                Motion(int(row[0]), int(row[1]), row[2], row[3], row[4], row[5])
                for row in data["motions"]
            ]
            hist_state = {
                "counts": data["hist_counts"],
                "slot_time": data["hist_slot_time"],
                "tnow": tnow,
            }
            pa_state = {
                "coeffs": data["pa_coeffs"],
                "slot_time": data["pa_slot_time"],
                "tnow": tnow,
            }
            return SnapshotState(
                config=config,
                tnow=tnow,
                motions=motions,
                hist_state=hist_state,
                pa_state=pa_state,
            )
    except StorageError:
        raise
    except (OSError, zipfile.BadZipFile, EOFError, KeyError, ValueError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read snapshot {path!r}: {exc}") from exc


def restore_server_state(server: PDRServer, state: SnapshotState) -> None:
    """Load ``state`` into a freshly constructed, empty ``server``."""
    server.table.restore(state.motions, state.tnow)
    server.histogram.load_state_arrays(state.hist_state)
    server.pa.load_state_arrays(state.pa_state)
    # Rebuild the index by direct insertion (the table must NOT re-notify
    # the histogram/PA listeners, whose state is already restored).
    for motion in state.motions:
        server.tree.insert(motion)


def load_server(path: Union[str, "object"], expected_objects: int = 0) -> PDRServer:
    """Reconstruct a server from :func:`save_server` output.

    ``expected_objects`` sizes the buffer pool; it defaults to the snapshot's
    object count.
    """
    state = read_snapshot(path)
    server = PDRServer(
        state.config,
        expected_objects=expected_objects or max(len(state.motions), 1),
        tnow=state.tnow,
    )
    restore_server_state(server, state)
    return server
